//! CI differential smoke: the compact per-sender store layout and the
//! lazy link-tag key derivation must both be invisible to every
//! simulated result.
//!
//! Two oracles guard the PR's two memory optimisations:
//!
//! 1. `TURQUOIS_LEGACY_STORE=1` swaps the engines back to their
//!    retired hash-map-of-senders stores; `table1` stdout must stay
//!    byte-identical (DESIGN.md §10, mirroring the §9 queue gate).
//! 2. `TURQUOIS_EAGER_KEYS=1` derives Bracha's full O(n²) pairwise
//!    HMAC key table up front, as the seed code did; a Bracha grid run
//!    lazily must end at the same simulated time with the same
//!    decisions and the same accept/reject counters, because key
//!    derivation is pure host work and must never move simulated time.

use std::process::Command;
use turquois_harness::adapters::set_eager_keys;
use turquois_harness::{Protocol, ProposalDistribution, Scenario};

/// Runs the `table1` binary on a shrunk grid with the given store
/// layout and returns its stdout.
fn run_table1(legacy_store: bool) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.env("TURQUOIS_SIZES", "4,7")
        .env("TURQUOIS_REPS", "2")
        .env("TURQUOIS_TIME_LIMIT", "120")
        // Keep the child's host-timing JSON out of the source tree.
        .env(
            "TURQUOIS_BENCH_JSON",
            std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("BENCH_store_differential.json"),
        )
        // The hotpath stats line aggregates host-side counters; keep it
        // off (as it is by default) for byte comparison.
        .env_remove("TURQUOIS_HOTPATH_STATS")
        .env_remove("TURQUOIS_LEGACY_QUEUE");
    if legacy_store {
        cmd.env("TURQUOIS_LEGACY_STORE", "1");
    } else {
        cmd.env_remove("TURQUOIS_LEGACY_STORE");
    }
    let out = cmd.output().expect("table1 runs");
    assert!(
        out.status.success(),
        "table1 (legacy_store={legacy_store}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn table1_output_is_byte_identical_across_store_layouts() {
    let legacy = run_table1(true);
    let compact = run_table1(false);
    assert!(
        !compact.is_empty(),
        "table1 produced no output — smoke setup is broken"
    );
    assert_eq!(
        legacy,
        compact,
        "store layout changed table1's stdout:\n--- legacy maps ---\n{}\n--- compact ---\n{}",
        String::from_utf8_lossy(&legacy),
        String::from_utf8_lossy(&compact)
    );
}

/// What lazy key derivation is allowed to change: nothing the
/// simulation can observe.
#[derive(Debug, PartialEq)]
struct BrachaFingerprint {
    end_nanos: u64,
    decisions: Vec<Option<bool>>,
    accepted: Vec<u64>,
    rejected: Vec<u64>,
    final_phase: Vec<u32>,
}

fn run_bracha_grid(eager: bool) -> Vec<BrachaFingerprint> {
    set_eager_keys(eager);
    let mut prints = Vec::new();
    for n in [4usize, 7, 10] {
        for seed in [1u64, 99] {
            let outcome = Scenario::new(Protocol::Bracha, n)
                .proposals(ProposalDistribution::Divergent)
                .seed(seed)
                .run_once()
                .expect("valid scenario");
            assert!(
                outcome.agreement_holds() && outcome.validity_holds(),
                "safety must hold (eager={eager}, n={n}, seed={seed})"
            );
            let probe = &outcome.probe;
            prints.push(BrachaFingerprint {
                end_nanos: outcome.end.as_nanos(),
                decisions: outcome
                    .decisions
                    .iter()
                    .map(|d| d.map(|dec| dec.value))
                    .collect(),
                accepted: probe.accepted.clone(),
                rejected: probe.rejected.clone(),
                final_phase: probe.final_phase.clone(),
            });
        }
    }
    prints
}

/// Both derivation strategies run **sequentially in one test** because
/// the eager-keys switch is process-global state.
#[test]
fn lazy_link_tag_keys_do_not_move_simulated_results() {
    let eager = run_bracha_grid(true);
    let lazy = run_bracha_grid(false);
    set_eager_keys(false); // restore the default for any later test
    assert_eq!(
        eager, lazy,
        "lazy pairwise-key derivation changed a simulated result"
    );
}
