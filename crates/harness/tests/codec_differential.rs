//! CI differential smoke: the flat-arena message codec must be
//! invisible to every simulated result. Runs the `table1` binary twice
//! on a shrunk grid — once with the legacy owned-`Vec` codec forced
//! via `TURQUOIS_LEGACY_CODEC=1`, once with the arena codec enabled
//! (the default) — and asserts the stdout bytes are identical. Any
//! divergence means a borrowed view parsed differently, an arena seal
//! changed wire bytes, or a staged encode moved simulated time
//! (DESIGN.md §13).

use std::process::Command;

/// Runs the `table1` binary on a shrunk grid with the given codec and
/// returns its stdout.
fn run_table1(legacy_codec: bool) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.env("TURQUOIS_SIZES", "4,7")
        .env("TURQUOIS_REPS", "2")
        .env("TURQUOIS_TIME_LIMIT", "120")
        // Keep the child's host-timing JSON out of the source tree.
        .env(
            "TURQUOIS_BENCH_JSON",
            std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
                .join("BENCH_codec_differential.json"),
        )
        // The hotpath stats line aggregates host-side counters
        // (allocs-saved and arena-bytes in particular) that
        // legitimately differ between codecs; it must stay off (as it
        // is by default) for byte comparison.
        .env_remove("TURQUOIS_HOTPATH_STATS");
    if legacy_codec {
        cmd.env("TURQUOIS_LEGACY_CODEC", "1");
    } else {
        cmd.env_remove("TURQUOIS_LEGACY_CODEC");
    }
    let out = cmd.output().expect("table1 runs");
    assert!(
        out.status.success(),
        "table1 (legacy_codec={legacy_codec}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn table1_output_is_byte_identical_with_legacy_and_arena_codecs() {
    let legacy = run_table1(true);
    let arena = run_table1(false);
    assert!(
        !arena.is_empty(),
        "table1 produced no output — smoke setup is broken"
    );
    assert_eq!(
        legacy,
        arena,
        "the codec changed table1's stdout:\n--- legacy ---\n{}\n--- arena ---\n{}",
        String::from_utf8_lossy(&legacy),
        String::from_utf8_lossy(&arena)
    );
}
