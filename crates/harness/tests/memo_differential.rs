//! CI differential smoke: the verification memo caches must be
//! invisible to every simulated result. Runs the `table1` binary twice
//! on a shrunk grid — once with memoization force-disabled via
//! `TURQUOIS_NO_MEMO=1`, once with it enabled — and asserts the stdout
//! bytes are identical. Any divergence means a cache leaked into
//! simulated time, a verdict, or the rendered statistics.

use std::process::Command;

/// Runs the `table1` binary on a shrunk grid with the given extra
/// environment and returns its stdout.
fn run_table1(no_memo: bool) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.env("TURQUOIS_SIZES", "4,7")
        .env("TURQUOIS_REPS", "2")
        .env("TURQUOIS_TIME_LIMIT", "120")
        // Keep the child's host-timing JSON out of the source tree.
        .env(
            "TURQUOIS_BENCH_JSON",
            std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("BENCH_memo_differential.json"),
        )
        // The hotpath stats line aggregates host-side counters that
        // legitimately differ between modes; it must stay off (as it is
        // by default) for byte comparison.
        .env_remove("TURQUOIS_HOTPATH_STATS");
    if no_memo {
        cmd.env("TURQUOIS_NO_MEMO", "1");
    } else {
        cmd.env_remove("TURQUOIS_NO_MEMO");
    }
    let out = cmd.output().expect("table1 runs");
    assert!(
        out.status.success(),
        "table1 (no_memo={no_memo}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn table1_output_is_byte_identical_with_and_without_memoization() {
    let disabled = run_table1(true);
    let enabled = run_table1(false);
    assert!(
        !enabled.is_empty(),
        "table1 produced no output — smoke setup is broken"
    );
    assert_eq!(
        disabled,
        enabled,
        "memoization changed table1's stdout:\n--- no-memo ---\n{}\n--- memo ---\n{}",
        String::from_utf8_lossy(&disabled),
        String::from_utf8_lossy(&enabled)
    );
}
