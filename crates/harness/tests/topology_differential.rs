//! CI differential smoke: the topology-aware medium engine must be
//! invisible whenever the topology is the paper's single broadcast
//! domain. Runs the `table1` binary twice on a shrunk grid — once on
//! the verbatim legacy arbiter via `TURQUOIS_LEGACY_MEDIUM=1`, once on
//! the default topology engine — and asserts the stdout bytes are
//! identical. Any divergence means the general engine changed a
//! contention, collision, or delivery decision in the fully-connected
//! case (see DESIGN.md §11 and `wireless_net::medium`).

use std::process::Command;

/// Runs the `table1` binary on a shrunk grid with the given medium
/// engine and returns its stdout.
fn run_table1(legacy_medium: bool) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.env("TURQUOIS_SIZES", "4,7")
        .env("TURQUOIS_REPS", "2")
        .env("TURQUOIS_TIME_LIMIT", "120")
        // Keep the child's host-timing JSON out of the source tree.
        .env(
            "TURQUOIS_BENCH_JSON",
            std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
                .join("BENCH_topology_differential.json"),
        )
        // The hotpath stats line aggregates host-side counters; keep it
        // off (as it is by default) for byte comparison.
        .env_remove("TURQUOIS_HOTPATH_STATS");
    if legacy_medium {
        cmd.env("TURQUOIS_LEGACY_MEDIUM", "1");
    } else {
        cmd.env_remove("TURQUOIS_LEGACY_MEDIUM");
    }
    let out = cmd.output().expect("table1 runs");
    assert!(
        out.status.success(),
        "table1 (legacy_medium={legacy_medium}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn table1_output_is_byte_identical_across_medium_engines() {
    let legacy = run_table1(true);
    let topo = run_table1(false);
    assert!(
        !topo.is_empty(),
        "table1 produced no output — smoke setup is broken"
    );
    assert_eq!(
        legacy,
        topo,
        "medium engine changed table1's stdout:\n--- legacy single-domain ---\n{}\n--- topology engine ---\n{}",
        String::from_utf8_lossy(&legacy),
        String::from_utf8_lossy(&topo)
    );
}
