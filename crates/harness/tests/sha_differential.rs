//! CI differential smoke: the multi-lane SHA-256 kernel must be
//! invisible to every simulated result. Runs the `table1` binary twice
//! on a shrunk grid — once with the scalar compression engine forced
//! via `TURQUOIS_SCALAR_SHA=1`, once with the lane kernel enabled (the
//! default) — and asserts the stdout bytes are identical. Any
//! divergence means batching changed a verdict, a memo-cache
//! evolution, or simulated time.

use std::process::Command;

/// Runs the `table1` binary on a shrunk grid with the given SHA engine
/// and returns its stdout.
fn run_table1(scalar_sha: bool) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.env("TURQUOIS_SIZES", "4,7")
        .env("TURQUOIS_REPS", "2")
        .env("TURQUOIS_TIME_LIMIT", "120")
        // Keep the child's host-timing JSON out of the source tree.
        .env(
            "TURQUOIS_BENCH_JSON",
            std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("BENCH_sha_differential.json"),
        )
        // The hotpath stats line aggregates host-side counters (lane
        // occupancy in particular) that legitimately differ between
        // engines; it must stay off (as it is by default) for byte
        // comparison.
        .env_remove("TURQUOIS_HOTPATH_STATS");
    if scalar_sha {
        cmd.env("TURQUOIS_SCALAR_SHA", "1");
    } else {
        cmd.env_remove("TURQUOIS_SCALAR_SHA");
    }
    let out = cmd.output().expect("table1 runs");
    assert!(
        out.status.success(),
        "table1 (scalar_sha={scalar_sha}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn table1_output_is_byte_identical_with_scalar_and_multilane_sha() {
    let scalar = run_table1(true);
    let multilane = run_table1(false);
    assert!(
        !multilane.is_empty(),
        "table1 produced no output — smoke setup is broken"
    );
    assert_eq!(
        scalar,
        multilane,
        "the SHA engine changed table1's stdout:\n--- scalar ---\n{}\n--- multilane ---\n{}",
        String::from_utf8_lossy(&scalar),
        String::from_utf8_lossy(&multilane)
    );
}
