//! Partition robustness at the simulator level: scheduled splits and
//! heals must never cost safety, a component below its engine's
//! decision quorum must never decide while split, and once healed the
//! whole group must decide (the justified-rebroadcast / echo-catch-up
//! recovery paths). A deterministic example per claim plus a proptest
//! over random schedules across all three engines.

use proptest::prelude::*;
use std::time::Duration;
use turquois_harness::{Protocol, ProposalDistribution, Scenario};
use wireless_net::time::SimTime;
use wireless_net::topology::{PartitionSchedule, TopologySpec};

const ENGINES: [Protocol; 3] = [Protocol::Turquois, Protocol::Abba, Protocol::Bracha];

/// Smallest component size that lets `engine` decide inside an
/// `n`-node group (distinct-sender quorums; see DESIGN.md §11).
fn quorum(engine: Protocol, n: usize) -> usize {
    let f = (n - 1) / 3;
    match engine {
        Protocol::Turquois => (n + f) / 2 + 1,
        Protocol::Abba | Protocol::Bracha => n - f,
    }
}

/// Runs `engine` at size `n` under a two-group split at `split` healed
/// at `heal`, then asserts the three partition invariants.
fn check_partitioned_run(engine: Protocol, n: usize, cut: usize, split: SimTime, heal: SimTime, seed: u64) {
    let groups: Vec<Vec<usize>> = vec![(0..cut).collect(), (cut..n).collect()];
    let schedule = PartitionSchedule::new().split_at(split, groups.clone()).heal_at(heal);
    let outcome = Scenario::new(engine, n)
        .proposals(ProposalDistribution::Divergent)
        .topology(TopologySpec::Partition(schedule))
        .time_limit(Duration::from_secs(120))
        .seed(seed)
        .run_once()
        .expect("partitioned scenario runs");
    assert!(outcome.agreement_holds(), "{engine:?} n={n} cut={cut} seed={seed}: agreement violated");
    assert!(outcome.validity_holds(), "{engine:?} n={n} cut={cut} seed={seed}: validity violated");
    let q = quorum(engine, n);
    for group in &groups {
        if group.len() >= q {
            continue;
        }
        for &node in group {
            if let Some(d) = outcome.decisions[node] {
                assert!(
                    d.time < split || d.time >= heal,
                    "{engine:?} n={n} cut={cut} seed={seed}: node {node} decided at {} inside \
                     a {}-node component below quorum {q}",
                    d.time,
                    group.len(),
                );
            }
        }
    }
    assert!(
        outcome.k_reached(),
        "{engine:?} n={n} cut={cut} seed={seed}: not every node decided after the heal"
    );
}

/// Quorum-breaking even split: nobody decides while split, everybody
/// decides after the heal — for every engine.
#[test]
fn even_split_delays_everyone_until_heal_then_all_decide() {
    let split = SimTime::from_millis(5);
    let heal = SimTime::from_millis(800);
    for engine in ENGINES {
        check_partitioned_run(engine, 7, 4, split, heal, 0xBEEF);
    }
}

/// Quorum-keeping split (majority n−f, minority f): the majority
/// decides while split, the stranded minority only after the heal —
/// healing-time recovery in one deterministic run.
#[test]
fn majority_decides_while_split_minority_recovers_after_heal() {
    let n = 7;
    let f = (n - 1) / 3;
    let split = SimTime::from_millis(5);
    let heal = SimTime::from_millis(1_500);
    let groups: Vec<Vec<usize>> = vec![(0..n - f).collect(), (n - f..n).collect()];
    let schedule = PartitionSchedule::new().split_at(split, groups).heal_at(heal);
    let outcome = Scenario::new(Protocol::Turquois, n)
        .proposals(ProposalDistribution::Divergent)
        .topology(TopologySpec::Partition(schedule))
        .time_limit(Duration::from_secs(120))
        .seed(0xCAFE)
        .run_once()
        .expect("partitioned scenario runs");
    assert!(outcome.agreement_holds() && outcome.validity_holds());
    assert!(outcome.k_reached());
    for node in 0..n - f {
        let d = outcome.decisions[node].expect("majority node decided");
        assert!(d.time < heal, "majority node {node} decided only at {} — expected pre-heal", d.time);
    }
    for node in n - f..n {
        let d = outcome.decisions[node].expect("minority node decided");
        assert!(
            d.time >= heal,
            "minority node {node} decided at {} inside a {f}-node sub-quorum component",
            d.time
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random two-group schedules across all engines: agreement +
    /// validity always, no sub-quorum component decides while split,
    /// every node decides after the heal.
    #[test]
    fn random_partition_schedules_preserve_safety(
        engine_ix in 0usize..3,
        n in 4usize..=7,
        cut_seed in 0usize..64,
        split_ms in 2u64..10,
        heal_ms in 100u64..1_200,
        seed in 0u64..1_000,
    ) {
        let cut = 1 + cut_seed % (n - 1);
        check_partitioned_run(
            ENGINES[engine_ix],
            n,
            cut,
            SimTime::from_millis(split_ms),
            SimTime::from_millis(heal_ms),
            seed,
        );
    }
}
