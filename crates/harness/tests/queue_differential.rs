//! CI differential smoke: the event-queue engine must be invisible to
//! every simulated result. Runs the `table1` binary twice on a shrunk
//! grid — once on the legacy global binary heap via
//! `TURQUOIS_LEGACY_QUEUE=1`, once on the default timer wheel — and
//! asserts the stdout bytes are identical. Any divergence means the
//! wheel reordered events relative to the `(at, seq)` contract (see
//! DESIGN.md §9 and `wireless_net::queue`).

use std::process::Command;

/// Runs the `table1` binary on a shrunk grid with the given queue
/// engine and returns its stdout.
fn run_table1(legacy_queue: bool) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    cmd.env("TURQUOIS_SIZES", "4,7")
        .env("TURQUOIS_REPS", "2")
        .env("TURQUOIS_TIME_LIMIT", "120")
        // Keep the child's host-timing JSON out of the source tree.
        .env(
            "TURQUOIS_BENCH_JSON",
            std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("BENCH_queue_differential.json"),
        )
        // The hotpath stats line aggregates host-side counters; keep it
        // off (as it is by default) for byte comparison.
        .env_remove("TURQUOIS_HOTPATH_STATS");
    if legacy_queue {
        cmd.env("TURQUOIS_LEGACY_QUEUE", "1");
    } else {
        cmd.env_remove("TURQUOIS_LEGACY_QUEUE");
    }
    let out = cmd.output().expect("table1 runs");
    assert!(
        out.status.success(),
        "table1 (legacy_queue={legacy_queue}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn table1_output_is_byte_identical_across_queue_engines() {
    let legacy = run_table1(true);
    let wheel = run_table1(false);
    assert!(
        !wheel.is_empty(),
        "table1 produced no output — smoke setup is broken"
    );
    assert_eq!(
        legacy,
        wheel,
        "queue engine changed table1's stdout:\n--- legacy heap ---\n{}\n--- timer wheel ---\n{}",
        String::from_utf8_lossy(&legacy),
        String::from_utf8_lossy(&wheel)
    );
}
