//! Deterministic parallel job runner for the experiment harness.
//!
//! Every experiment in this crate decomposes into independent
//! `(cell, repetition)` jobs: each job seeds its own scenario, builds
//! its own single-threaded simulator, and returns plain data. This
//! module fans those jobs across a `std::thread::scope` worker pool and
//! merges the results **by job index**, so aggregation sees exactly the
//! sequence the legacy serial loop produced — rendered tables, stats,
//! and error reporting are byte-identical at any thread count.
//!
//! Thread-safety contract: only job *descriptions* (plain config data)
//! and job *results* (plain outcome data) cross threads. The simulator
//! itself (`wireless-net::sim`) stays single-threaded and `!Send`; each
//! worker constructs and drops its own instance inside the job closure.
//! Nothing here touches the protocol engines, which remain sans-io.
//!
//! Wall-clock timing lives here — in the driver — and only here; the
//! engines and the simulator never see a host clock.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable selecting the worker-pool size.
pub const THREADS_ENV: &str = "TURQUOIS_THREADS";

/// Reads the worker-pool size from `TURQUOIS_THREADS`.
///
/// Unset ⇒ the host's available parallelism; `1` ⇒ the legacy serial
/// path (no worker threads are spawned at all). Malformed values warn
/// on stderr and fall back to the default rather than failing silently.
pub fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(t) if t >= 1 => t,
            _ => {
                eprintln!(
                    "warning: ignoring malformed {THREADS_ENV}={raw:?}: \
                     expected a positive integer; using {}",
                    default_threads()
                );
                default_threads()
            }
        },
        Err(std::env::VarError::NotPresent) => default_threads(),
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!(
                "warning: ignoring non-UTF-8 {THREADS_ENV}; using {}",
                default_threads()
            );
            default_threads()
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs `f` over every job and returns the results **in job order**.
///
/// With `threads <= 1` this is a plain in-order loop (the legacy serial
/// path). Otherwise `min(threads, jobs.len())` scoped workers pull job
/// indices from a shared cursor and write results into per-index slots;
/// the merged vector is indistinguishable from the serial one.
///
/// # Panics
///
/// A panicking job (e.g. a safety assertion in an experiment binary)
/// panics the calling thread once all workers have been joined — a
/// violation on a worker is exactly as loud as on the serial path.
pub fn run_indexed<J, R, F>(threads: usize, jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let workers = threads.min(jobs.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs.len() {
                    break;
                }
                let result = f(idx, &jobs[idx]);
                *slots[idx].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

/// Wall-clock accounting for one [`run_indexed_timed`] fan-out.
///
/// `busy` estimates the serial-equivalent cost of the jobs: process CPU
/// time consumed during the fan-out where the platform exposes it
/// (`/proc/self/stat`), capped by the summed per-job wall times — the
/// cap matters on an oversubscribed host, where a descheduled worker's
/// wait would otherwise count as work. `elapsed` is the wall time of
/// the whole fan-out; `busy / elapsed` is the achieved speedup
/// (≈ 1.0 on the serial path or a single-core host).
#[derive(Clone, Copy, Debug)]
pub struct RunnerReport {
    /// Worker threads actually used (`min(threads, jobs)`, at least 1).
    pub threads: usize,
    /// Number of jobs executed.
    pub jobs: usize,
    /// Wall-clock time of the whole fan-out.
    pub elapsed: Duration,
    /// Summed wall-clock time spent inside jobs (serial-equivalent).
    pub busy: Duration,
}

impl RunnerReport {
    /// Achieved speedup: serial-equivalent time over elapsed time.
    pub fn speedup(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / elapsed
        }
    }

    /// One human-readable stderr line (never stdout — experiment stdout
    /// must stay byte-identical across thread counts).
    pub fn log(&self, label: &str) {
        eprintln!(
            "[runner] {label}: {} jobs on {} thread{} in {:.2}s \
             (serial-equivalent {:.2}s, speedup {:.2}x)",
            self.jobs,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.elapsed.as_secs_f64(),
            self.busy.as_secs_f64(),
            self.speedup()
        );
    }
}

/// [`run_indexed`] plus wall-clock instrumentation of the fan-out.
pub fn run_indexed_timed<J, R, F>(threads: usize, jobs: &[J], f: F) -> (Vec<R>, RunnerReport)
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let busy_ns = AtomicU64::new(0);
    let cpu_before = process_cpu_time();
    let started = Instant::now();
    let results = run_indexed(threads, jobs, |idx, job| {
        let t0 = Instant::now();
        let result = f(idx, job);
        busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    });
    let elapsed = started.elapsed();
    let job_wall = Duration::from_nanos(busy_ns.into_inner());
    // Prefer CPU time: per-job wall time over-counts whenever a worker
    // sits descheduled (more workers than cores), which would report a
    // phantom speedup. Capping by the job-wall sum keeps unrelated
    // threads of the process from inflating the estimate the other way.
    let busy = match (cpu_before, process_cpu_time()) {
        (Some(before), Some(after)) => after.saturating_sub(before).min(job_wall),
        _ => job_wall,
    };
    let report = RunnerReport {
        threads: threads.clamp(1, jobs.len().max(1)),
        jobs: jobs.len(),
        elapsed,
        busy,
    };
    (results, report)
}

/// Process CPU time (user + system) from `/proc/self/stat`; `None` on
/// platforms without procfs. Used only for the telemetry report — the
/// simulated clocks never see host time.
fn process_cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces; real fields start after ')'.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(Duration::from_secs_f64((utime + stime) as f64 / clk_tck() as f64))
}

/// Kernel tick rate (`USER_HZ`) that scales `/proc/self/stat` CPU
/// times, read from the ELF auxiliary vector (`AT_CLKTCK`). 100 is the
/// usual value but a configuration, not a constant; if the auxv is
/// unreadable we fall back to it — any residual error only skews the
/// telemetry estimate, which the caller caps by summed job wall time.
fn clk_tck() -> u64 {
    use std::sync::OnceLock;
    static TCK: OnceLock<u64> = OnceLock::new();
    const AT_CLKTCK: u64 = 17;
    *TCK.get_or_init(|| {
        std::fs::read("/proc/self/auxv")
            .ok()
            .and_then(|raw| {
                raw.chunks_exact(16).find_map(|pair| {
                    let key = u64::from_ne_bytes(pair[..8].try_into().ok()?);
                    let val = u64::from_ne_bytes(pair[8..].try_into().ok()?);
                    (key == AT_CLKTCK && val > 0).then_some(val)
                })
            })
            .unwrap_or(100)
    })
}

/// One labelled fan-out for the machine-readable bench summary.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Table / experiment label (e.g. `"table1"`).
    pub label: String,
    /// Timing of that fan-out.
    pub report: RunnerReport,
}

/// Writes `results/BENCH_runner.json` (or `$TURQUOIS_BENCH_JSON`): a
/// machine-readable summary of the runner fan-outs an experiment binary
/// just performed. Returns the path written. I/O failures warn on
/// stderr instead of aborting — timing telemetry must never kill an
/// experiment.
pub fn write_bench_json(bin: &str, records: &[BenchRecord]) -> Option<PathBuf> {
    let path = std::env::var_os("TURQUOIS_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").join("BENCH_runner.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return None;
            }
        }
    }
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bin\": \"{}\",\n", escape_json(bin)));
    json.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        default_threads()
    ));
    json.push_str("  \"tables\": [\n");
    for (i, rec) in records.iter().enumerate() {
        let r = &rec.report;
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"jobs\": {}, \"threads\": {}, \
             \"wall_s\": {:.3}, \"serial_equivalent_s\": {:.3}, \"speedup\": {:.2}}}{}\n",
            escape_json(&rec.label),
            r.jobs,
            r.threads,
            r.elapsed.as_secs_f64(),
            r.busy.as_secs_f64(),
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_merge_in_job_order() {
        let jobs: Vec<usize> = (0..97).collect();
        let serial = run_indexed(1, &jobs, |i, &j| (i, j * 3));
        for threads in [2, 4, 9] {
            let parallel = run_indexed(threads, &jobs, |i, &j| (i, j * 3));
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<usize> = (0..64).collect();
        run_indexed(8, &jobs, |_, &j| hits[j].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        let none: Vec<u8> = Vec::new();
        assert!(run_indexed(4, &none, |_, &j| j).is_empty());
        assert_eq!(run_indexed(4, &[41u8], |_, &j| j + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<usize> = (0..32).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(4, &jobs, |_, &j| {
                assert!(j != 17, "seeded safety violation in job {j}");
                j
            })
        }));
        assert!(outcome.is_err(), "a panicking worker must panic the caller");
    }

    #[test]
    fn timed_report_is_sane() {
        let jobs: Vec<u64> = (0..10).collect();
        let (results, report) = run_indexed_timed(3, &jobs, |_, &j| j * j);
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
        assert_eq!(report.jobs, 10);
        assert_eq!(report.threads, 3);
        assert!(report.speedup().is_finite() && report.speedup() >= 0.0);
        assert!(report.busy <= report.elapsed.max(Duration::from_secs(1)) * 3);
    }

    #[test]
    fn clk_tck_is_sane() {
        let hz = clk_tck();
        assert!((1..=100_000).contains(&hz), "USER_HZ={hz}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
