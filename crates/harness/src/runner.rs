//! Deterministic parallel job runner for the experiment harness.
//!
//! Every experiment in this crate decomposes into independent
//! `(cell, repetition)` jobs: each job seeds its own scenario, builds
//! its own single-threaded simulator, and returns plain data. This
//! module fans those jobs across a `std::thread::scope` worker pool and
//! merges the results **by job index**, so aggregation sees exactly the
//! sequence the legacy serial loop produced — rendered tables, stats,
//! and error reporting are byte-identical at any thread count.
//!
//! Thread-safety contract: only job *descriptions* (plain config data)
//! and job *results* (plain outcome data) cross threads. The simulator
//! itself (`wireless-net::sim`) stays single-threaded and `!Send`; each
//! worker constructs and drops its own instance inside the job closure.
//! Nothing here touches the protocol engines, which remain sans-io.
//!
//! Wall-clock timing lives here — in the driver — and only here; the
//! engines and the simulator never see a host clock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use wireless_net::StallReport;

/// Environment variable selecting the worker-pool size.
pub const THREADS_ENV: &str = "TURQUOIS_THREADS";

/// Reads the worker-pool size from `TURQUOIS_THREADS`.
///
/// Unset ⇒ the host's available parallelism; `1` ⇒ the legacy serial
/// path (no worker threads are spawned at all). Malformed values warn
/// on stderr and fall back to the default rather than failing silently.
pub fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(t) if t >= 1 => t,
            _ => {
                eprintln!(
                    "warning: ignoring malformed {THREADS_ENV}={raw:?}: \
                     expected a positive integer; using {}",
                    default_threads()
                );
                default_threads()
            }
        },
        Err(std::env::VarError::NotPresent) => default_threads(),
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!(
                "warning: ignoring non-UTF-8 {THREADS_ENV}; using {}",
                default_threads()
            );
            default_threads()
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs `f` over every job and returns the results **in job order**.
///
/// With `threads <= 1` this is a plain in-order loop (the legacy serial
/// path). Otherwise `min(threads, jobs.len())` scoped workers pull job
/// indices from a shared cursor and write results into per-index slots;
/// the merged vector is indistinguishable from the serial one.
///
/// # Panics
///
/// A panicking job (e.g. a safety assertion in an experiment binary)
/// panics the calling thread once all workers have been joined — a
/// violation on a worker is exactly as loud as on the serial path.
pub fn run_indexed<J, R, F>(threads: usize, jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let workers = threads.min(jobs.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs.len() {
                    break;
                }
                let result = f(idx, &jobs[idx]);
                *slots[idx].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

/// How a supervised job ended. See [`run_supervised`].
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome<R> {
    /// The job ran to completion. Its result may still carry a
    /// domain-level error (e.g. a safety violation) — completion only
    /// means the job neither stalled nor panicked.
    Ok(R),
    /// The job exhausted its simulated-time budget on the first attempt
    /// *and* on the escalated retry; the report is from the retry (the
    /// one with the larger budget).
    Stalled(StallReport),
    /// The job panicked; the payload is the panic message. Panics are
    /// never retried — a panicking job (assertion failure, overflow,
    /// protocol bug) is evidence, not noise.
    Panicked(String),
}

impl<R> JobOutcome<R> {
    /// `true` for [`JobOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// Short failure label (`"stalled"` / `"panic"`), `None` when ok.
    pub fn failure_label(&self) -> Option<&'static str> {
        match self {
            JobOutcome::Ok(_) => None,
            JobOutcome::Stalled(_) => Some("stalled"),
            JobOutcome::Panicked(_) => Some("panic"),
        }
    }
}

/// Which attempt of a supervised job is running, and with what budget.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Attempt {
    /// 0 for the first attempt, 1 for the escalated retry.
    pub index: usize,
    /// Factor to scale the job's simulated-time budget by (1 on the
    /// first attempt, [`RETRY_BUDGET_SCALE`] on the retry).
    pub budget_scale: u32,
}

/// Budget multiplier for the single stall retry: generous enough that a
/// merely *slow* run (an unlucky divergent tail) completes, small enough
/// that a genuinely *stuck* run fails the whole sweep promptly.
pub const RETRY_BUDGET_SCALE: u32 = 4;

/// Runs `f` over every job with panic isolation and stall supervision,
/// returning per-job [`JobOutcome`]s **in job order** (byte-identical
/// merge at any thread count, like [`run_indexed`]).
///
/// `f` returns `Ok(result)` on completion or `Err(report)` (boxed: the
/// report is ~10× the size of the happy path) when the run exhausted
/// its simulated-time budget. A stalled job is deterministically
/// retried exactly once on the same worker with
/// [`Attempt::budget_scale`] = [`RETRY_BUDGET_SCALE`] — distinguishing
/// slow from stuck — and reported [`JobOutcome::Stalled`] only if the
/// retry stalls too. A panic in `f` is caught, does **not** abort the
/// sweep's siblings, and surfaces as [`JobOutcome::Panicked`]; the caller
/// decides how loudly to fail. Safety violations must *not* be mapped to
/// `Err` — return them inside `R` (or panic) so they are never retried
/// or downgraded.
pub fn run_supervised<J, R, F>(threads: usize, jobs: &[J], f: F) -> Vec<JobOutcome<R>>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J, Attempt) -> Result<R, Box<StallReport>> + Sync,
{
    run_indexed(threads, jobs, |idx, job| supervise_one(idx, job, &f))
}

/// [`run_supervised`] plus wall-clock instrumentation of the fan-out.
pub fn run_supervised_timed<J, R, F>(
    threads: usize,
    jobs: &[J],
    f: F,
) -> (Vec<JobOutcome<R>>, RunnerReport)
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J, Attempt) -> Result<R, Box<StallReport>> + Sync,
{
    run_indexed_timed(threads, jobs, |idx, job| supervise_one(idx, job, &f))
}

fn supervise_one<J, R, F>(idx: usize, job: &J, f: &F) -> JobOutcome<R>
where
    F: Fn(usize, &J, Attempt) -> Result<R, Box<StallReport>>,
{
    let mut stall = None;
    for (index, budget_scale) in [(0, 1), (1, RETRY_BUDGET_SCALE)] {
        let attempt = Attempt {
            index,
            budget_scale,
        };
        match catch_unwind(AssertUnwindSafe(|| f(idx, job, attempt))) {
            Ok(Ok(result)) => return JobOutcome::Ok(result),
            Ok(Err(report)) => stall = Some(report),
            Err(payload) => return JobOutcome::Panicked(panic_message(payload)),
        }
    }
    JobOutcome::Stalled(*stall.expect("loop ran at least once"))
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Wall-clock accounting for one [`run_indexed_timed`] fan-out.
///
/// `busy` estimates the serial-equivalent cost of the jobs: process CPU
/// time consumed during the fan-out where the platform exposes it
/// (`/proc/self/stat`), capped by the summed per-job wall times — the
/// cap matters on an oversubscribed host, where a descheduled worker's
/// wait would otherwise count as work. `elapsed` is the wall time of
/// the whole fan-out; `busy / elapsed` is the achieved speedup
/// (≈ 1.0 on the serial path or a single-core host).
#[derive(Clone, Copy, Debug)]
pub struct RunnerReport {
    /// Worker threads actually used (`min(threads, jobs)`, at least 1).
    pub threads: usize,
    /// Number of jobs executed.
    pub jobs: usize,
    /// Wall-clock time of the whole fan-out.
    pub elapsed: Duration,
    /// Summed wall-clock time spent inside jobs (serial-equivalent).
    pub busy: Duration,
}

impl RunnerReport {
    /// Achieved speedup: serial-equivalent time over elapsed time.
    pub fn speedup(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / elapsed
        }
    }

    /// One human-readable stderr line (never stdout — experiment stdout
    /// must stay byte-identical across thread counts).
    pub fn log(&self, label: &str) {
        eprintln!(
            "[runner] {label}: {} jobs on {} thread{} in {:.2}s \
             (serial-equivalent {:.2}s, speedup {:.2}x)",
            self.jobs,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.elapsed.as_secs_f64(),
            self.busy.as_secs_f64(),
            self.speedup()
        );
    }
}

/// [`run_indexed`] plus wall-clock instrumentation of the fan-out.
pub fn run_indexed_timed<J, R, F>(threads: usize, jobs: &[J], f: F) -> (Vec<R>, RunnerReport)
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let busy_ns = AtomicU64::new(0);
    let cpu_before = process_cpu_time();
    let started = Instant::now();
    let results = run_indexed(threads, jobs, |idx, job| {
        let t0 = Instant::now();
        let result = f(idx, job);
        busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    });
    let elapsed = started.elapsed();
    let job_wall = Duration::from_nanos(busy_ns.into_inner());
    // Prefer CPU time: per-job wall time over-counts whenever a worker
    // sits descheduled (more workers than cores), which would report a
    // phantom speedup. Capping by the job-wall sum keeps unrelated
    // threads of the process from inflating the estimate the other way.
    let busy = match (cpu_before, process_cpu_time()) {
        (Some(before), Some(after)) => after.saturating_sub(before).min(job_wall),
        _ => job_wall,
    };
    let report = RunnerReport {
        threads: threads.clamp(1, jobs.len().max(1)),
        jobs: jobs.len(),
        elapsed,
        busy,
    };
    (results, report)
}

/// Process CPU time (user + system) from `/proc/self/stat`; `None` on
/// platforms without procfs. Used only for the telemetry report — the
/// simulated clocks never see host time.
fn process_cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces; real fields start after ')'.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(Duration::from_secs_f64((utime + stime) as f64 / clk_tck() as f64))
}

/// Kernel tick rate (`USER_HZ`) that scales `/proc/self/stat` CPU
/// times, read from the ELF auxiliary vector (`AT_CLKTCK`). 100 is the
/// usual value but a configuration, not a constant; if the auxv is
/// unreadable we fall back to it — any residual error only skews the
/// telemetry estimate, which the caller caps by summed job wall time.
fn clk_tck() -> u64 {
    use std::sync::OnceLock;
    static TCK: OnceLock<u64> = OnceLock::new();
    const AT_CLKTCK: u64 = 17;
    *TCK.get_or_init(|| {
        std::fs::read("/proc/self/auxv")
            .ok()
            .and_then(|raw| {
                raw.chunks_exact(16).find_map(|pair| {
                    let key = u64::from_ne_bytes(pair[..8].try_into().ok()?);
                    let val = u64::from_ne_bytes(pair[8..].try_into().ok()?);
                    (key == AT_CLKTCK && val > 0).then_some(val)
                })
            })
            .unwrap_or(100)
    })
}

/// One labelled fan-out for the machine-readable bench summary.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Table / experiment label (e.g. `"table1"`).
    pub label: String,
    /// Timing of that fan-out.
    pub report: RunnerReport,
}

/// Writes `results/BENCH_runner.json` (or `$TURQUOIS_BENCH_JSON`): a
/// machine-readable summary of the runner fan-outs an experiment binary
/// just performed. Returns the path written. I/O failures warn on
/// stderr instead of aborting — timing telemetry must never kill an
/// experiment.
pub fn write_bench_json(bin: &str, records: &[BenchRecord]) -> Option<PathBuf> {
    let path = std::env::var_os("TURQUOIS_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").join("BENCH_runner.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return None;
            }
        }
    }
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bin\": \"{}\",\n", escape_json(bin)));
    json.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        default_threads()
    ));
    json.push_str("  \"tables\": [\n");
    for (i, rec) in records.iter().enumerate() {
        let r = &rec.report;
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"jobs\": {}, \"threads\": {}, \
             \"wall_s\": {:.3}, \"serial_equivalent_s\": {:.3}, \"speedup\": {:.2}}}{}\n",
            escape_json(&rec.label),
            r.jobs,
            r.threads,
            r.elapsed.as_secs_f64(),
            r.busy.as_secs_f64(),
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_merge_in_job_order() {
        let jobs: Vec<usize> = (0..97).collect();
        let serial = run_indexed(1, &jobs, |i, &j| (i, j * 3));
        for threads in [2, 4, 9] {
            let parallel = run_indexed(threads, &jobs, |i, &j| (i, j * 3));
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<usize> = (0..64).collect();
        run_indexed(8, &jobs, |_, &j| hits[j].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        let none: Vec<u8> = Vec::new();
        assert!(run_indexed(4, &none, |_, &j| j).is_empty());
        assert_eq!(run_indexed(4, &[41u8], |_, &j| j + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<usize> = (0..32).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(4, &jobs, |_, &j| {
                assert!(j != 17, "seeded safety violation in job {j}");
                j
            })
        }));
        assert!(outcome.is_err(), "a panicking worker must panic the caller");
    }

    fn dummy_stall(decided: usize) -> StallReport {
        use wireless_net::{sim::RunStatus, SimTime};
        StallReport {
            status: RunStatus::TimeLimit,
            now: SimTime::from_millis(100),
            limit: SimTime::from_millis(100),
            decided,
            target: Some(4),
            last_progress: SimTime::ZERO,
            fault: "test".into(),
            crashes: "no crashes".into(),
            topology: "single broadcast domain".into(),
            queue_drops: 0,
            nodes: Vec::new(),
        }
    }

    #[test]
    fn panicking_job_does_not_kill_siblings() {
        let jobs: Vec<usize> = (0..32).collect();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let outcomes = run_supervised(4, &jobs, |_, &j, _| {
            if j == 17 {
                panic!("seeded violation in job {j}");
            }
            Ok::<usize, Box<StallReport>>(j * 2)
        });
        std::panic::set_hook(hook);
        assert_eq!(outcomes.len(), 32);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 17 {
                match outcome {
                    JobOutcome::Panicked(msg) => {
                        assert!(msg.contains("seeded violation"), "{msg}")
                    }
                    other => panic!("job 17 should have panicked, got {other:?}"),
                }
            } else {
                assert_eq!(*outcome, JobOutcome::Ok(i * 2), "sibling {i} intact");
            }
        }
    }

    #[test]
    fn stalled_job_retries_once_with_escalated_budget() {
        let jobs = [(); 3];
        let attempts: Vec<Mutex<Vec<Attempt>>> =
            jobs.iter().map(|_| Mutex::new(Vec::new())).collect();
        let outcomes = run_supervised(1, &jobs, |idx, _, attempt| {
            attempts[idx].lock().unwrap().push(attempt);
            match idx {
                0 => Ok(0u32),                       // clean first try
                1 if attempt.index == 0 => Err(Box::new(dummy_stall(1))), // slow
                1 => Ok(1),
                _ => Err(Box::new(dummy_stall(idx))), // genuinely stuck
            }
        });
        assert_eq!(outcomes[0], JobOutcome::Ok(0));
        assert_eq!(outcomes[1], JobOutcome::Ok(1), "retry rescued the slow job");
        assert!(
            matches!(&outcomes[2], JobOutcome::Stalled(r) if r.decided == 2),
            "report comes from the escalated retry"
        );
        let seen: Vec<Vec<Attempt>> =
            attempts.iter().map(|a| a.lock().unwrap().clone()).collect();
        assert_eq!(seen[0].len(), 1, "clean job runs once");
        assert_eq!(seen[1].len(), 2, "stalled job retried exactly once");
        assert_eq!(seen[2].len(), 2, "no second retry for a stuck job");
        assert_eq!(seen[1][0], Attempt { index: 0, budget_scale: 1 });
        assert_eq!(
            seen[1][1],
            Attempt {
                index: 1,
                budget_scale: RETRY_BUDGET_SCALE
            }
        );
    }

    #[test]
    fn supervised_merge_is_order_stable_across_threads() {
        let jobs: Vec<usize> = (0..41).collect();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = |threads| {
            run_supervised(threads, &jobs, |_, &j, _| {
                if j % 13 == 5 {
                    panic!("boom {j}");
                }
                if j % 7 == 3 {
                    return Err(Box::new(dummy_stall(j)));
                }
                Ok(j)
            })
        };
        let serial = run(1);
        for threads in [2, 4] {
            assert_eq!(serial, run(threads), "threads={threads}");
        }
        std::panic::set_hook(hook);
    }

    #[test]
    fn timed_report_is_sane() {
        let jobs: Vec<u64> = (0..10).collect();
        let (results, report) = run_indexed_timed(3, &jobs, |_, &j| j * j);
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
        assert_eq!(report.jobs, 10);
        assert_eq!(report.threads, 3);
        assert!(report.speedup().is_finite() && report.speedup() >= 0.0);
        assert!(report.busy <= report.elapsed.max(Duration::from_secs(1)) * 3);
    }

    #[test]
    fn clk_tck_is_sane() {
        let hz = clk_tck();
        assert!((1..=100_000).contains(&hz), "USER_HZ={hz}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
