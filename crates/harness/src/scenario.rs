//! Scenario construction and single-run execution — the programmatic
//! form of the paper's experimental grid (§7.2): protocol × group size ×
//! proposal distribution × fault load, plus the reproduction's loss
//! models and cost-model ablations.

use crate::adapters::{AbbaApp, BrachaApp, RunProbe, SharedProbe, TurquoisApp};
use crate::adversary::{byzantine_bracha_app, ByzantineAbbaApp, ByzantineTurquoisApp};
use std::time::Duration;
use turquois_baselines::abba::{Abba, AbbaKeys};
use turquois_baselines::bracha::Bracha;
use turquois_core::config::{Config, ConfigError};
use turquois_core::instance::Turquois;
use turquois_core::KeyRing;
use turquois_crypto::cost::CostModel;
use wireless_net::fault::{
    BudgetedOmission, Compose, CrashSchedule, FaultModel, GilbertElliott, IidLoss, JammingWindows,
    NoFaults,
};
use wireless_net::supervise::StallReport;
use wireless_net::sim::{Application, CrashedApp, Decision, RunStatus, SimConfig, Simulator};
use wireless_net::stats::NetStats;
use wireless_net::time::SimTime;
use wireless_net::topology::TopologySpec;

/// The protocol under test.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum Protocol {
    /// The paper's contribution (UDP broadcast).
    Turquois,
    /// Cachin–Kursawe–Shoup (TCP + threshold crypto).
    Abba,
    /// Bracha 1984 (TCP + reliable broadcast).
    Bracha,
}

impl Protocol {
    /// All three protocols, in the paper's table order.
    pub const ALL: [Protocol; 3] = [Protocol::Turquois, Protocol::Abba, Protocol::Bracha];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Turquois => "Turquois",
            Protocol::Abba => "ABBA",
            Protocol::Bracha => "Bracha",
        }
    }
}

/// Initial proposal pattern (§7.2).
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum ProposalDistribution {
    /// Every process proposes 1.
    Unanimous,
    /// Odd process identifiers propose 1, even propose 0.
    Divergent,
}

impl ProposalDistribution {
    /// The proposal of process `id`.
    pub fn proposal(&self, id: usize) -> bool {
        match self {
            ProposalDistribution::Unanimous => true,
            ProposalDistribution::Divergent => id % 2 == 1,
        }
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ProposalDistribution::Unanimous => "unanimous",
            ProposalDistribution::Divergent => "divergent",
        }
    }
}

/// Fault load (§7.2): which failures are injected.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum FaultLoad {
    /// All processes behave correctly.
    FailureFree,
    /// `f = ⌊(n−1)/3⌋` processes crash before the run starts.
    FailStop,
    /// `f` processes follow the malicious strategy of §7.2.
    Byzantine,
}

impl FaultLoad {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            FaultLoad::FailureFree => "failure-free",
            FaultLoad::FailStop => "fail-stop",
            FaultLoad::Byzantine => "Byzantine",
        }
    }
}

/// Injected network-loss model (on top of MAC collisions).
#[derive(Clone, Debug, PartialEq)]
pub enum LossSpec {
    /// No injected loss.
    None,
    /// Independent loss with the given probability.
    Iid(f64),
    /// Gilbert–Elliott bursts: `(p_gb, p_bg, loss_bad)`, good state
    /// lossless.
    Burst(f64, f64, f64),
    /// One jamming window `[start_ms, start_ms + len_ms)`.
    Jam {
        /// Window start, ms.
        start_ms: u64,
        /// Window length, ms.
        len_ms: u64,
    },
    /// Omission adversary: kill up to `budget` broadcast deliveries per
    /// `window_ms` window (σ-bound experiments).
    Budget {
        /// Deliveries killed per window.
        budget: usize,
        /// Window length, ms.
        window_ms: u64,
    },
    /// Several loss models stacked: a delivery is dropped if **any**
    /// part drops it (the fault-matrix experiment composes burst loss
    /// with jamming this way). Parts get distinct derived seeds.
    Composed(Vec<LossSpec>),
}

impl LossSpec {
    fn build(&self, seed: u64) -> Box<dyn FaultModel> {
        match self {
            LossSpec::None => Box::new(NoFaults),
            LossSpec::Iid(p) => Box::new(IidLoss::new(*p, seed)),
            LossSpec::Burst(p_gb, p_bg, loss_bad) => {
                Box::new(GilbertElliott::new(*p_gb, *p_bg, 0.0, *loss_bad, seed))
            }
            LossSpec::Jam { start_ms, len_ms } => Box::new(JammingWindows::burst(
                SimTime::from_millis(*start_ms),
                Duration::from_millis(*len_ms),
            )),
            LossSpec::Budget { budget, window_ms } => Box::new(
                BudgetedOmission::new(*budget, Duration::from_millis(*window_ms)).broadcast_only(),
            ),
            LossSpec::Composed(parts) => Box::new(Compose::new(
                parts
                    .iter()
                    .enumerate()
                    // Golden-ratio stride decorrelates the parts' RNG
                    // streams while staying a pure function of `seed`.
                    .map(|(i, p)| p.build(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1))))
                    .collect(),
            )),
        }
    }
}

/// Errors configuring or running a scenario.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum ScenarioError {
    /// The group size admits no valid `(f, k)` per the paper's rules.
    InvalidConfig(ConfigError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A fully-specified experiment cell.
#[derive(Clone, Debug)]
pub struct Scenario {
    protocol: Protocol,
    n: usize,
    proposals: ProposalDistribution,
    fault_load: FaultLoad,
    loss: LossSpec,
    crashes: CrashSchedule,
    seed: u64,
    cost: CostModel,
    time_limit: Duration,
    key_phases: usize,
    phy: wireless_net::PhyConfig,
    tick: Duration,
    topology: TopologySpec,
}

impl Scenario {
    /// Residual 802.11b frame-loss probability applied by default: any
    /// real deployment sees interference/fading loss on top of
    /// collisions; 2 % is a conservative figure for co-located nodes and
    /// is what lets the paper's loss-sensitivity effects (fail-stop
    /// slower than failure-free, divergent ≈ 2× unanimous) materialize.
    /// Override with [`Scenario::loss`] (e.g. `LossSpec::None` for a
    /// perfectly clean channel).
    pub const BASELINE_LOSS: LossSpec = LossSpec::Iid(0.02);

    /// Creates a failure-free, unanimous scenario for `protocol` with
    /// `n` processes (`f = ⌊(n−1)/3⌋`, `k = n − f`) over a channel with
    /// [`Scenario::BASELINE_LOSS`].
    pub fn new(protocol: Protocol, n: usize) -> Scenario {
        Scenario {
            protocol,
            n,
            proposals: ProposalDistribution::Unanimous,
            fault_load: FaultLoad::FailureFree,
            loss: Scenario::BASELINE_LOSS,
            crashes: CrashSchedule::default(),
            seed: 0,
            cost: CostModel::pentium3_600(),
            time_limit: Duration::from_secs(120),
            key_phases: 600,
            phy: wireless_net::PhyConfig::default(),
            tick: crate::adapters::TICK_INTERVAL,
            topology: TopologySpec::SingleDomain,
        }
    }

    /// Sets the proposal distribution.
    pub fn proposals(mut self, p: ProposalDistribution) -> Scenario {
        self.proposals = p;
        self
    }

    /// Sets the fault load.
    pub fn fault_load(mut self, fl: FaultLoad) -> Scenario {
        self.fault_load = fl;
        self
    }

    /// Sets the injected loss model.
    pub fn loss(mut self, loss: LossSpec) -> Scenario {
        self.loss = loss;
        self
    }

    /// Installs a crash/recovery schedule ([`CrashSchedule`]): fail-stop
    /// faults at chosen simtimes or protocol phases, with optional
    /// rejoin. Independent of [`Scenario::fault_load`] — the fault
    /// matrix composes both.
    pub fn crashes(mut self, crashes: CrashSchedule) -> Scenario {
        self.crashes = crashes;
        self
    }

    /// Sets the RNG seed (vary per repetition).
    pub fn seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Sets the CPU cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Scenario {
        self.cost = cost;
        self
    }

    /// Sets the simulated-time limit for one run.
    pub fn time_limit(mut self, limit: Duration) -> Scenario {
        self.time_limit = limit;
        self
    }

    /// Sets how many phases of one-time keys are pre-distributed
    /// (Turquois).
    pub fn key_phases(mut self, phases: usize) -> Scenario {
        self.key_phases = phases;
        self
    }

    /// Overrides the PHY/MAC parameters (rates, timing, queue depth).
    pub fn phy(mut self, phy: wireless_net::PhyConfig) -> Scenario {
        self.phy = phy;
        self
    }

    /// Overrides the Turquois clock-tick interval (paper default:
    /// 10 ms), applied to correct and Byzantine processes alike. The
    /// scale grid uses this to keep each tick's offered load within the
    /// 2 Mb/s channel at n ≫ 16; no effect on the message-driven
    /// baselines.
    pub fn tick_interval(mut self, tick: Duration) -> Scenario {
        self.tick = tick;
        self
    }

    /// Sets the radio topology (default: the paper's single one-hop
    /// broadcast domain). Partition schedules, static spatial layouts,
    /// and random-waypoint mobility compose freely with
    /// [`Scenario::loss`], [`Scenario::crashes`], and the fault load —
    /// the topology decides who *can* hear a frame, the loss model then
    /// drops among those who would.
    pub fn topology(mut self, topology: TopologySpec) -> Scenario {
        self.topology = topology;
        self
    }

    /// The protocol under test.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Builds the simulator and probe for this scenario without running
    /// it — for step-by-step drivers, debugging, and tests that need
    /// mid-run access.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidConfig`] when `n` admits no valid
    /// configuration.
    pub fn build_sim(&self) -> Result<(Simulator, SharedProbe), ScenarioError> {
        let cfg = Config::evaluation(self.n).map_err(ScenarioError::InvalidConfig)?;
        let n = self.n;
        let f = cfg.f();
        // The last f processes are the faulty ones under faulty loads.
        let faulty: Vec<bool> = (0..n).map(|i| i >= n - f).collect();
        let is_faulty =
            |i: usize| self.fault_load != FaultLoad::FailureFree && faulty[i];
        let proposals: Vec<bool> = (0..n).map(|i| self.proposals.proposal(i)).collect();
        let probe = RunProbe::new(n);

        let apps: Vec<Box<dyn Application>> = match self.protocol {
            Protocol::Turquois => {
                let rings = KeyRing::trusted_setup(n, self.key_phases, self.seed);
                rings
                    .into_iter()
                    .enumerate()
                    .map(|(i, ring)| self.make_turquois(cfg, i, proposals[i], ring, &probe, is_faulty(i)))
                    .collect()
            }
            Protocol::Bracha => {
                // One link-tag pool per simulation: sender-side wraps
                // and receiver-side checks of the same frame share one
                // host-side HMAC computation (simulated cost is still
                // charged on both ends).
                let link_tags = crate::adapters::new_link_tags();
                (0..n)
                    .map(|i| {
                        let engine = Bracha::new(n, f, i, proposals[i], self.seed + 31 * i as u64);
                        if !is_faulty(i) {
                            Box::new(BrachaApp::new(
                                engine,
                                n,
                                self.seed,
                                self.cost,
                                probe.clone(),
                                link_tags.clone(),
                            )) as Box<dyn Application>
                        } else if self.fault_load == FaultLoad::Byzantine {
                            Box::new(byzantine_bracha_app(
                                engine,
                                n,
                                self.seed,
                                self.cost,
                                probe.clone(),
                                link_tags.clone(),
                            )) as Box<dyn Application>
                        } else {
                            Box::new(CrashedApp) as Box<dyn Application>
                        }
                    })
                    .collect()
            }
            Protocol::Abba => {
                let keys = AbbaKeys::trusted_setup(n, f, self.seed);
                keys.into_iter()
                    .enumerate()
                    .map(|(i, k)| {
                        if !is_faulty(i) {
                            let engine =
                                Abba::new(n, f, i, proposals[i], k, self.seed + 17 * i as u64);
                            Box::new(AbbaApp::new(engine, n, self.cost, probe.clone()))
                                as Box<dyn Application>
                        } else if self.fault_load == FaultLoad::Byzantine {
                            Box::new(ByzantineAbbaApp::new(i, n)) as Box<dyn Application>
                        } else {
                            Box::new(CrashedApp) as Box<dyn Application>
                        }
                    })
                    .collect()
            }
        };

        let sim_cfg = SimConfig {
            seed: self.seed,
            phy: self.phy,
            topology: self.topology.clone(),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(sim_cfg, self.loss.build(self.seed), apps);
        if !self.crashes.is_empty() {
            sim.set_crash_schedule(self.crashes.clone());
        }
        Ok((sim, probe))
    }

    /// Number of processes that behave correctly under this fault load.
    pub fn correct_count(&self) -> usize {
        let f = (self.n.saturating_sub(1)) / 3;
        if self.fault_load == FaultLoad::FailureFree {
            self.n
        } else {
            self.n - f
        }
    }

    /// Runs the scenario once.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::InvalidConfig`] when `n` admits no valid
    /// configuration.
    pub fn run_once(&self) -> Result<RunOutcome, ScenarioError> {
        let cfg = Config::evaluation(self.n).map_err(ScenarioError::InvalidConfig)?;
        let n = self.n;
        let f = cfg.f();
        let fault_load = self.fault_load;
        let faulty_flags: Vec<bool> = (0..n)
            .map(|i| fault_load != FaultLoad::FailureFree && i >= n - f)
            .collect();
        let proposals: Vec<bool> = (0..n).map(|i| self.proposals.proposal(i)).collect();
        let (mut sim, probe) = self.build_sim()?;
        let limit = SimTime::ZERO + self.time_limit;
        let (status, stall) = sim.run_until_k_decided_supervised(self.correct_count(), limit);
        let probe_snapshot = probe.borrow().clone();

        Ok(RunOutcome {
            stall,
            n,
            f,
            k: cfg.k(),
            fault_load,
            faulty: faulty_flags,
            proposals,
            status,
            decisions: sim.decisions().to_vec(),
            start_times: sim.start_times().to_vec(),
            stats: sim.stats().clone(),
            probe: probe_snapshot,
            end: sim.now(),
            peak_store_bytes: sim.peak_store_bytes().iter().copied().max().unwrap_or(0),
        })
    }

    fn make_turquois(
        &self,
        cfg: Config,
        i: usize,
        proposal: bool,
        ring: KeyRing,
        probe: &SharedProbe,
        faulty: bool,
    ) -> Box<dyn Application> {
        if !faulty {
            let seed = self.seed + 7 * i as u64;
            let inst = Turquois::new(cfg, i, proposal, ring.clone(), seed);
            Box::new(
                TurquoisApp::new(inst, self.cost, probe.clone())
                    .tick_interval(self.tick)
                    .resettable(cfg, proposal, ring, seed),
            )
        } else if self.fault_load == FaultLoad::Byzantine {
            let tracker = Turquois::new(cfg, i, proposal, ring.clone(), self.seed + 7 * i as u64);
            Box::new(ByzantineTurquoisApp::new(tracker, ring).tick_interval(self.tick))
        } else {
            Box::new(CrashedApp)
        }
    }
}

/// The observable results of one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Group size.
    pub n: usize,
    /// Byzantine bound used.
    pub f: usize,
    /// Decision threshold used.
    pub k: usize,
    /// The fault load that was applied.
    pub fault_load: FaultLoad,
    /// Which processes were faulty (crashed or Byzantine).
    pub faulty: Vec<bool>,
    /// Initial proposals.
    pub proposals: Vec<bool>,
    /// How the run ended.
    pub status: RunStatus,
    /// Per-node decisions (faulty nodes never decide).
    pub decisions: Vec<Option<Decision>>,
    /// Per-node start instants.
    pub start_times: Vec<SimTime>,
    /// Network statistics.
    pub stats: NetStats,
    /// Adapter observations.
    pub probe: RunProbe,
    /// Simulated time when the run stopped.
    pub end: SimTime,
    /// Largest per-node message-store high-water mark over the run
    /// (bytes, per the engines' deterministic store-bytes probe;
    /// see [`wireless_net::supervise::AppProgress::store_bytes`]).
    pub peak_store_bytes: usize,
    /// Stall diagnostics, present whenever the run stopped without
    /// reaching its decision target.
    pub stall: Option<StallReport>,
}

impl RunOutcome {
    /// Indices of correct processes.
    pub fn correct(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(|&i| !self.faulty[i])
    }

    /// Number of correct processes that decided.
    pub fn decided_correct(&self) -> usize {
        self.correct()
            .filter(|&i| self.decisions[i].is_some())
            .count()
    }

    /// Whether at least `k` correct processes decided.
    pub fn k_reached(&self) -> bool {
        self.decided_correct() >= self.k
    }

    /// Agreement: no two correct processes decided differently.
    pub fn agreement_holds(&self) -> bool {
        let mut seen: Option<bool> = None;
        for i in self.correct() {
            if let Some(d) = self.decisions[i] {
                match seen {
                    None => seen = Some(d.value),
                    Some(v) if v != d.value => return false,
                    _ => {}
                }
            }
        }
        true
    }

    /// Validity: if all correct processes proposed `v`, every correct
    /// decision is `v`. (Vacuously true for divergent proposals.)
    pub fn validity_holds(&self) -> bool {
        let props: Vec<bool> = self.correct().map(|i| self.proposals[i]).collect();
        let Some(&first) = props.first() else {
            return true;
        };
        if !props.iter().all(|&p| p == first) {
            return true;
        }
        self.correct()
            .filter_map(|i| self.decisions[i])
            .all(|d| d.value == first)
    }

    /// Per-process decision latencies in milliseconds (correct deciders
    /// only), per the paper's latency metric.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.correct()
            .filter_map(|i| {
                self.decisions[i].map(|d| {
                    d.time.saturating_since(self.start_times[i]).as_secs_f64() * 1e3
                })
            })
            .collect()
    }

    /// Mean latency over deciders, if any decided.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        let l = self.latencies_ms();
        if l.is_empty() {
            None
        } else {
            Some(l.iter().sum::<f64>() / l.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_spec_builds_all_variants() {
        for spec in [
            LossSpec::None,
            LossSpec::Iid(0.1),
            LossSpec::Burst(0.05, 0.2, 0.8),
            LossSpec::Jam {
                start_ms: 5,
                len_ms: 10,
            },
            LossSpec::Budget {
                budget: 3,
                window_ms: 10,
            },
        ] {
            let model = spec.build(1);
            assert!(!model.describe().is_empty());
        }
    }

    #[test]
    fn proposal_distributions() {
        assert!(ProposalDistribution::Unanimous.proposal(0));
        assert!(ProposalDistribution::Unanimous.proposal(7));
        assert!(!ProposalDistribution::Divergent.proposal(0));
        assert!(ProposalDistribution::Divergent.proposal(1));
    }

    #[test]
    fn invalid_n_is_reported() {
        let s = Scenario::new(Protocol::Turquois, 0);
        assert!(matches!(
            s.run_once(),
            Err(ScenarioError::InvalidConfig(_))
        ));
    }

    #[test]
    fn turquois_failure_free_unanimous_smoke() {
        let outcome = Scenario::new(Protocol::Turquois, 4)
            .seed(42)
            .run_once()
            .expect("valid scenario");
        assert_eq!(outcome.status, RunStatus::Satisfied, "{outcome:?}");
        assert_eq!(outcome.decided_correct(), 4);
        assert!(outcome.agreement_holds());
        assert!(outcome.validity_holds());
        assert!(outcome.k_reached());
        let lat = outcome.latencies_ms();
        assert_eq!(lat.len(), 4);
        assert!(lat.iter().all(|&ms| ms > 0.0 && ms < 1_000.0), "{lat:?}");
    }

    #[test]
    fn names_for_display() {
        assert_eq!(Protocol::Turquois.name(), "Turquois");
        assert_eq!(ProposalDistribution::Divergent.name(), "divergent");
        assert_eq!(FaultLoad::FailStop.name(), "fail-stop");
    }
}
