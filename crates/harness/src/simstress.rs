//! Synthetic event-engine stress workload for `simcore_bench` and the
//! `sim_core` criterion bench.
//!
//! The paper grids exercise the event queue with realistic but *shallow*
//! pending sets (a few dozen MAC/timer events in flight). A timer wheel
//! earns its keep when many timers are armed at once — the idle-timeout
//! pattern every networked protocol produces — so this workload arms a
//! deep, mixed-horizon timer population per node:
//!
//! * a working set of [`TIMERS_PER_NODE`] timers per node, rearmed on
//!   every firing with delays drawn (deterministically, from the node's
//!   simulation RNG) across four horizons from 20 µs to tens of
//!   seconds, touching every wheel level;
//! * one far-future "chaff" timer armed per firing (100 s – 1000 s out,
//!   beyond any measured horizon), so the pending set grows linearly
//!   over the run the way accumulated timeout/GC timers do in long
//!   protocol runs. The legacy heap pays `O(log E)` on the growing `E`
//!   for every operation; the wheel parks chaff in a high level or the
//!   overflow map in `O(1)`.
//!
//! No frames are sent: the workload isolates the event engine from the
//! CSMA/CA medium so the measured delta is queue cost, not MAC cost.
//! Everything is deterministic given the seed, so both queue engines
//! must process **exactly** the same event count — `simcore_bench`
//! asserts it.

use std::time::Duration;
use wireless_net::frame::ReceivedFrame;
use wireless_net::sim::{Application, NodeCtx, SimConfig, Simulator};
use wireless_net::time::SimTime;

use rand::RngCore;

/// Live (continuously rearming) timers armed per node.
pub const TIMERS_PER_NODE: u64 = 32;

/// Timer id carried by chaff timers (never expected to fire within the
/// measured horizon; rearms as chaff if it ever does).
const CHAFF_ID: u64 = u64::MAX;

/// Draws the next rearm delay for a working-set timer: 20 µs – 2 ms
/// (backoff/airtime scale). Kept short so the firing rate — the event
/// throughput under measurement — stays high; the long horizons are
/// chaff's job.
fn next_delay(rng: &mut impl RngCore) -> Duration {
    Duration::from_nanos(20_000 + rng.next_u64() % 1_980_000)
}

/// Draws a chaff delay spread across every wheel level and into the
/// overflow map. The short class fires within a measured horizon and
/// exercises cascading; the rest accumulate as the growing pending set.
fn chaff_delay(rng: &mut impl RngCore) -> Duration {
    let class = rng.next_u32() & 0xf;
    let nanos = match class {
        // 2 ms – 100 ms: fires in-horizon, cascades down the low levels.
        0..=3 => 2_000_000 + rng.next_u64() % 98_000_000,
        // 100 ms – 5 s: mid levels.
        4..=7 => 100_000_000 + rng.next_u64() % 4_900_000_000,
        // 5 s – 50 s: high levels.
        8..=11 => 5_000_000_000 + rng.next_u64() % 45_000_000_000,
        // 50 s – 1000 s: top level.
        12..=14 => 50_000_000_000 + rng.next_u64() % 950_000_000_000,
        // 4 – 10 days: past the 2^48 ns wheel span, lands in overflow.
        _ => 345_600_000_000_000 + rng.next_u64() % 518_400_000_000_000,
    };
    Duration::from_nanos(nanos)
}

/// The stress application: arms [`TIMERS_PER_NODE`] rearming timers
/// plus one chaff timer per firing. Sends nothing.
struct TimerStorm;

impl Application for TimerStorm {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for id in 0..TIMERS_PER_NODE {
            let delay = next_delay(ctx.rng());
            ctx.set_timer(delay, id);
        }
    }

    fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
        let delay = if timer == CHAFF_ID {
            chaff_delay(ctx.rng())
        } else {
            next_delay(ctx.rng())
        };
        ctx.set_timer(delay, timer);
        let chaff = chaff_delay(ctx.rng());
        ctx.set_timer(chaff, CHAFF_ID);
    }
}

/// Builds an `n`-node timer-storm simulator (uses whichever queue
/// engine `wireless_net::queue` currently selects).
pub fn storm_sim(n: usize, seed: u64) -> Simulator {
    let apps: Vec<Box<dyn Application>> = (0..n).map(|_| Box::new(TimerStorm) as _).collect();
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    Simulator::without_faults(cfg, apps)
}

/// Runs the storm for `horizon_ms` of simulated time and returns the
/// number of events processed. Deterministic given `(n, seed,
/// horizon_ms)` and identical across queue engines.
pub fn run_storm(n: usize, seed: u64, horizon_ms: u64) -> u64 {
    let mut sim = storm_sim(n, seed);
    sim.run_until(SimTime::from_millis(horizon_ms), |_| false);
    sim.stats().events_processed
}
