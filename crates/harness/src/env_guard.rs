//! Typo guard for `TURQUOIS_*` environment knobs.
//!
//! Every experiment binary calls [`warn_unknown_env_vars`] at startup.
//! A misspelled knob (`TURQUOIS_REPETITIONS`, `TURQUOIS_SIZE`, …) is
//! silently ignored by `std::env::var` lookups, which turns a typo into
//! a full-length default run — expensive and confusing. The guard
//! prints one stderr warning per unrecognized `TURQUOIS_`-prefixed
//! variable instead; it never aborts, because an unknown variable may
//! belong to a newer or older build of the same binaries.

/// Every `TURQUOIS_*` variable some binary or test in this workspace
/// reads. Keep in sync when adding a knob; the
/// `known_list_matches_source` test greps the workspace to enforce it.
pub const KNOWN_ENV_VARS: &[&str] = &[
    "TURQUOIS_BENCH_JSON",
    "TURQUOIS_CHECK_SCHEDULES",
    "TURQUOIS_EAGER_KEYS",
    "TURQUOIS_FM_FORCE_STALL",
    "TURQUOIS_HOTPATH_JSON",
    "TURQUOIS_HOTPATH_STATS",
    "TURQUOIS_LEGACY_CODEC",
    "TURQUOIS_LEGACY_MEDIUM",
    "TURQUOIS_LEGACY_QUEUE",
    "TURQUOIS_LEGACY_STORE",
    "TURQUOIS_NO_MEMO",
    "TURQUOIS_PARTITION_JSON",
    "TURQUOIS_REPS",
    "TURQUOIS_SABOTAGE",
    "TURQUOIS_SCALAR_SHA",
    "TURQUOIS_SIMCORE_JSON",
    "TURQUOIS_SIZES",
    "TURQUOIS_THREADS",
    "TURQUOIS_TIME_LIMIT",
];

/// Warns on stderr about any `TURQUOIS_*` environment variable that no
/// binary in this workspace reads, and returns the offending names.
/// Call once at the top of each experiment binary's `main`.
pub fn warn_unknown_env_vars() -> Vec<String> {
    let mut unknown: Vec<String> = std::env::vars_os()
        .filter_map(|(k, _)| k.into_string().ok())
        .filter(|k| k.starts_with("TURQUOIS_") && !KNOWN_ENV_VARS.contains(&k.as_str()))
        .collect();
    unknown.sort();
    for name in &unknown {
        eprintln!(
            "warning: unrecognized environment variable {name} is ignored \
             (known TURQUOIS_* knobs: {})",
            KNOWN_ENV_VARS.join(", ")
        );
    }
    unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_typos_and_accepts_known_knobs() {
        // Set-and-inspect in one test: env mutation is process-global,
        // so keep every case in a single #[test] to avoid races with
        // parallel test threads touching TURQUOIS_* variables.
        std::env::set_var("TURQUOIS_REPETITIONS", "50");
        std::env::set_var("TURQUOIS_LEGACY_MEDUIM", "1");
        std::env::set_var("TURQUOIS_REPS", "2");
        std::env::set_var("TURQUOIS_LEGACY_MEDIUM", "1");
        std::env::set_var("TURQUOIS_PARTITION_JSON", "/tmp/bp.json");
        std::env::set_var("TURQUOIS_SCALAR_SHA", "1");
        std::env::set_var("TURQUOIS_SCALER_SHA", "1");
        std::env::set_var("TURQUOIS_LEGACY_CODEC", "1");
        std::env::set_var("TURQUOIS_LEGACY_CODEX", "1");
        let unknown = warn_unknown_env_vars();
        std::env::remove_var("TURQUOIS_REPETITIONS");
        std::env::remove_var("TURQUOIS_LEGACY_MEDUIM");
        std::env::remove_var("TURQUOIS_REPS");
        std::env::remove_var("TURQUOIS_LEGACY_MEDIUM");
        std::env::remove_var("TURQUOIS_PARTITION_JSON");
        std::env::remove_var("TURQUOIS_SCALAR_SHA");
        std::env::remove_var("TURQUOIS_SCALER_SHA");
        std::env::remove_var("TURQUOIS_LEGACY_CODEC");
        std::env::remove_var("TURQUOIS_LEGACY_CODEX");
        assert!(unknown.contains(&"TURQUOIS_REPETITIONS".to_string()));
        assert!(unknown.contains(&"TURQUOIS_LEGACY_MEDUIM".to_string()));
        assert!(unknown.contains(&"TURQUOIS_SCALER_SHA".to_string()));
        assert!(!unknown.contains(&"TURQUOIS_REPS".to_string()));
        assert!(!unknown.contains(&"TURQUOIS_LEGACY_MEDIUM".to_string()));
        assert!(!unknown.contains(&"TURQUOIS_PARTITION_JSON".to_string()));
        assert!(!unknown.contains(&"TURQUOIS_SCALAR_SHA".to_string()));
        assert!(unknown.contains(&"TURQUOIS_LEGACY_CODEX".to_string()));
        assert!(!unknown.contains(&"TURQUOIS_LEGACY_CODEC".to_string()));
    }

    #[test]
    fn known_list_is_sorted_and_deduped() {
        let mut sorted = KNOWN_ENV_VARS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, KNOWN_ENV_VARS, "keep KNOWN_ENV_VARS sorted");
    }
}
