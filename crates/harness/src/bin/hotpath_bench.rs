//! Host-side hot-path benchmark: runs the same shrunk Table-1 grid
//! four times in one process — verification memoization
//! force-disabled, memoization enabled (scalar SHA-256), memoization
//! plus the multi-lane SHA-256 kernel, then the multilane
//! configuration with the legacy owned-`Vec` codec instead of the
//! flat-arena codec (DESIGN.md §13) — asserts the rendered tables are
//! byte-identical across all passes (no host optimisation may change a
//! simulated result), and writes the wall-clock plus
//! SHA-256/cache/lane/arena telemetry to `results/BENCH_hotpath.json`
//! (override: `TURQUOIS_HOTPATH_JSON`).
//!
//! Usage: `hotpath_bench [reps]` (default 3). `TURQUOIS_REPS`,
//! `TURQUOIS_THREADS`, and `TURQUOIS_TIME_LIMIT` are respected;
//! `TURQUOIS_SIZES` overrides the default `4,7,10` grid (18 cells —
//! deliberately smaller than the full paper grid: this measures host
//! work, not simulated latency).
//!
//! The grid runs with a 120-phase key horizon instead of the paper
//! tables' 600: failure-free runs decide within a handful of phases,
//! and the shorter horizon keeps the one-off `trusted_setup` hashing
//! (which no cache may legally skip — every key is derived exactly
//! once) from drowning out the receive-path work this bench measures.
//! The paper tables and `results/*.txt` keep the 600-phase horizon.

use std::path::{Path, PathBuf};
use std::time::Instant;
use turquois_crypto::sha256::multilane::{set_scalar_sha, SCALAR_SHA_ENV};
use turquois_crypto::telemetry::set_memo_enabled;
use turquois_harness::experiment::{
    paper_table_supervised_with, render_table, reps_from_env, sizes_from_env, time_limit_from_env,
    HotpathTotals, TableRow, DEFAULT_TIME_LIMIT,
};
use turquois_harness::runner;
use turquois_harness::FaultLoad;

/// Key horizon for the bench grid: ample for failure-free decisions
/// (which land within a handful of phases) while keeping the uncacheable
/// one-off key-derivation hashing proportionate to the receive-path work
/// under measurement. Paper tables keep the default 600.
const BENCH_KEY_PHASES: usize = 120;

/// Cell labels in grid render order, for the per-cell stderr breakdown.
const CELL_LABELS: [&str; 6] = [
    "turquois-unan",
    "turquois-div",
    "abba-unan",
    "abba-div",
    "bracha-unan",
    "bracha-div",
];

/// One measured pass over the grid.
struct Pass {
    label: &'static str,
    wall_s: f64,
    rendered: String,
    queue_drops: u64,
    retried: usize,
    hotpath: HotpathTotals,
}

/// Flips every crate-local `TURQUOIS_LEGACY_CODEC` gate at once: the
/// three gated crates read the same environment variable independently,
/// so a programmatic override must hit all of them.
fn set_legacy_codec_everywhere(enabled: bool) {
    turquois_core::message::set_legacy_codec(enabled);
    turquois_baselines::gate::set_legacy_codec(enabled);
    wireless_net::reliable::set_legacy_codec(enabled);
}

fn totals(rows: &[TableRow]) -> (HotpathTotals, u64, usize) {
    let mut h = HotpathTotals::default();
    let mut drops = 0u64;
    let mut retried = 0usize;
    for row in rows {
        for cell in row.cells.iter().flatten() {
            h.add(cell.hotpath);
            drops += cell.total_queue_drops;
            retried += cell.retried_runs;
        }
    }
    (h, drops, retried)
}

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(3);
    let sizes = if std::env::var_os("TURQUOIS_SIZES").is_some() {
        sizes_from_env()
    } else {
        vec![4, 7, 10]
    };
    let threads = runner::threads_from_env();
    let limit = time_limit_from_env(DEFAULT_TIME_LIMIT);
    let title = format!("Hotpath bench — failure-free grid ({reps} repetitions)");

    let mut passes: Vec<Pass> = Vec::new();
    let mut unhealthy = false;
    // The first two passes force the scalar engine so their wall-clock
    // numbers stay comparable with pre-multilane history; the third
    // isolates what the lane kernel buys on top of memoization; the
    // fourth reruns the multilane configuration on the legacy
    // owned-`Vec` codec, so multilane-vs-legacy-codec isolates what the
    // flat arena buys.
    for (label, memo, scalar, legacy_codec) in [
        ("memo-disabled", false, true, false),
        ("memo-enabled", true, true, false),
        ("multilane", true, false, false),
        ("legacy-codec", true, false, true),
    ] {
        set_memo_enabled(memo);
        set_scalar_sha(scalar);
        set_legacy_codec_everywhere(legacy_codec);
        let start = Instant::now();
        let (rows, health, _report) = paper_table_supervised_with(
            FaultLoad::FailureFree,
            &sizes,
            reps,
            threads,
            limit,
            None,
            |s| s.key_phases(BENCH_KEY_PHASES),
        );
        let wall_s = start.elapsed().as_secs_f64();
        if !health.ok() {
            health.log();
            unhealthy = true;
        }
        let (hotpath, queue_drops, retried) = totals(&rows);
        for row in &rows {
            for (cell, label) in row.cells.iter().flatten().zip(CELL_LABELS) {
                eprintln!(
                    "[hotpath]   {label} n={}: sha-blocks={} verifies={} hits={}",
                    row.n, cell.hotpath.sha_blocks, cell.hotpath.verify_calls,
                    cell.hotpath.cache_hits
                );
            }
        }
        eprintln!(
            "[hotpath] {label}: wall={wall_s:.3}s sha-blocks={} verifies={} \
             cache-hits={} cache-misses={} bytes-copied={} bytes-saved={} \
             lanes-utilization={:.1}% allocs-saved={} arena-bytes={}",
            hotpath.sha_blocks,
            hotpath.verify_calls,
            hotpath.cache_hits,
            hotpath.cache_misses,
            hotpath.bytes_copied,
            hotpath.bytes_saved,
            100.0 * hotpath.lanes_utilization(),
            hotpath.allocs_saved,
            hotpath.arena_bytes
        );
        passes.push(Pass {
            label,
            wall_s,
            rendered: render_table(&title, &rows),
            queue_drops,
            retried,
            hotpath,
        });
    }
    // Leave the process-wide switches the way the environment asked for.
    set_memo_enabled(true);
    set_scalar_sha(std::env::var_os(SCALAR_SHA_ENV).is_some_and(|v| !v.is_empty()));
    set_legacy_codec_everywhere(
        std::env::var_os(turquois_baselines::gate::LEGACY_CODEC_ENV)
            .is_some_and(|v| !v.is_empty()),
    );

    let (disabled, enabled, multilane, legacy) =
        (&passes[0], &passes[1], &passes[2], &passes[3]);
    for pass in [enabled, multilane, legacy] {
        assert_eq!(
            disabled.rendered, pass.rendered,
            "pass '{}' changed the rendered table — host optimisations must be \
             invisible to simulated results",
            pass.label
        );
        assert_eq!(
            (disabled.queue_drops, disabled.retried),
            (pass.queue_drops, pass.retried),
            "pass '{}' changed run stats",
            pass.label
        );
    }
    // The hit/miss bookkeeping is mode-independent by construction; any
    // drift here means a pass took a different code path.
    assert_eq!(
        (disabled.verify_calls(), disabled.hotpath.cache_hits),
        (enabled.verify_calls(), enabled.hotpath.cache_hits),
        "cache bookkeeping diverged between memo modes"
    );
    assert_eq!(
        (enabled.verify_calls(), enabled.hotpath.cache_hits),
        (multilane.verify_calls(), multilane.hotpath.cache_hits),
        "cache bookkeeping diverged between SHA engines"
    );
    // The lane kernel changes how blocks are compressed, never which
    // blocks exist: dummy lanes are uncounted, so real work matches.
    assert_eq!(
        enabled.hotpath.sha_blocks, multilane.hotpath.sha_blocks,
        "multilane pass compressed a different number of real blocks than scalar"
    );
    // The codec moves bytes between buffers, never through the crypto
    // hot path: the legacy-codec rerun must do the exact same logical
    // verification work as the arena default.
    assert_eq!(
        (multilane.verify_calls(), multilane.hotpath.cache_hits, multilane.hotpath.sha_blocks),
        (legacy.verify_calls(), legacy.hotpath.cache_hits, legacy.hotpath.sha_blocks),
        "crypto bookkeeping diverged between codecs"
    );
    assert!(
        multilane.hotpath.allocs_saved > 0 && multilane.hotpath.arena_bytes > 0,
        "arena codec pass recorded no elided allocations — the gate is miswired"
    );
    assert_eq!(
        legacy.hotpath.allocs_saved, 0,
        "legacy-codec pass credited arena savings — the gate is miswired"
    );

    let reduction =
        disabled.hotpath.sha_blocks as f64 / enabled.hotpath.sha_blocks.max(1) as f64;
    let multilane_speedup = enabled.wall_s / multilane.wall_s.max(1e-9);
    let codec_speedup = legacy.wall_s / multilane.wall_s.max(1e-9);
    println!("{}", multilane.rendered);
    println!(
        "hotpath: sha-block reduction {reduction:.2}x \
         (memo-disabled {} -> memo-enabled {}), hit-rate {:.1}%, \
         wall-clock {:.3}s -> {:.3}s -> {:.3}s (multilane {multilane_speedup:.2}x, \
         lanes-utilization {:.1}%), arena codec {codec_speedup:.2}x vs legacy \
         ({:.3}s, allocs-saved {}, arena-bytes {})",
        disabled.hotpath.sha_blocks,
        enabled.hotpath.sha_blocks,
        100.0 * enabled.hotpath.hit_rate(),
        disabled.wall_s,
        enabled.wall_s,
        multilane.wall_s,
        100.0 * multilane.hotpath.lanes_utilization(),
        legacy.wall_s,
        multilane.hotpath.allocs_saved,
        multilane.hotpath.arena_bytes
    );
    if reduction < 2.0 {
        eprintln!(
            "warning: SHA-256 block reduction {reduction:.2}x is below the 2x target \
             (grid may be too small for the caches to warm up)"
        );
    }
    if multilane_speedup < 1.0 {
        eprintln!(
            "warning: multilane pass ran slower than scalar ({multilane_speedup:.2}x) — \
             host noise, or the grid is too small for lane batches to form"
        );
    }
    if codec_speedup < 1.0 {
        eprintln!(
            "warning: arena codec ran slower than the legacy codec ({codec_speedup:.2}x) — \
             host noise, or the grid is too small for the arena pools to warm up"
        );
    }

    if let Some(path) =
        write_hotpath_json(&sizes, reps, &passes, reduction, multilane_speedup, codec_speedup)
    {
        eprintln!("[hotpath] wrote {}", path.display());
    }
    if unhealthy {
        std::process::exit(1);
    }
}

impl Pass {
    fn verify_calls(&self) -> u64 {
        self.hotpath.verify_calls
    }
}

/// Writes `results/BENCH_hotpath.json` (or `$TURQUOIS_HOTPATH_JSON`).
/// I/O failures warn on stderr instead of aborting — telemetry must
/// never kill a benchmark that already ran.
fn write_hotpath_json(
    sizes: &[usize],
    reps: usize,
    passes: &[Pass],
    reduction: f64,
    multilane_speedup: f64,
    codec_speedup: f64,
) -> Option<PathBuf> {
    let path = std::env::var_os("TURQUOIS_HOTPATH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").join("BENCH_hotpath.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return None;
            }
        }
    }
    let sizes_json: Vec<String> = sizes.iter().map(|n| n.to_string()).collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bin\": \"hotpath_bench\",\n");
    json.push_str(&format!("  \"sizes\": [{}],\n", sizes_json.join(", ")));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"cells\": {},\n", sizes.len() * 6));
    json.push_str("  \"tables_byte_identical\": true,\n");
    json.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"wall_s\": {:.3}, \"sha_blocks\": {}, \
             \"verify_calls\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"hit_rate\": {:.4}, \"bytes_copied\": {}, \"bytes_saved\": {}, \
             \"lane_blocks\": {}, \"lane_slots\": {}, \"lanes_utilization\": {:.4}, \
             \"allocs_saved\": {}, \"arena_bytes\": {}}}{}\n",
            p.label,
            p.wall_s,
            p.hotpath.sha_blocks,
            p.hotpath.verify_calls,
            p.hotpath.cache_hits,
            p.hotpath.cache_misses,
            p.hotpath.hit_rate(),
            p.hotpath.bytes_copied,
            p.hotpath.bytes_saved,
            p.hotpath.lane_blocks,
            p.hotpath.lane_slots,
            p.hotpath.lanes_utilization(),
            p.hotpath.allocs_saved,
            p.hotpath.arena_bytes,
            if i + 1 < passes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"sha_block_reduction\": {reduction:.2},\n"));
    json.push_str(&format!("  \"multilane_speedup\": {multilane_speedup:.2},\n"));
    json.push_str(&format!("  \"codec_speedup\": {codec_speedup:.2}\n"));
    json.push_str("}\n");
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}
