//! Regenerates Table 2 of the paper: average latency with
//! `f = ⌊(n−1)/3⌋` processes crashed before the run (fail-stop).
//!
//! Usage: `table2 [reps]` (default 50; `TURQUOIS_THREADS` selects the
//! worker pool — output is byte-identical at any thread count).

use turquois_harness::experiment::{paper_table_on, render_table, reps_from_env, sizes_from_env};
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::FaultLoad;

fn main() {
    let reps = reps_from_env(50);
    let sizes = sizes_from_env();
    let threads = runner::threads_from_env();
    let (rows, report) = paper_table_on(FaultLoad::FailStop, &sizes, reps, threads);
    println!(
        "{}",
        render_table(
            &format!("Table 2 — fail-stop fault load ({reps} repetitions, latency ms ± 95% CI)"),
            &rows
        )
    );
    report.log("table2");
    runner::write_bench_json(
        "table2",
        &[BenchRecord {
            label: "table2".into(),
            report,
        }],
    );
}
