//! Event-engine benchmark: runs the same workloads under both queue
//! engines — the legacy global `BinaryHeap` and the hierarchical timer
//! wheel — in one process, asserts the engines are observationally
//! identical, and writes the wall-clock comparison to
//! `results/BENCH_simcore.json` (override: `TURQUOIS_SIMCORE_JSON`).
//!
//! Two workloads per engine:
//!
//! 1. **Paper grid** — a shrunk failure-free Table-1 grid. The rendered
//!    tables and hot-path verify counts must be byte-for-byte and
//!    count-for-count identical across engines (the wheel is a pure
//!    data-structure swap; see DESIGN.md §9).
//! 2. **Timer storm** ([`turquois_harness::simstress`]) — a deep
//!    mixed-horizon timer population whose pending set grows over the
//!    run. Total events processed must match *exactly* across engines;
//!    the events/second ratio is the headline speedup.
//!
//! Usage: `simcore_bench [reps] [storm_ms]` (defaults: 3 grid
//! repetitions, 300 ms of simulated storm per group size).
//! `TURQUOIS_REPS`, `TURQUOIS_SIZES`, `TURQUOIS_THREADS`, and
//! `TURQUOIS_TIME_LIMIT` shape the grid pass exactly as they do for
//! `hotpath_bench`.

use std::path::{Path, PathBuf};
use std::time::Instant;
use turquois_harness::experiment::{
    paper_table_supervised_with, render_table, reps_from_env, sizes_from_env, time_limit_from_env,
    DEFAULT_TIME_LIMIT,
};
use turquois_harness::runner;
use turquois_harness::simstress;
use turquois_harness::FaultLoad;
use wireless_net::queue::{set_legacy_queue, LEGACY_QUEUE_ENV};

/// Key horizon for the grid pass (see `hotpath_bench` for rationale).
const BENCH_KEY_PHASES: usize = 120;

/// Group sizes for the storm pass.
const STORM_SIZES: [usize; 3] = [4, 8, 16];

/// Storm RNG seed (arbitrary; both engines must agree at any seed).
const STORM_SEED: u64 = 42;

/// One engine's measurements.
struct EnginePass {
    label: &'static str,
    grid_wall_s: f64,
    rendered: String,
    verify_calls: u64,
    /// Per storm size: (events processed, wall seconds).
    storm: Vec<(u64, f64)>,
}

impl EnginePass {
    fn storm_events(&self) -> u64 {
        self.storm.iter().map(|(e, _)| e).sum()
    }
    fn storm_wall_s(&self) -> f64 {
        self.storm.iter().map(|(_, w)| w).sum()
    }
    fn events_per_sec(&self) -> f64 {
        self.storm_events() as f64 / self.storm_wall_s().max(1e-9)
    }
}

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    // argv[1] is the repetition count, consumed by `reps_from_env`
    // exactly like the other experiment binaries; argv[2] is ours.
    let storm_ms: u64 = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("storm_ms must be an integer"))
        .unwrap_or(300);
    let reps = reps_from_env(3);
    let sizes = if std::env::var_os("TURQUOIS_SIZES").is_some() {
        sizes_from_env()
    } else {
        vec![4, 7, 10]
    };
    let threads = runner::threads_from_env();
    let limit = time_limit_from_env(DEFAULT_TIME_LIMIT);
    let title = format!("Simcore bench — failure-free grid ({reps} repetitions)");

    let mut passes: Vec<EnginePass> = Vec::new();
    let mut unhealthy = false;
    for (label, legacy) in [("legacy-heap", true), ("timer-wheel", false)] {
        set_legacy_queue(legacy);

        let start = Instant::now();
        let (rows, health, _report) = paper_table_supervised_with(
            FaultLoad::FailureFree,
            &sizes,
            reps,
            threads,
            limit,
            None,
            |s| s.key_phases(BENCH_KEY_PHASES),
        );
        let grid_wall_s = start.elapsed().as_secs_f64();
        if !health.ok() {
            health.log();
            unhealthy = true;
        }
        let verify_calls = rows
            .iter()
            .flat_map(|row| row.cells.iter().flatten())
            .map(|cell| cell.hotpath.verify_calls)
            .sum();

        let mut storm = Vec::new();
        for &n in &STORM_SIZES {
            let start = Instant::now();
            let events = simstress::run_storm(n, STORM_SEED, storm_ms);
            let wall = start.elapsed().as_secs_f64();
            eprintln!(
                "[simcore] {label} storm n={n}: {events} events in {wall:.3}s \
                 ({:.0} events/s)",
                events as f64 / wall.max(1e-9)
            );
            storm.push((events, wall));
        }

        eprintln!(
            "[simcore] {label}: grid wall={grid_wall_s:.3}s verifies={verify_calls} \
             storm events={} storm wall={:.3}s",
            storm.iter().map(|(e, _)| e).sum::<u64>(),
            storm.iter().map(|(_, w)| w).sum::<f64>()
        );
        passes.push(EnginePass {
            label,
            grid_wall_s,
            rendered: render_table(&title, &rows),
            verify_calls,
            storm,
        });
    }
    // Leave the engine selection the way the environment asked for.
    set_legacy_queue(std::env::var_os(LEGACY_QUEUE_ENV).is_some_and(|v| !v.is_empty()));

    let (legacy, wheel) = (&passes[0], &passes[1]);
    assert_eq!(
        legacy.rendered, wheel.rendered,
        "queue engine changed the rendered table — it must be invisible to simulated results"
    );
    assert_eq!(
        legacy.verify_calls, wheel.verify_calls,
        "queue engine changed hot-path verify counts"
    );
    for (i, &n) in STORM_SIZES.iter().enumerate() {
        assert_eq!(
            legacy.storm[i].0, wheel.storm[i].0,
            "queue engine changed the storm event count at n={n}"
        );
    }

    let speedup = wheel.events_per_sec() / legacy.events_per_sec().max(1e-9);
    println!("{}", wheel.rendered);
    println!(
        "simcore: timer-wheel speedup {speedup:.2}x on the storm workload \
         ({:.0} -> {:.0} events/s over {} events), grid wall-clock {:.3}s -> {:.3}s",
        legacy.events_per_sec(),
        wheel.events_per_sec(),
        wheel.storm_events(),
        legacy.grid_wall_s,
        wheel.grid_wall_s
    );
    if speedup < 1.5 {
        eprintln!(
            "warning: timer-wheel speedup {speedup:.2}x is below the 1.5x target \
             (storm horizon may be too short for the pending set to grow)"
        );
    }

    if let Some(path) = write_simcore_json(&sizes, reps, storm_ms, &passes, speedup) {
        eprintln!("[simcore] wrote {}", path.display());
    }
    if unhealthy {
        std::process::exit(1);
    }
}

/// Writes `results/BENCH_simcore.json` (or `$TURQUOIS_SIMCORE_JSON`).
/// I/O failures warn on stderr instead of aborting — telemetry must
/// never kill a benchmark that already ran.
fn write_simcore_json(
    sizes: &[usize],
    reps: usize,
    storm_ms: u64,
    passes: &[EnginePass],
    speedup: f64,
) -> Option<PathBuf> {
    let path = std::env::var_os("TURQUOIS_SIMCORE_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").join("BENCH_simcore.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return None;
            }
        }
    }
    let join = |v: &[String]| v.join(", ");
    let sizes_json: Vec<String> = sizes.iter().map(|n| n.to_string()).collect();
    let storm_sizes_json: Vec<String> = STORM_SIZES.iter().map(|n| n.to_string()).collect();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bin\": \"simcore_bench\",\n");
    json.push_str(&format!("  \"grid_sizes\": [{}],\n", join(&sizes_json)));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"storm_sizes\": [{}],\n",
        join(&storm_sizes_json)
    ));
    json.push_str(&format!("  \"storm_ms\": {storm_ms},\n"));
    json.push_str("  \"tables_byte_identical\": true,\n");
    json.push_str("  \"event_counts_identical\": true,\n");
    json.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        let storm_json: Vec<String> = p
            .storm
            .iter()
            .zip(STORM_SIZES)
            .map(|((events, wall), n)| {
                format!("{{\"n\": {n}, \"events\": {events}, \"wall_s\": {wall:.3}}}")
            })
            .collect();
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"grid_wall_s\": {:.3}, \"verify_calls\": {}, \
             \"storm\": [{}], \"events_per_sec\": {:.0}}}{}\n",
            p.label,
            p.grid_wall_s,
            p.verify_calls,
            join(&storm_json),
            p.events_per_sec(),
            if i + 1 < passes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"storm_speedup\": {speedup:.2}\n"));
    json.push_str("}\n");
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}
