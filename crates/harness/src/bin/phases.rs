//! Ablation A1: distribution of the Turquois phase at decision time.
//!
//! The paper (§7.3) explains the ≈2× unanimous→divergent latency gap by
//! phase counts: with unanimous proposals processes decide by the end
//! of phase 3; with divergent proposals they typically need phase 6.
//! This experiment prints the observed histogram.
//!
//! Usage: `phases [reps]` (default 50; `TURQUOIS_THREADS` fans the
//! repetitions out — the histogram is byte-identical at any count).

use std::collections::BTreeMap;
use turquois_harness::experiment::reps_from_env;
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::*;

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(50);
    let threads = runner::threads_from_env();
    println!("A1 — Turquois phase at decision ({reps} repetitions per cell)\n");

    let mut cells = Vec::new();
    for n in [4usize, 7, 10, 16] {
        for dist in [
            ProposalDistribution::Unanimous,
            ProposalDistribution::Divergent,
        ] {
            cells.push((n, dist));
        }
    }
    let jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (results, report) = runner::run_indexed_timed(threads, &jobs, |_, &(cell, rep)| {
        let (n, dist) = cells[cell];
        let outcome = Scenario::new(Protocol::Turquois, n)
            .proposals(dist)
            .seed(0xA1u64.wrapping_mul(rep as u64 + 1).wrapping_add(n as u64))
            .run_once()
            .expect("valid scenario");
        assert!(outcome.agreement_holds() && outcome.validity_holds());
        outcome
            .probe
            .phase_at_decision
            .iter()
            .flatten()
            .copied()
            .collect::<Vec<u32>>()
    });

    let mut results = results.into_iter();
    for &(n, dist) in &cells {
        let mut histogram: BTreeMap<u32, usize> = BTreeMap::new();
        for phases in results.by_ref().take(reps) {
            for phase in phases {
                *histogram.entry(phase).or_default() += 1;
            }
        }
        let total: usize = histogram.values().sum();
        let line: Vec<String> = histogram
            .iter()
            .map(|(phase, count)| format!("φ{phase}: {:.0}%", 100.0 * *count as f64 / total as f64))
            .collect();
        println!("n={n:<3} {:<10} {}", dist.name(), line.join("  "));
    }
    println!("\nExpected shape: unanimous decisions cluster at phase 4 (decide at the");
    println!("end of phase 3); divergent decisions cluster at phase 7 (end of 6).");
    report.log("phases");
    runner::write_bench_json(
        "phases",
        &[BenchRecord {
            label: "phases".into(),
            report,
        }],
    );
}
