//! Ablation A3: sensitivity to frame loss, failure-free vs fail-stop.
//!
//! §7.3 explains why fail-stop runs can be *slower* than failure-free
//! ones: with exactly n − f live processes every message matters, and a
//! lost broadcast must wait for the next 10 ms clock tick. This sweep
//! raises i.i.d. frame loss and shows the fail-stop curve climbing away
//! from the failure-free one — Turquois's single-collision-hurts-many
//! effect — and the same comparison for the TCP-based baselines where
//! MAC/transport retransmission absorbs the loss.
//!
//! Usage: `loss_sweep [reps]` (default 15; `TURQUOIS_THREADS` fans the
//! grid out — output is byte-identical at any count).

use turquois_harness::experiment::reps_from_env;
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::*;

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(15);
    let threads = runner::threads_from_env();
    let n = 7;
    println!("A3 — loss sweep, n={n} ({reps} reps, latency ms mean)\n");
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "loss%", "Turq ff", "Turq fs", "ABBA ff", "ABBA fs", "Bracha ff", "Bracha fs"
    );

    let loss_rates = [0.0f64, 0.02, 0.05, 0.10, 0.20];
    let mut grid = Vec::new();
    for &loss in &loss_rates {
        for proto in [Protocol::Turquois, Protocol::Abba, Protocol::Bracha] {
            for fl in [FaultLoad::FailureFree, FaultLoad::FailStop] {
                grid.push((loss, proto, fl));
            }
        }
    }
    let jobs: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (results, report) = runner::run_indexed_timed(threads, &jobs, |_, &(cell, rep)| {
        let (loss, proto, fl) = grid[cell];
        let outcome = Scenario::new(proto, n)
            .fault_load(fl)
            .loss(LossSpec::Iid(loss))
            .time_limit(std::time::Duration::from_secs(60))
            .seed(0xA3u64.wrapping_mul(rep as u64 + 1))
            .run_once()
            .expect("valid scenario");
        assert!(outcome.agreement_holds() && outcome.validity_holds());
        outcome.mean_latency_ms()
    });

    let mut results = results.into_iter();
    for &loss in &loss_rates {
        let mut cells = Vec::new();
        for _ in 0..6 {
            let means: Vec<f64> = results.by_ref().take(reps).flatten().collect();
            cells.push(means.iter().sum::<f64>() / means.len().max(1) as f64);
        }
        println!(
            "{:>6.0} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1}",
            loss * 100.0,
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5]
        );
    }
    report.log("loss_sweep");
    runner::write_bench_json(
        "loss_sweep",
        &[BenchRecord {
            label: "loss_sweep".into(),
            report,
        }],
    );
}
