//! Scale grid: Turquois far past the paper's n ≤ 16.
//!
//! The paper stops at n = 16 (Table 1); this experiment pushes the same
//! protocol — divergent proposals, baseline 2 % i.i.d. loss — to
//! n ∈ {16, 64, 256} under every fault load, and reports the telemetry
//! that matters at scale: end-to-end simulated latency, final simulated
//! time, the per-node message-store high-water mark
//! ([`turquois_harness::RunOutcome::peak_store_bytes`]), and broadcast-channel queue
//! drops. Every run still asserts agreement + validity.
//!
//! Two scenario knobs scale with the group (the protocol itself is
//! untouched): the clock tick ([`scale_tick`], keeping per-tick offered
//! load constant) and the MAC contention window ([`scale_phy`], keeping
//! collision rates sane with 16× the contenders). At n = 16 both equal
//! the paper's values exactly.
//!
//! Runs are supervised ([`runner::run_supervised_timed`]): a stalled
//! `(cell, rep)` job is retried once at a
//! [`runner::RETRY_BUDGET_SCALE`]× simulated-time budget, panics are
//! isolated to their cell, and a cell that still fails renders
//! `FAILED(<reason>)` while its siblings keep their healthy bytes; the
//! process then exits nonzero.
//!
//! Stdout is **deterministic** — byte-identical across thread counts,
//! memo settings, and host speed — so `results/table_scale.txt` can be
//! diffed. Host wall-clock telemetry (per-cell wall seconds, runner
//! utilisation) goes to stderr and to `results/BENCH_scale.json`
//! (`$TURQUOIS_BENCH_JSON` overrides the path), never to stdout.
//!
//! Usage: `table_scale [reps]` (default 3; `TURQUOIS_REPS`,
//! `TURQUOIS_SIZES`, `TURQUOIS_THREADS`, `TURQUOIS_TIME_LIMIT`
//! respected — sizes default to 16,64,256 here, not the paper's list).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use turquois_harness::experiment::{reps_from_env, sizes_from_env_or, time_limit_from_env};
use turquois_harness::runner::{self, Attempt, JobOutcome};
use turquois_harness::{FaultLoad, Protocol, ProposalDistribution, Scenario};
use wireless_net::supervise::StallReport;

/// Group sizes when `TURQUOIS_SIZES` is unset: the paper's largest
/// size, then 4× and 16× past it.
const SCALE_SIZES: [usize; 3] = [16, 64, 256];

/// Fault-load rows, in render order.
const LOADS: [FaultLoad; 3] = [
    FaultLoad::FailureFree,
    FaultLoad::FailStop,
    FaultLoad::Byzantine,
];

/// Clock tick scaled to the group size: the paper's 10 ms tick at
/// n = 16 gives each node ~0.6 ms of 2 Mb/s airtime per tick; keeping
/// that ratio constant (40 ms at n = 64, 160 ms at n = 256) is what
/// lets every tick's traffic fit the channel. At n = 256 the paper's
/// fixed 10 ms tick congestion-collapses — every TX queue pins at its
/// cap and no node ever leaves phase 2 — so the per-tick offered load,
/// not the protocol, is what must scale.
fn scale_tick(n: usize) -> Duration {
    Duration::from_millis((10 * n.max(16) as u64).div_ceil(16))
}

/// MAC contention window scaled to the group size: `cw_min = 2n − 1`
/// (31 at n = 16 — exactly the paper's 802.11b PHY — 127 at n = 64,
/// 511 at n = 256). Broadcast frames get no retransmission, so a
/// collision is an outright loss, and with 256 saturated contenders in
/// a 32-slot window nearly every contention resolution ties at the
/// minimum backoff: at n = 256 under the paper's `cw_min = 31` the
/// delivered rate collapses to ~7 frames/s and no node ever leaves
/// phase 1. Sizing the window to the population — which is how real
/// 802.11 EDCA deployments are tuned — restores a ~75 %+ success rate
/// per resolution. `cw_max` only matters for unicast retries and keeps
/// its default unless `cw_min` outgrows it.
fn scale_phy(n: usize) -> wireless_net::PhyConfig {
    let base = wireless_net::PhyConfig::default();
    let cw_min = base.cw_min.max(2 * n as u32 - 1);
    wireless_net::PhyConfig {
        cw_min,
        cw_max: base.cw_max.max(cw_min),
        ..base
    }
}

/// Simulated-time budget per group size: the default 120 s covers
/// n ≤ 64 with room to spare, but an n = 256 divergent run decides
/// around simulated t ≈ 300 s (ten phases at ~30 s each — the price of
/// the scaled tick), so cells past n = 64 get a 600 s budget. An
/// explicit `TURQUOIS_TIME_LIMIT` overrides both uniformly.
fn scale_limit(n: usize, base: Duration, env_override: bool) -> Duration {
    if env_override || n <= 64 {
        base
    } else {
        Duration::from_secs(600)
    }
}

/// What one repetition contributes to a grid cell.
#[derive(Clone)]
struct ScaleSample {
    decided: bool,
    mean_ms: Option<f64>,
    worst_ms: Option<f64>,
    /// Simulated time when the run stopped (seconds).
    end_s: f64,
    /// Largest per-node store high-water mark (bytes).
    peak_store: usize,
    queue_drops: u64,
    retried: bool,
    /// Host wall-clock seconds for this repetition. Reported only on
    /// stderr / in the bench JSON — stdout stays deterministic.
    wall_s: f64,
}

/// Runs one supervised `(fault load, n, rep)` job. Outer `Err` = stall
/// (retryable with a bigger budget); inner `Err` = completed with a
/// fatal finding (safety/config — never retried, never downgraded).
fn run_cell_rep(
    load: FaultLoad,
    n: usize,
    rep: usize,
    base_limit: Duration,
    attempt: Attempt,
) -> Result<Result<ScaleSample, String>, Box<StallReport>> {
    let started = Instant::now();
    let outcome = match Scenario::new(Protocol::Turquois, n)
        .proposals(ProposalDistribution::Divergent)
        .fault_load(load)
        .phy(scale_phy(n))
        .tick_interval(scale_tick(n))
        .time_limit(base_limit * attempt.budget_scale)
        .seed(0x5CA1E_u64
            .wrapping_mul(rep as u64 + 1)
            .wrapping_add(n as u64))
        .run_once()
    {
        Ok(o) => o,
        Err(e) => return Ok(Err(format!("config: {e}"))),
    };
    if !outcome.agreement_holds() || !outcome.validity_holds() {
        return Ok(Err(format!(
            "SAFETY VIOLATION: {} n={n} rep={rep}",
            load.name()
        )));
    }
    if !outcome.k_reached() {
        if let Some(stall) = outcome.stall {
            return Err(Box::new(stall));
        }
    }
    let latencies = outcome.latencies_ms();
    Ok(Ok(ScaleSample {
        decided: outcome.k_reached(),
        mean_ms: outcome.mean_latency_ms(),
        worst_ms: latencies.iter().copied().fold(None, |acc: Option<f64>, l| {
            Some(acc.map_or(l, |a| a.max(l)))
        }),
        end_s: outcome.end.as_secs_f64(),
        peak_store: outcome.peak_store_bytes,
        queue_drops: outcome.stats.queue_drops,
        retried: attempt.index > 0,
        wall_s: started.elapsed().as_secs_f64(),
    }))
}

/// One rendered (aggregated) cell, kept for the bench JSON.
struct CellRow {
    load: &'static str,
    n: usize,
    reps: usize,
    decided: usize,
    mean_ms: f64,
    worst_end_s: f64,
    peak_store: usize,
    wall_s: f64,
    failed: Option<&'static str>,
}

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(3);
    let sizes = sizes_from_env_or(&SCALE_SIZES);
    let threads = runner::threads_from_env();
    let env_override = std::env::var_os("TURQUOIS_TIME_LIMIT").is_some();
    let base_limit = time_limit_from_env(turquois_harness::experiment::DEFAULT_TIME_LIMIT);
    let budget_text = if env_override {
        format!("{}s budget", base_limit.as_secs_f64())
    } else {
        format!(
            "{}s budget, 600s past n = 64",
            base_limit.as_secs_f64()
        )
    };

    println!(
        "Scale grid — Turquois, divergent proposals, baseline loss \
         ({reps} reps, supervised: {budget_text}, stalls retried once at ×{})\n",
        runner::RETRY_BUDGET_SCALE,
    );
    println!(
        "{:>13} {:>4} | {:>8} | {:>9} {:>9} | {:>7} | {:>11} | {:>8} {:>7}",
        "fault load", "n", "decided", "mean ms", "worst ms", "end s", "peak-store", "q-drops", "retried"
    );
    println!("{}", "-".repeat(94));

    // Cell grid in render order; every (cell, rep) fans out as one job.
    let grid: Vec<(usize, usize)> = LOADS
        .iter()
        .enumerate()
        .flat_map(|(l, _)| sizes.iter().map(move |&n| (l, n)))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (outcomes, report) =
        runner::run_supervised_timed(threads, &jobs, |_, &(cell, rep), attempt| {
            let (load_idx, n) = grid[cell];
            let limit = scale_limit(n, base_limit, env_override);
            run_cell_rep(LOADS[load_idx], n, rep, limit, attempt)
        });

    // Aggregate per cell; the first failing repetition decides a
    // failed cell's label, siblings keep their healthy bytes.
    let mut outcomes = outcomes.into_iter();
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut rows: Vec<CellRow> = Vec::new();
    for &(load_idx, n) in &grid {
        let load = LOADS[load_idx];
        let chunk: Vec<_> = outcomes.by_ref().take(reps).collect();
        let mut samples: Vec<ScaleSample> = Vec::with_capacity(reps);
        let mut failed: Option<(&'static str, String)> = None;
        for outcome in chunk {
            if failed.is_some() {
                continue; // drain the chunk; verdict already fixed
            }
            match outcome {
                JobOutcome::Ok(Ok(s)) => samples.push(s),
                JobOutcome::Ok(Err(detail)) => {
                    let reason = if detail.starts_with("SAFETY") {
                        "safety"
                    } else {
                        "config"
                    };
                    failed = Some((reason, detail));
                }
                JobOutcome::Stalled(report) => failed = Some(("stalled", report.to_string())),
                JobOutcome::Panicked(msg) => failed = Some(("panic", msg)),
            }
        }
        if let Some((reason, detail)) = failed {
            println!(
                "{:>13} {:>4} | {:>8} | {:>9} {:>9} | {:>7} | {:>11} | {:>8} {:>7}",
                load.name(),
                n,
                format!("FAILED({reason})"),
                "-",
                "-",
                "-",
                "-",
                "-",
                "-"
            );
            failures.push((format!("{} n={n} FAILED({reason})", load.name()), detail));
            rows.push(CellRow {
                load: load.name(),
                n,
                reps,
                decided: 0,
                mean_ms: 0.0,
                worst_end_s: 0.0,
                peak_store: 0,
                wall_s: 0.0,
                failed: Some(reason),
            });
            continue;
        }
        let decided = samples.iter().filter(|s| s.decided).count();
        let means: Vec<f64> = samples.iter().filter_map(|s| s.mean_ms).collect();
        let mean = means.iter().sum::<f64>() / means.len().max(1) as f64;
        let worst = samples
            .iter()
            .filter_map(|s| s.worst_ms)
            .fold(0.0f64, f64::max);
        let end = samples.iter().map(|s| s.end_s).fold(0.0f64, f64::max);
        let peak = samples.iter().map(|s| s.peak_store).max().unwrap_or(0);
        let q_drops: u64 = samples.iter().map(|s| s.queue_drops).sum();
        let retried = samples.iter().filter(|s| s.retried).count();
        let wall: f64 = samples.iter().map(|s| s.wall_s).sum();
        println!(
            "{:>13} {:>4} | {:>5}/{:<2} | {:>9.1} {:>9.1} | {:>7.3} | {:>10}B | {:>8} {:>7}",
            load.name(),
            n,
            decided,
            reps,
            mean,
            worst,
            end,
            peak,
            q_drops,
            retried
        );
        eprintln!(
            "[scale] {} n={n}: wall {:.2}s over {} reps",
            load.name(),
            wall,
            samples.len()
        );
        rows.push(CellRow {
            load: load.name(),
            n,
            reps,
            decided,
            mean_ms: mean,
            worst_end_s: end,
            peak_store: peak,
            wall_s: wall,
            failed: None,
        });
    }
    println!();
    println!(
        "peak-store = worst per-node message-store high-water mark; \
         end s = latest simulated stop time."
    );
    println!("Safety (agreement + validity) was asserted on every run.");

    report.log("table_scale");
    write_scale_json(&rows, &report);
    if !failures.is_empty() {
        for (head, detail) in &failures {
            eprintln!("[supervisor] {head}:");
            for line in detail.lines() {
                eprintln!("[supervisor]   {line}");
            }
        }
        std::process::exit(1);
    }
}

/// Writes `results/BENCH_scale.json` (or `$TURQUOIS_BENCH_JSON`): the
/// per-cell host wall-clock telemetry that must stay out of the
/// deterministic stdout table, plus the runner fan-out summary. I/O
/// failures warn on stderr instead of aborting.
fn write_scale_json(rows: &[CellRow], report: &runner::RunnerReport) {
    let path = std::env::var_os("TURQUOIS_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").join("BENCH_scale.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
    }
    let mut json = String::new();
    json.push_str("{\n  \"bin\": \"table_scale\",\n");
    json.push_str(&format!(
        "  \"runner\": {{\"jobs\": {}, \"threads\": {}, \"wall_s\": {:.3}, \"speedup\": {:.2}}},\n",
        report.jobs,
        report.threads,
        report.elapsed.as_secs_f64(),
        report.speedup()
    ));
    json.push_str("  \"cells\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"load\": \"{}\", \"n\": {}, \"reps\": {}, \"decided\": {}, \
             \"mean_ms\": {:.1}, \"worst_end_s\": {:.3}, \"peak_store_bytes\": {}, \
             \"wall_s\": {:.3}, \"failed\": {}}}{}\n",
            row.load,
            row.n,
            row.reps,
            row.decided,
            row.mean_ms,
            row.worst_end_s,
            row.peak_store,
            row.wall_s,
            row.failed
                .map(|r| format!("\"{r}\""))
                .unwrap_or_else(|| "null".into()),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("[scale] wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
