//! Ablation A2: the σ omission bound.
//!
//! Turquois guarantees progress in rounds where omissions stay within
//! σ = ⌈(n−t)/2⌉(n−k−t) + k − 2 (paper §1/§5), and guarantees safety no
//! matter how many omissions occur. This sweep runs an omission
//! adversary with a per-10 ms kill budget from 0 to well past σ and
//! reports decision latency / completion — demonstrating graceful
//! degradation, not a cliff, plus unconditional safety.
//!
//! Usage: `sigma_sweep [reps]` (default 20; `TURQUOIS_THREADS` fans the
//! repetitions out — output is byte-identical at any count).

use turquois_core::Config;
use turquois_harness::experiment::reps_from_env;
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::*;

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(20);
    let threads = runner::threads_from_env();
    let n = 10;
    let cfg = Config::evaluation(n).expect("valid n");
    let sigma = cfg.sigma(0);
    println!(
        "A2 — omission-budget sweep, n={n}, k={}, σ(t=0)={sigma} ({reps} reps)\n",
        cfg.k()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "budget", "mean ms", "worst ms", "complete"
    );

    let budgets = [0usize, sigma / 2, sigma, sigma * 2, sigma * 4, sigma * 8];
    let jobs: Vec<(usize, usize)> = (0..budgets.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (results, report) = runner::run_indexed_timed(threads, &jobs, |_, &(cell, rep)| {
        let budget = budgets[cell];
        let outcome = Scenario::new(Protocol::Turquois, n)
            .loss(LossSpec::Budget {
                budget,
                window_ms: 10,
            })
            .time_limit(std::time::Duration::from_secs(30))
            .seed(0xA2u64.wrapping_mul(rep as u64 + 1))
            .run_once()
            .expect("valid scenario");
        assert!(
            outcome.agreement_holds(),
            "safety must hold at any omission rate"
        );
        assert!(outcome.validity_holds());
        (outcome.k_reached(), outcome.mean_latency_ms())
    });

    let mut results = results.into_iter();
    for &budget in &budgets {
        let mut means = Vec::new();
        let mut complete = 0usize;
        for (k_reached, mean) in results.by_ref().take(reps) {
            if k_reached {
                complete += 1;
                if let Some(mean) = mean {
                    means.push(mean);
                }
            }
        }
        if means.is_empty() {
            println!(
                "{budget:>8} {:>12} {:>12} {:>7}/{reps}",
                "stalled", "stalled", complete
            );
        } else {
            let mean = means.iter().sum::<f64>() / means.len() as f64;
            let worst = means.iter().cloned().fold(0.0f64, f64::max);
            println!("{budget:>8} {mean:>12.1} {worst:>12.1} {:>7}/{reps}", complete);
        }
    }
    println!("\nSafety (agreement + validity) was asserted on every run.");
    report.log("sigma_sweep");
    runner::write_bench_json(
        "sigma_sweep",
        &[BenchRecord {
            label: "sigma_sweep".into(),
            report,
        }],
    );
}
