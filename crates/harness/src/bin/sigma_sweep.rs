//! Ablation A2: the σ omission bound.
//!
//! Turquois guarantees progress in rounds where omissions stay within
//! σ = ⌈(n−t)/2⌉(n−k−t) + k − 2 (paper §1/§5), and guarantees safety no
//! matter how many omissions occur. This sweep runs an omission
//! adversary with a per-10 ms kill budget from 0 to well past σ and
//! reports decision latency / completion — demonstrating graceful
//! degradation, not a cliff, plus unconditional safety.
//!
//! Usage: `sigma_sweep [reps]` (default 20).

use turquois_core::Config;
use turquois_harness::experiment::reps_from_env;
use turquois_harness::*;

fn main() {
    let reps = reps_from_env(20);
    let n = 10;
    let cfg = Config::evaluation(n).expect("valid n");
    let sigma = cfg.sigma(0);
    println!("A2 — omission-budget sweep, n={n}, k={}, σ(t=0)={sigma} ({reps} reps)\n", cfg.k());
    println!("{:>8} {:>12} {:>12} {:>10}", "budget", "mean ms", "worst ms", "complete");
    for budget in [0usize, sigma / 2, sigma, sigma * 2, sigma * 4, sigma * 8] {
        let mut means = Vec::new();
        let mut complete = 0usize;
        for rep in 0..reps {
            let outcome = Scenario::new(Protocol::Turquois, n)
                .loss(LossSpec::Budget { budget, window_ms: 10 })
                .time_limit(std::time::Duration::from_secs(30))
                .seed(0xA2u64.wrapping_mul(rep as u64 + 1))
                .run_once()
                .expect("valid scenario");
            assert!(outcome.agreement_holds(), "safety must hold at any omission rate");
            assert!(outcome.validity_holds());
            if outcome.k_reached() {
                complete += 1;
                if let Some(mean) = outcome.mean_latency_ms() {
                    means.push(mean);
                }
            }
        }
        if means.is_empty() {
            println!("{budget:>8} {:>12} {:>12} {:>7}/{reps}", "stalled", "stalled", complete);
        } else {
            let mean = means.iter().sum::<f64>() / means.len() as f64;
            let worst = means.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "{budget:>8} {mean:>12.1} {worst:>12.1} {:>7}/{reps}",
                complete
            );
        }
    }
    println!("\nSafety (agreement + validity) was asserted on every run.");
}
