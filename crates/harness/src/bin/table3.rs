//! Regenerates Table 3 of the paper: average latency with
//! `f = ⌊(n−1)/3⌋` Byzantine processes following the §7.2 attack
//! strategies.
//!
//! Usage: `table3 [reps]` (default 50).

use turquois_harness::experiment::{paper_table, render_table, reps_from_env, sizes_from_env};
use turquois_harness::FaultLoad;

fn main() {
    let reps = reps_from_env(50);
    let sizes = sizes_from_env();
    let rows = paper_table(FaultLoad::Byzantine, &sizes, reps);
    println!(
        "{}",
        render_table(
            &format!("Table 3 — Byzantine fault load ({reps} repetitions, latency ms ± 95% CI)"),
            &rows
        )
    );
}
