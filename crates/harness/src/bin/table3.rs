//! Regenerates Table 3 of the paper: average latency with
//! `f = ⌊(n−1)/3⌋` Byzantine processes following the §7.2 attack
//! strategies.
//!
//! Usage: `table3 [reps]` (default 50; `TURQUOIS_THREADS` selects the
//! worker pool — output is byte-identical at any thread count).

use turquois_harness::experiment::{paper_table_on, render_table, reps_from_env, sizes_from_env};
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::FaultLoad;

fn main() {
    let reps = reps_from_env(50);
    let sizes = sizes_from_env();
    let threads = runner::threads_from_env();
    let (rows, report) = paper_table_on(FaultLoad::Byzantine, &sizes, reps, threads);
    println!(
        "{}",
        render_table(
            &format!("Table 3 — Byzantine fault load ({reps} repetitions, latency ms ± 95% CI)"),
            &rows
        )
    );
    report.log("table3");
    runner::write_bench_json(
        "table3",
        &[BenchRecord {
            label: "table3".into(),
            report,
        }],
    );
}
