//! Fault-matrix experiment: Turquois under *composed* faults.
//!
//! The paper evaluates fault loads one at a time; this matrix stacks
//! them into a severity ladder S0–S4 (Gilbert–Elliott burst loss ×
//! jamming window × crash-then-rejoin of a correct node × Byzantine
//! split-brain adversary) and measures how decision rate and latency
//! degrade as the composition deepens. Every run still asserts
//! agreement + validity — graceful degradation is only interesting if
//! safety never bends.
//!
//! Runs are supervised ([`runner::run_supervised_timed`]): a job that
//! exhausts its simulated-time budget is retried once with a
//! [`runner::RETRY_BUDGET_SCALE`]× budget (distinguishing *slow* from
//! *stuck*), panics are isolated to their cell, and any cell that still
//! fails renders `FAILED(<reason>)` while its siblings keep their
//! exact healthy-run bytes. The process exits nonzero if anything
//! failed.
//!
//! Usage: `fault_matrix [reps]` (default 20; `TURQUOIS_REPS`,
//! `TURQUOIS_SIZES`, `TURQUOIS_THREADS`, `TURQUOIS_TIME_LIMIT`
//! respected). `TURQUOIS_FM_FORCE_STALL=1` replaces the matrix with an
//! always-stalling configuration to demonstrate — and let CI assert —
//! the stall-detection path end to end: the supervisor must catch the
//! stall, print its [`StallReport`], and exit nonzero.

use std::time::Duration;
use turquois_harness::experiment::{reps_from_env, sizes_from_env, time_limit_from_env};
use turquois_harness::runner::{self, Attempt, BenchRecord, JobOutcome};
use turquois_harness::{FaultLoad, LossSpec, Protocol, ProposalDistribution, Scenario};
use wireless_net::supervise::StallReport;
use wireless_net::CrashSchedule;

/// One rung of the severity ladder.
struct Severity {
    label: &'static str,
    desc: &'static str,
    fault_load: FaultLoad,
    loss: LossSpec,
    /// `(phase, rejoin_ms)`: crash node 0 (always correct — faulty
    /// nodes are the last `f`) when it reaches `phase`, rejoin after
    /// `rejoin_ms` of downtime with reset engine state.
    crash: Option<(u32, u64)>,
}

/// Burst loss shared by S1–S4: enter the bad state with p=0.02 per
/// delivery, leave with p=0.25, drop 60 % while bad.
const BURST: (f64, f64, f64) = (0.02, 0.25, 0.6);

fn severities() -> Vec<Severity> {
    let burst = LossSpec::Burst(BURST.0, BURST.1, BURST.2);
    let jammed = LossSpec::Composed(vec![
        burst.clone(),
        LossSpec::Jam {
            start_ms: 30,
            len_ms: 60,
        },
    ]);
    vec![
        Severity {
            label: "S0",
            desc: "baseline: no injected faults",
            fault_load: FaultLoad::FailureFree,
            loss: LossSpec::None,
            crash: None,
        },
        Severity {
            label: "S1",
            desc: "burst loss: Gilbert–Elliott p_gb=0.02 p_bg=0.25 loss_bad=0.60",
            fault_load: FaultLoad::FailureFree,
            loss: burst,
            crash: None,
        },
        Severity {
            label: "S2",
            desc: "S1 + jamming window [30 ms, 90 ms)",
            fault_load: FaultLoad::FailureFree,
            loss: jammed.clone(),
            crash: None,
        },
        Severity {
            label: "S3",
            desc: "S2 + node 0 crashes at phase 3, rejoins after 250 ms (engine reset)",
            fault_load: FaultLoad::FailureFree,
            loss: jammed.clone(),
            crash: Some((3, 250)),
        },
        Severity {
            label: "S4",
            desc: "S3 + Byzantine split-brain adversary (f faulty)",
            fault_load: FaultLoad::Byzantine,
            loss: jammed,
            crash: Some((3, 250)),
        },
    ]
}

/// What one repetition contributes to a matrix cell.
#[derive(Clone)]
struct FmSample {
    decided: bool,
    mean_ms: Option<f64>,
    worst_ms: Option<f64>,
    queue_drops: u64,
    crash_drops: u64,
    retried: bool,
}

/// Runs one supervised `(severity, n, rep)` job. Outer `Err` = stall
/// (retryable with a bigger budget); inner `Err` = completed with a
/// fatal finding (safety/config — never retried, never downgraded).
fn run_cell_rep(
    sev: &Severity,
    n: usize,
    rep: usize,
    base_limit: Duration,
    attempt: Attempt,
) -> Result<Result<FmSample, String>, Box<StallReport>> {
    let mut scenario = Scenario::new(Protocol::Turquois, n)
        .proposals(ProposalDistribution::Divergent)
        .fault_load(sev.fault_load)
        .loss(sev.loss.clone())
        .time_limit(base_limit * attempt.budget_scale)
        .seed(0xFA_u64
            .wrapping_mul(rep as u64 + 1)
            .wrapping_add(n as u64));
    if let Some((phase, rejoin_ms)) = sev.crash {
        scenario = scenario.crashes(
            CrashSchedule::new()
                .crash_at_phase(0, phase)
                .rejoin_after(Duration::from_millis(rejoin_ms)),
        );
    }
    let outcome = match scenario.run_once() {
        Ok(o) => o,
        Err(e) => return Ok(Err(format!("config: {e}"))),
    };
    if !outcome.agreement_holds() || !outcome.validity_holds() {
        return Ok(Err(format!(
            "SAFETY VIOLATION: severity {} n={n} rep={rep}",
            sev.label
        )));
    }
    if !outcome.k_reached() {
        if let Some(stall) = outcome.stall {
            return Err(Box::new(stall));
        }
    }
    let latencies = outcome.latencies_ms();
    Ok(Ok(FmSample {
        decided: outcome.k_reached(),
        mean_ms: outcome.mean_latency_ms(),
        worst_ms: latencies.iter().copied().fold(None, |acc: Option<f64>, l| {
            Some(acc.map_or(l, |a| a.max(l)))
        }),
        queue_drops: outcome.stats.queue_drops,
        crash_drops: outcome.stats.crash_drops,
        retried: attempt.index > 0,
    }))
}

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(20);
    let sizes = sizes_from_env();
    let threads = runner::threads_from_env();
    let limit = time_limit_from_env(turquois_harness::experiment::DEFAULT_TIME_LIMIT);

    if std::env::var_os("TURQUOIS_FM_FORCE_STALL").is_some() {
        force_stall_demo(threads);
        return;
    }

    let severities = severities();
    println!(
        "Fault matrix — Turquois, divergent proposals, composed faults \
         ({reps} reps, supervised: {}s budget, stalls retried once at ×{})\n",
        limit.as_secs_f64(),
        runner::RETRY_BUDGET_SCALE,
    );
    for sev in &severities {
        println!("  {} = {}", sev.label, sev.desc);
    }
    println!();
    println!(
        "{:>4} {:>4} | {:>8} | {:>9} {:>9} | {:>8} {:>8} | {:>7}",
        "sev", "n", "decided", "mean ms", "worst ms", "q-drops", "c-drops", "retried"
    );
    println!("{}", "-".repeat(76));

    // Cell grid in render order; every (cell, rep) fans out as one job.
    let grid: Vec<(usize, usize)> = severities
        .iter()
        .enumerate()
        .flat_map(|(s, _)| sizes.iter().map(move |&n| (s, n)))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (outcomes, report) = runner::run_supervised_timed(threads, &jobs, |_, &(cell, rep), attempt| {
        let (sev_idx, n) = grid[cell];
        run_cell_rep(&severities[sev_idx], n, rep, limit, attempt)
    });

    // Aggregate per cell; the first failing repetition decides a
    // failed cell's label, siblings keep their healthy bytes.
    let mut outcomes = outcomes.into_iter();
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut totals = (0u64, 0u64, 0usize); // q-drops, c-drops, retried
    for &(sev_idx, n) in &grid {
        let sev = &severities[sev_idx];
        let chunk: Vec<_> = outcomes.by_ref().take(reps).collect();
        let mut samples: Vec<FmSample> = Vec::with_capacity(reps);
        let mut failed: Option<(&'static str, String)> = None;
        for outcome in chunk {
            if failed.is_some() {
                continue; // drain the chunk; verdict already fixed
            }
            match outcome {
                JobOutcome::Ok(Ok(s)) => samples.push(s),
                JobOutcome::Ok(Err(detail)) => {
                    let reason = if detail.starts_with("SAFETY") {
                        "safety"
                    } else {
                        "config"
                    };
                    failed = Some((reason, detail));
                }
                JobOutcome::Stalled(report) => failed = Some(("stalled", report.to_string())),
                JobOutcome::Panicked(msg) => failed = Some(("panic", msg)),
            }
        }
        if let Some((reason, detail)) = failed {
            println!(
                "{:>4} {:>4} | {:>8} | {:>9} {:>9} | {:>8} {:>8} | {:>7}",
                sev.label,
                n,
                format!("FAILED({reason})"),
                "-",
                "-",
                "-",
                "-",
                "-"
            );
            failures.push((format!("{} n={n} FAILED({reason})", sev.label), detail));
            continue;
        }
        let decided = samples.iter().filter(|s| s.decided).count();
        let means: Vec<f64> = samples.iter().filter_map(|s| s.mean_ms).collect();
        let mean = means.iter().sum::<f64>() / means.len().max(1) as f64;
        let worst = samples
            .iter()
            .filter_map(|s| s.worst_ms)
            .fold(0.0f64, f64::max);
        let q_drops: u64 = samples.iter().map(|s| s.queue_drops).sum();
        let c_drops: u64 = samples.iter().map(|s| s.crash_drops).sum();
        let retried = samples.iter().filter(|s| s.retried).count();
        totals.0 += q_drops;
        totals.1 += c_drops;
        totals.2 += retried;
        println!(
            "{:>4} {:>4} | {:>5}/{:<2} | {:>9.1} {:>9.1} | {:>8} {:>8} | {:>7}",
            sev.label, n, decided, reps, mean, worst, q_drops, c_drops, retried
        );
    }
    println!();
    println!(
        "stats: tx-queue drops={} crashed-source drops={} retried reps={}",
        totals.0, totals.1, totals.2
    );
    println!("Safety (agreement + validity) was asserted on every run.");

    report.log("fault_matrix");
    runner::write_bench_json(
        "fault_matrix",
        &[BenchRecord {
            label: "fault_matrix".into(),
            report,
        }],
    );
    if !failures.is_empty() {
        for (head, detail) in &failures {
            eprintln!("[supervisor] {head}:");
            for line in detail.lines() {
                eprintln!("[supervisor]   {line}");
            }
        }
        std::process::exit(1);
    }
}

/// An always-stalling configuration (omission budget 80 per 10 ms at
/// n=10 kills every broadcast — the σ-sweep's proven stall recipe) to
/// exercise stall detection end to end. Exits **nonzero** when the
/// supervisor correctly catches the stall; zero means the detection
/// path is broken, which CI asserts against.
fn force_stall_demo(threads: usize) {
    let limit = time_limit_from_env(Duration::from_secs(2));
    println!(
        "Fault matrix — forced-stall demo (omission budget 80/10 ms, n=10, {}s budget)\n",
        limit.as_secs_f64()
    );
    let jobs = [0usize];
    let (outcomes, _) = runner::run_supervised_timed(threads, &jobs, |_, _, attempt| {
        let outcome = Scenario::new(Protocol::Turquois, 10)
            .proposals(ProposalDistribution::Divergent)
            .loss(LossSpec::Budget {
                budget: 80,
                window_ms: 10,
            })
            .time_limit(limit * attempt.budget_scale)
            .seed(0xFA)
            .run_once()
            .expect("valid scenario");
        assert!(
            outcome.agreement_holds() && outcome.validity_holds(),
            "safety must hold even in a stalled run"
        );
        if !outcome.k_reached() {
            if let Some(stall) = outcome.stall {
                return Err(Box::new(stall));
            }
        }
        Ok(format!(
            "unexpectedly decided: {}/{} correct",
            outcome.decided_correct(),
            outcome.k
        ))
    });
    match outcomes.into_iter().next() {
        Some(JobOutcome::Stalled(report)) => {
            println!("supervisor caught the stall after escalated retry:\n");
            println!("{report}");
            eprintln!("[supervisor] forced-stall demo: stall detected as expected");
            std::process::exit(1);
        }
        other => {
            println!("stall detection FAILED to trigger: {other:?}");
        }
    }
}
