//! Ablation A6: does Turquois's advantage survive modern CPUs?
//!
//! The paper attributes ABBA's cost to RSA-class cryptography on a
//! 600 MHz Pentium III. This ablation re-runs the failure-free cell
//! under three CPU cost models — the paper's hardware, modern commodity
//! hardware, and free (zero-cost) cryptography — separating the
//! *computation* share of each protocol's latency from the *network*
//! share. The punchline: even with free cryptography, ABBA and Bracha
//! stay an order of magnitude behind, because the broadcast medium, not
//! the CPU, is the dominant resource — which is the deeper half of the
//! paper's argument.
//!
//! Usage: `cost_ablation [reps]` (default 15).

use turquois_crypto::cost::CostModel;
use turquois_harness::experiment::reps_from_env;
use turquois_harness::*;

fn main() {
    let reps = reps_from_env(15);
    let n = 10;
    println!("A6 — CPU cost-model ablation, n={n}, failure-free unanimous ({reps} reps)\n");
    println!(
        "{:>16} {:>12} {:>12} {:>12}",
        "cost model", "Turquois", "ABBA", "Bracha"
    );
    for (name, model) in [
        ("pentium3-600", CostModel::pentium3_600()),
        ("modern", CostModel::modern()),
        ("free", CostModel::free()),
    ] {
        let mut cells = Vec::new();
        for proto in [Protocol::Turquois, Protocol::Abba, Protocol::Bracha] {
            let mut means = Vec::new();
            for rep in 0..reps {
                let outcome = Scenario::new(proto, n)
                    .cost_model(model)
                    .seed(0xA6u64.wrapping_mul(rep as u64 + 1))
                    .run_once()
                    .expect("valid scenario");
                assert!(outcome.agreement_holds() && outcome.validity_holds());
                if let Some(m) = outcome.mean_latency_ms() {
                    means.push(m);
                }
            }
            cells.push(means.iter().sum::<f64>() / means.len().max(1) as f64);
        }
        println!(
            "{name:>16} {:>12.1} {:>12.1} {:>12.1}",
            cells[0], cells[1], cells[2]
        );
    }
    println!("\nIf the ABBA gap persists under `free`, the medium — not RSA — dominates.");
}
