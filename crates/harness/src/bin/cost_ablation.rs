//! Ablation A6: does Turquois's advantage survive modern CPUs?
//!
//! The paper attributes ABBA's cost to RSA-class cryptography on a
//! 600 MHz Pentium III. This ablation re-runs the failure-free cell
//! under three CPU cost models — the paper's hardware, modern commodity
//! hardware, and free (zero-cost) cryptography — separating the
//! *computation* share of each protocol's latency from the *network*
//! share. The punchline: even with free cryptography, ABBA and Bracha
//! stay an order of magnitude behind, because the broadcast medium, not
//! the CPU, is the dominant resource — which is the deeper half of the
//! paper's argument.
//!
//! Usage: `cost_ablation [reps]` (default 15; `TURQUOIS_THREADS` fans
//! the grid out — output is byte-identical at any count).

use turquois_crypto::cost::CostModel;
use turquois_harness::experiment::reps_from_env;
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::*;

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(15);
    let threads = runner::threads_from_env();
    let n = 10;
    println!("A6 — CPU cost-model ablation, n={n}, failure-free unanimous ({reps} reps)\n");
    println!(
        "{:>16} {:>12} {:>12} {:>12}",
        "cost model", "Turquois", "ABBA", "Bracha"
    );

    let models = [
        ("pentium3-600", CostModel::pentium3_600()),
        ("modern", CostModel::modern()),
        ("free", CostModel::free()),
    ];
    let mut grid = Vec::new();
    for &(_, model) in &models {
        for proto in [Protocol::Turquois, Protocol::Abba, Protocol::Bracha] {
            grid.push((model, proto));
        }
    }
    let jobs: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (results, report) = runner::run_indexed_timed(threads, &jobs, |_, &(cell, rep)| {
        let (model, proto) = grid[cell];
        let outcome = Scenario::new(proto, n)
            .cost_model(model)
            .seed(0xA6u64.wrapping_mul(rep as u64 + 1))
            .run_once()
            .expect("valid scenario");
        assert!(outcome.agreement_holds() && outcome.validity_holds());
        outcome.mean_latency_ms()
    });

    let mut results = results.into_iter();
    for &(name, _) in &models {
        let mut cells = Vec::new();
        for _ in 0..3 {
            let means: Vec<f64> = results.by_ref().take(reps).flatten().collect();
            cells.push(means.iter().sum::<f64>() / means.len().max(1) as f64);
        }
        println!(
            "{name:>16} {:>12.1} {:>12.1} {:>12.1}",
            cells[0], cells[1], cells[2]
        );
    }
    println!("\nIf the ABBA gap persists under `free`, the medium — not RSA — dominates.");
    report.log("cost_ablation");
    runner::write_bench_json(
        "cost_ablation",
        &[BenchRecord {
            label: "cost_ablation".into(),
            report,
        }],
    );
}
