//! Ablation A7: the clock-tick interval.
//!
//! §7.3 blames part of Turquois's fail-stop sensitivity on its "crude"
//! fixed 10 ms retransmission timeout. This sweep varies the tick
//! interval and shows the trade-off: short ticks burn airtime
//! (collisions) for marginal latency; long ticks stretch loss recovery.
//!
//! Usage: `tick_ablation [reps]` (default 15; `TURQUOIS_THREADS` fans
//! the grid out — output is byte-identical at any count). Each worker
//! builds its own simulator; only plain results cross threads.

use std::time::Duration;
use turquois_core::config::Config;
use turquois_core::instance::Turquois;
use turquois_core::KeyRing;
use turquois_crypto::cost::CostModel;
use turquois_harness::adapters::{RunProbe, TurquoisApp};
use turquois_harness::experiment::reps_from_env;
use turquois_harness::runner::{self, BenchRecord};
use wireless_net::fault::IidLoss;
use wireless_net::sim::{Application, SimConfig, Simulator};
use wireless_net::time::SimTime;

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(15);
    let threads = runner::threads_from_env();
    let n = 7;
    let cfg = Config::evaluation(n).expect("valid");
    println!("A7 — clock-tick sweep, n={n}, 10% loss, divergent ({reps} reps)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "tick ms", "mean ms", "frames", "collisions"
    );

    let ticks = [2u64, 5, 10, 20, 50];
    let jobs: Vec<(usize, usize)> = (0..ticks.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (results, report) = runner::run_indexed_timed(threads, &jobs, |_, &(cell, rep)| {
        let tick_ms = ticks[cell];
        let seed = 0xA7u64.wrapping_mul(rep as u64 + 1);
        let rings = KeyRing::trusted_setup(n, 600, seed);
        let probe = RunProbe::new(n);
        let apps: Vec<Box<dyn Application>> = rings
            .into_iter()
            .enumerate()
            .map(|(i, ring)| {
                let inst = Turquois::new(cfg, i, i % 2 == 1, ring, seed + i as u64);
                Box::new(
                    TurquoisApp::new(inst, CostModel::pentium3_600(), probe.clone())
                        .tick_interval(Duration::from_millis(tick_ms)),
                ) as Box<dyn Application>
            })
            .collect();
        let mut sim = Simulator::new(
            SimConfig {
                seed,
                ..SimConfig::default()
            },
            Box::new(IidLoss::new(0.10, seed)),
            apps,
        );
        sim.run_until_k_decided(n, SimTime::from_millis(60_000));
        let lat: Vec<f64> = (0..n)
            .filter_map(|i| {
                sim.decisions()[i]
                    .map(|d| d.time.saturating_since(sim.start_times()[i]).as_secs_f64() * 1e3)
            })
            .collect();
        let mean = if lat.is_empty() {
            None
        } else {
            Some(lat.iter().sum::<f64>() / lat.len() as f64)
        };
        (sim.stats().frames_sent(), sim.stats().collisions, mean)
    });

    let mut results = results.into_iter();
    for &tick_ms in &ticks {
        let mut means = Vec::new();
        let mut frames = 0u64;
        let mut collisions = 0u64;
        for (f, c, mean) in results.by_ref().take(reps) {
            frames += f;
            collisions += c;
            if let Some(mean) = mean {
                means.push(mean);
            }
        }
        println!(
            "{tick_ms:>10} {:>12.1} {:>12.0} {:>12.1}",
            means.iter().sum::<f64>() / means.len().max(1) as f64,
            frames as f64 / reps as f64,
            collisions as f64 / reps as f64,
        );
    }
    report.log("tick_ablation");
    runner::write_bench_json(
        "tick_ablation",
        &[BenchRecord {
            label: "tick_ablation".into(),
            report,
        }],
    );
}
