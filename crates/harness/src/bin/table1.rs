//! Regenerates Table 1 of the paper: average latency (ms) ± 95 % CI in
//! a failure-free 802.11b network, for n ∈ {4, 7, 10, 13, 16},
//! unanimous and divergent proposals, Turquois vs ABBA vs Bracha.
//!
//! Usage: `table1 [reps]` (default 50; env `TURQUOIS_REPS`,
//! `TURQUOIS_SIZES`, `TURQUOIS_THREADS` also respected). The table is
//! byte-identical at any thread count; wall-clock timing goes to stderr
//! and `results/BENCH_runner.json`.
//!
//! Runs are supervised: jobs are panic-isolated, a run that exhausts
//! its simulated-time budget (`TURQUOIS_TIME_LIMIT`, seconds) is
//! retried once at an escalated budget, and a cell that still fails
//! renders `FAILED(<reason>)` while its siblings keep their exact
//! healthy-run bytes; the process then exits nonzero.

use turquois_harness::experiment::{
    paper_table_supervised_on, render_table, reps_from_env, sabotage_from_env,
    sizes_from_env, table_stats_line, time_limit_from_env, DEFAULT_TIME_LIMIT,
};
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::FaultLoad;

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(50);
    let sizes = sizes_from_env();
    let threads = runner::threads_from_env();
    let limit = time_limit_from_env(DEFAULT_TIME_LIMIT);
    let (rows, health, report) = paper_table_supervised_on(
        FaultLoad::FailureFree,
        &sizes,
        reps,
        threads,
        limit,
        sabotage_from_env(),
    );
    println!(
        "{}",
        render_table(
            &format!("Table 1 — failure-free fault load ({reps} repetitions, latency ms ± 95% CI)"),
            &rows
        )
    );
    println!("{}", table_stats_line(&rows));
    report.log("table1");
    runner::write_bench_json(
        "table1",
        &[BenchRecord {
            label: "table1".into(),
            report,
        }],
    );
    if !health.ok() {
        health.log();
        std::process::exit(1);
    }
}
