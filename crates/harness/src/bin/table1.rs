//! Regenerates Table 1 of the paper: average latency (ms) ± 95 % CI in
//! a failure-free 802.11b network, for n ∈ {4, 7, 10, 13, 16},
//! unanimous and divergent proposals, Turquois vs ABBA vs Bracha.
//!
//! Usage: `table1 [reps]` (default 50; env `TURQUOIS_REPS`,
//! `TURQUOIS_SIZES`, `TURQUOIS_THREADS` also respected). The table is
//! byte-identical at any thread count; wall-clock timing goes to stderr
//! and `results/BENCH_runner.json`.

use turquois_harness::experiment::{paper_table_on, render_table, reps_from_env, sizes_from_env};
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::FaultLoad;

fn main() {
    let reps = reps_from_env(50);
    let sizes = sizes_from_env();
    let threads = runner::threads_from_env();
    let (rows, report) = paper_table_on(FaultLoad::FailureFree, &sizes, reps, threads);
    println!(
        "{}",
        render_table(
            &format!("Table 1 — failure-free fault load ({reps} repetitions, latency ms ± 95% CI)"),
            &rows
        )
    );
    report.log("table1");
    runner::write_bench_json(
        "table1",
        &[BenchRecord {
            label: "table1".into(),
            report,
        }],
    );
}
