//! Partition-matrix experiment: consensus across network splits and
//! heals.
//!
//! The paper's evaluation lives in one broadcast domain; this matrix
//! puts all three engines through scheduled partitions
//! ([`wireless_net::topology::PartitionSchedule`]) and measures the
//! robustness claim directly: a **quorum-keeping** split (majority
//! `n − f` / minority `f`) must keep the majority deciding while the
//! minority waits, a **quorum-breaking** split (even halves) must stop
//! *everyone* from deciding — safety over liveness — and after the
//! heal every node must decide, with the post-heal recovery latency
//! (heal simtime → last node's decision) as the headline number.
//!
//! Three facts are asserted on every run, not sampled:
//! agreement + validity; that no node whose partition component is
//! below its engine's decision quorum decides while split; and that
//! the full group eventually decides. Any violation renders
//! `FAILED(<reason>)` and the process exits nonzero.
//!
//! Runs are supervised ([`runner::run_supervised_timed`]): a stalled
//! job retries once at a [`runner::RETRY_BUDGET_SCALE`]× budget, and a
//! stall that survives prints its [`StallReport`] — whose per-node
//! reachable/component columns are exactly the diagnostic a partition
//! stall needs.
//!
//! Output: `results/partition_matrix.txt` (stdout) and
//! `results/BENCH_partition.json` (recovery-latency summary; override
//! the path with `TURQUOIS_PARTITION_JSON`). `TURQUOIS_REPS`,
//! `TURQUOIS_SIZES`, `TURQUOIS_THREADS`, `TURQUOIS_TIME_LIMIT`
//! respected.

use std::path::{Path, PathBuf};
use std::time::Duration;
use turquois_harness::experiment::{reps_from_env, sizes_from_env, time_limit_from_env};
use turquois_harness::runner::{self, Attempt, BenchRecord, JobOutcome};
use turquois_harness::{Protocol, ProposalDistribution, Scenario};
use wireless_net::supervise::StallReport;
use wireless_net::time::SimTime;
use wireless_net::topology::{PartitionSchedule, TopologySpec};

/// The network splits this early, well before any engine's first
/// decision at the sizes under test.
const SPLIT_AT_MS: u64 = 5;

/// Split shapes under test.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
enum Split {
    /// Majority `n − f` / minority `f`: the majority retains every
    /// engine's decision quorum.
    Keep,
    /// Even halves `⌈n/2⌉ | ⌊n/2⌋`: with `n > 3f ≥ 3` neither half
    /// reaches any engine's quorum — nobody may decide until the heal.
    Break,
}

impl Split {
    fn label(self) -> &'static str {
        match self {
            Split::Keep => "keep",
            Split::Break => "break",
        }
    }

    /// The two groups for a population of `n` (f = ⌊(n−1)/3⌋).
    fn groups(self, n: usize) -> Vec<Vec<usize>> {
        let f = (n - 1) / 3;
        let cut = match self {
            Split::Keep => n - f,
            Split::Break => n.div_ceil(2),
        };
        vec![(0..cut).collect(), (cut..n).collect()]
    }
}

/// Smallest per-sender message count that lets `engine` decide inside a
/// component of an `n`-node group: Turquois quorums are `2·c > n + f`
/// over distinct senders; the reliable-broadcast baselines wait for
/// `n − f` peers.
fn quorum(engine: Protocol, n: usize) -> usize {
    let f = (n - 1) / 3;
    match engine {
        Protocol::Turquois => (n + f) / 2 + 1,
        Protocol::Abba | Protocol::Bracha => n - f,
    }
}

/// What one repetition contributes to a matrix cell.
#[derive(Clone)]
struct PmSample {
    /// Correct nodes decided before the split healed (the surviving
    /// majority under a quorum-keeping split; 0 under quorum-breaking).
    pre_heal: usize,
    /// Heal simtime → last node's decision, ms (`None` when every node
    /// had already decided at heal time).
    recovery_ms: Option<f64>,
    queue_drops: u64,
    retried: bool,
}

/// Runs one supervised `(engine, split, heal, n, rep)` job. Outer
/// `Err` = stall (retryable at a bigger budget); inner `Err` =
/// completed with a fatal finding (safety/quorum/config — never
/// retried, never downgraded).
#[allow(clippy::too_many_arguments)]
fn run_cell_rep(
    engine: Protocol,
    split: Split,
    heal_ms: u64,
    n: usize,
    rep: usize,
    base_limit: Duration,
    attempt: Attempt,
) -> Result<Result<PmSample, String>, Box<StallReport>> {
    let split_at = SimTime::from_millis(SPLIT_AT_MS);
    let heal_at = SimTime::from_millis(heal_ms);
    let groups = split.groups(n);
    let schedule = PartitionSchedule::new()
        .split_at(split_at, groups.clone())
        .heal_at(heal_at);
    let outcome = match Scenario::new(engine, n)
        .proposals(ProposalDistribution::Divergent)
        .topology(TopologySpec::Partition(schedule))
        .time_limit(base_limit * attempt.budget_scale)
        .seed(0x9A_u64.wrapping_mul(rep as u64 + 1).wrapping_add(n as u64))
        .run_once()
    {
        Ok(o) => o,
        Err(e) => return Ok(Err(format!("config: {e}"))),
    };
    let label = format!("{engine:?} {} heal={heal_ms}ms n={n} rep={rep}", split.label());
    if !outcome.agreement_holds() || !outcome.validity_holds() {
        return Ok(Err(format!("SAFETY VIOLATION: {label}")));
    }
    // The robustness claim proper: while split, a component below the
    // engine's quorum must not decide — check every node against its
    // group size.
    let q = quorum(engine, n);
    for group in &groups {
        if group.len() >= q {
            continue;
        }
        for &node in group {
            if let Some(d) = outcome.decisions[node] {
                if d.time >= split_at && d.time < heal_at {
                    return Ok(Err(format!(
                        "SAFETY VIOLATION: {label}: node {node} decided at {} inside a \
                         {}-node sub-quorum component (quorum {q})",
                        d.time,
                        group.len(),
                    )));
                }
            }
        }
    }
    if !outcome.k_reached() {
        if let Some(stall) = outcome.stall {
            return Err(Box::new(stall));
        }
        return Ok(Err(format!("incomplete without stall report: {label}")));
    }
    let pre_heal = outcome
        .decisions
        .iter()
        .flatten()
        .filter(|d| d.time < heal_at)
        .count();
    let recovery_ms = outcome
        .decisions
        .iter()
        .flatten()
        .map(|d| d.time)
        .filter(|&t| t >= heal_at)
        .max()
        .map(|t| t.saturating_since(heal_at).as_secs_f64() * 1e3);
    Ok(Ok(PmSample {
        pre_heal,
        recovery_ms,
        queue_drops: outcome.stats.queue_drops,
        retried: attempt.index > 0,
    }))
}

/// One aggregated matrix cell for the JSON summary.
struct CellSummary {
    engine: Protocol,
    split: Split,
    heal_ms: u64,
    n: usize,
    reps: usize,
    pre_heal_mean: f64,
    recovery_mean_ms: Option<f64>,
    recovery_worst_ms: Option<f64>,
}

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(10);
    let sizes = sizes_from_env();
    let threads = runner::threads_from_env();
    let limit = time_limit_from_env(turquois_harness::experiment::DEFAULT_TIME_LIMIT);

    const ENGINES: [Protocol; 3] = [Protocol::Turquois, Protocol::Abba, Protocol::Bracha];
    const SPLITS: [Split; 2] = [Split::Keep, Split::Break];
    const HEALS_MS: [u64; 2] = [1_000, 3_000];

    println!(
        "Partition matrix — divergent proposals, split at {SPLIT_AT_MS} ms \
         ({reps} reps, supervised: {}s budget, stalls retried once at ×{})\n",
        limit.as_secs_f64(),
        runner::RETRY_BUDGET_SCALE,
    );
    println!("  keep  = majority n−f | minority f   (majority retains quorum)");
    println!("  break = halves ⌈n/2⌉ | ⌊n/2⌋        (no component reaches quorum)");
    println!();
    println!("  asserted on every run: agreement + validity; no sub-quorum component");
    println!("  decides while split; every node decides by the end of the budget.");
    println!("  recovery = heal simtime → last node's decision.");
    println!();
    println!(
        "{:>9} {:>6} {:>8} {:>4} | {:>8} {:>9} | {:>9} {:>9} | {:>8} {:>7}",
        "engine", "split", "heal ms", "n", "decided", "pre-heal", "rec-mean", "rec-worst", "q-drops", "retried"
    );
    println!("{}", "-".repeat(102));

    // Cell grid in render order; every (cell, rep) fans out as one job.
    let mut grid: Vec<(Protocol, Split, u64, usize)> = Vec::new();
    for &e in &ENGINES {
        for &s in &SPLITS {
            for &h in &HEALS_MS {
                for &n in &sizes {
                    grid.push((e, s, h, n));
                }
            }
        }
    }
    let jobs: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (outcomes, report) =
        runner::run_supervised_timed(threads, &jobs, |_, &(cell, rep), attempt| {
            let (engine, split, heal_ms, n) = grid[cell];
            run_cell_rep(engine, split, heal_ms, n, rep, limit, attempt)
        });

    // Aggregate per cell; the first failing repetition decides a failed
    // cell's label, siblings keep their healthy bytes.
    let mut outcomes = outcomes.into_iter();
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut cells: Vec<CellSummary> = Vec::new();
    let mut totals = (0u64, 0usize); // q-drops, retried
    for &(engine, split, heal_ms, n) in &grid {
        let chunk: Vec<_> = outcomes.by_ref().take(reps).collect();
        let mut samples: Vec<PmSample> = Vec::with_capacity(reps);
        let mut failed: Option<(&'static str, String)> = None;
        for outcome in chunk {
            if failed.is_some() {
                continue; // drain the chunk; verdict already fixed
            }
            match outcome {
                JobOutcome::Ok(Ok(s)) => samples.push(s),
                JobOutcome::Ok(Err(detail)) => {
                    let reason = if detail.starts_with("SAFETY") {
                        "safety"
                    } else {
                        "config"
                    };
                    failed = Some((reason, detail));
                }
                JobOutcome::Stalled(report) => failed = Some(("stalled", report.to_string())),
                JobOutcome::Panicked(msg) => failed = Some(("panic", msg)),
            }
        }
        if let Some((reason, detail)) = failed {
            println!(
                "{:>9} {:>6} {:>8} {:>4} | {:>8} {:>9} | {:>9} {:>9} | {:>8} {:>7}",
                format!("{engine:?}"),
                split.label(),
                heal_ms,
                n,
                format!("FAILED({reason})"),
                "-",
                "-",
                "-",
                "-",
                "-"
            );
            failures.push((
                format!("{engine:?} {} heal={heal_ms}ms n={n} FAILED({reason})", split.label()),
                detail,
            ));
            continue;
        }
        let pre_heal_mean =
            samples.iter().map(|s| s.pre_heal).sum::<usize>() as f64 / samples.len().max(1) as f64;
        let recoveries: Vec<f64> = samples.iter().filter_map(|s| s.recovery_ms).collect();
        let recovery_mean_ms = (!recoveries.is_empty())
            .then(|| recoveries.iter().sum::<f64>() / recoveries.len() as f64);
        let recovery_worst_ms = recoveries.iter().copied().fold(None, |acc: Option<f64>, r| {
            Some(acc.map_or(r, |a| a.max(r)))
        });
        let q_drops: u64 = samples.iter().map(|s| s.queue_drops).sum();
        let retried = samples.iter().filter(|s| s.retried).count();
        totals.0 += q_drops;
        totals.1 += retried;
        let fmt_ms = |v: Option<f64>| v.map_or("-".to_string(), |m| format!("{m:.1}"));
        println!(
            "{:>9} {:>6} {:>8} {:>4} | {:>8} {:>9.1} | {:>9} {:>9} | {:>8} {:>7}",
            format!("{engine:?}"),
            split.label(),
            heal_ms,
            n,
            format!("{}/{}", samples.len(), reps),
            pre_heal_mean,
            fmt_ms(recovery_mean_ms),
            fmt_ms(recovery_worst_ms),
            q_drops,
            retried
        );
        cells.push(CellSummary {
            engine,
            split,
            heal_ms,
            n,
            reps: samples.len(),
            pre_heal_mean,
            recovery_mean_ms,
            recovery_worst_ms,
        });
    }
    println!();
    println!("stats: tx-queue drops={} retried reps={}", totals.0, totals.1);
    println!(
        "Safety (agreement + validity) and the sub-quorum no-decision rule \
         were asserted on every run."
    );

    write_partition_json(&cells);
    report.log("partition_matrix");
    runner::write_bench_json(
        "partition_matrix",
        &[BenchRecord {
            label: "partition_matrix".into(),
            report,
        }],
    );
    if !failures.is_empty() {
        for (head, detail) in &failures {
            eprintln!("[supervisor] {head}:");
            for line in detail.lines() {
                eprintln!("[supervisor]   {line}");
            }
        }
        std::process::exit(1);
    }
}

/// Writes `results/BENCH_partition.json` (or `$TURQUOIS_PARTITION_JSON`):
/// the post-heal recovery latencies in machine-readable form. I/O
/// failures warn instead of aborting — telemetry must never kill an
/// experiment.
fn write_partition_json(cells: &[CellSummary]) {
    let path = std::env::var_os("TURQUOIS_PARTITION_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").join("BENCH_partition.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
    }
    let fmt_opt = |v: Option<f64>| v.map_or("null".to_string(), |m| format!("{m:.3}"));
    let mut json = String::new();
    json.push_str("{\n  \"bin\": \"partition_matrix\",\n  \"split_at_ms\": ");
    json.push_str(&SPLIT_AT_MS.to_string());
    json.push_str(",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{:?}\", \"split\": \"{}\", \"heal_ms\": {}, \"n\": {}, \
             \"reps\": {}, \"pre_heal_mean\": {:.3}, \"recovery_mean_ms\": {}, \
             \"recovery_worst_ms\": {}}}{}\n",
            c.engine,
            c.split.label(),
            c.heal_ms,
            c.n,
            c.reps,
            c.pre_heal_mean,
            fmt_opt(c.recovery_mean_ms),
            fmt_opt(c.recovery_worst_ms),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}
