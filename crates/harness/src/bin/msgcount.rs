//! Ablation A5: message complexity in practice.
//!
//! The paper attributes the latency ordering to message complexity:
//! Turquois broadcasts O(n) frames per round, ABBA sends O(n²) unicasts,
//! Bracha O(n³) through reliable broadcast. This experiment counts data
//! frames actually transmitted (including MAC retransmissions) per
//! consensus, per group size.
//!
//! Usage: `msgcount [reps]` (default 10).

use turquois_harness::experiment::{reps_from_env, sizes_from_env};
use turquois_harness::*;

fn main() {
    let reps = reps_from_env(10);
    let sizes = sizes_from_env();
    println!("A5 — data frames per consensus, failure-free unanimous ({reps} reps)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>16}",
        "n", "Turquois", "ABBA", "Bracha", "Bracha/Turquois"
    );
    for &n in &sizes {
        let mut per_proto = Vec::new();
        for proto in [Protocol::Turquois, Protocol::Abba, Protocol::Bracha] {
            let mut frames = 0u64;
            for rep in 0..reps {
                let outcome = Scenario::new(proto, n)
                    .seed(0xA5u64.wrapping_mul(rep as u64 + 1))
                    .run_once()
                    .expect("valid scenario");
                assert!(outcome.agreement_holds());
                frames += outcome.stats.frames_sent();
            }
            per_proto.push(frames as f64 / reps as f64);
        }
        println!(
            "{n:>6} {:>12.0} {:>12.0} {:>12.0} {:>15.1}x",
            per_proto[0],
            per_proto[1],
            per_proto[2],
            per_proto[2] / per_proto[0]
        );
    }
}
