//! Ablation A5: message complexity in practice.
//!
//! The paper attributes the latency ordering to message complexity:
//! Turquois broadcasts O(n) frames per round, ABBA sends O(n²) unicasts,
//! Bracha O(n³) through reliable broadcast. This experiment counts data
//! frames actually transmitted (including MAC retransmissions) per
//! consensus, per group size.
//!
//! Usage: `msgcount [reps]` (default 10; `TURQUOIS_THREADS` fans the
//! grid out — output is byte-identical at any count).

use turquois_harness::experiment::{reps_from_env, sizes_from_env};
use turquois_harness::runner::{self, BenchRecord};
use turquois_harness::*;

fn main() {
    turquois_harness::env_guard::warn_unknown_env_vars();
    let reps = reps_from_env(10);
    let sizes = sizes_from_env();
    let threads = runner::threads_from_env();
    println!("A5 — data frames per consensus, failure-free unanimous ({reps} reps)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>16}",
        "n", "Turquois", "ABBA", "Bracha", "Bracha/Turquois"
    );

    let mut grid = Vec::new();
    for &n in &sizes {
        for proto in [Protocol::Turquois, Protocol::Abba, Protocol::Bracha] {
            grid.push((n, proto));
        }
    }
    let jobs: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (results, report) = runner::run_indexed_timed(threads, &jobs, |_, &(cell, rep)| {
        let (n, proto) = grid[cell];
        let outcome = Scenario::new(proto, n)
            .seed(0xA5u64.wrapping_mul(rep as u64 + 1))
            .run_once()
            .expect("valid scenario");
        assert!(outcome.agreement_holds());
        outcome.stats.frames_sent()
    });

    let mut results = results.into_iter();
    for &n in &sizes {
        let mut per_proto = Vec::new();
        for _ in 0..3 {
            let frames: u64 = results.by_ref().take(reps).sum();
            per_proto.push(frames as f64 / reps as f64);
        }
        println!(
            "{n:>6} {:>12.0} {:>12.0} {:>12.0} {:>15.1}x",
            per_proto[0],
            per_proto[1],
            per_proto[2],
            per_proto[2] / per_proto[0]
        );
    }
    report.log("msgcount");
    runner::write_bench_json(
        "msgcount",
        &[BenchRecord {
            label: "msgcount".into(),
            report,
        }],
    );
}
