//! Latency statistics: mean and 95 % confidence interval, matching the
//! paper's methodology (§7.2: 50 repetitions, average over all
//! processes, 95 % confidence level).

/// Two-sided 97.5 % Student-t quantiles by degrees of freedom (for a
/// 95 % confidence interval).
const T_975: &[(usize, f64)] = &[
    (1, 12.706),
    (2, 4.303),
    (3, 3.182),
    (4, 2.776),
    (5, 2.571),
    (6, 2.447),
    (7, 2.365),
    (8, 2.306),
    (9, 2.262),
    (10, 2.228),
    (12, 2.179),
    (15, 2.131),
    (20, 2.086),
    (25, 2.060),
    (30, 2.042),
    (40, 2.021),
    (60, 2.000),
    (120, 1.980),
];

/// The 97.5 % Student-t quantile for `dof` degrees of freedom
/// (conservative interpolation: the next-lower tabulated entry).
///
/// # Panics
///
/// Panics for `dof == 0` (no confidence interval exists for a single
/// sample).
pub fn t_quantile_975(dof: usize) -> f64 {
    assert!(dof >= 1, "confidence interval needs at least 2 samples");
    let mut best = T_975[0].1;
    for &(d, t) in T_975 {
        if dof >= d {
            best = t;
        }
    }
    if dof > 120 {
        1.96
    } else {
        best
    }
}

/// Mean ± half-width of the 95 % confidence interval over a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyStats {
    /// Sample mean, in milliseconds.
    pub mean_ms: f64,
    /// Half-width of the 95 % confidence interval, in milliseconds
    /// (zero for a single sample).
    pub ci_ms: f64,
    /// Number of samples.
    pub samples: usize,
}

impl LatencyStats {
    /// Computes stats from raw samples (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn from_samples(samples: &[f64]) -> LatencyStats {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return LatencyStats {
                mean_ms: mean,
                ci_ms: 0.0,
                samples: 1,
            };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let se = (var / n as f64).sqrt();
        LatencyStats {
            mean_ms: mean,
            ci_ms: t_quantile_975(n - 1) * se,
            samples: n,
        }
    }

    /// Formats as the paper's tables do: `mean ± ci`.
    pub fn display(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean_ms, self.ci_ms)
    }
}

/// Simple descriptive statistics helper used by the sweep experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Sample mean.
    pub mean: f64,
    /// Median (50th percentile, lower interpolation).
    pub median: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in latency data"));
        Some(Summary {
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median: sorted[(sorted.len() - 1) / 2],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_quantiles_monotone_decreasing() {
        let mut last = f64::INFINITY;
        for dof in 1..=200 {
            let t = t_quantile_975(dof);
            assert!(t <= last + 1e-12, "dof={dof}");
            last = t;
        }
        assert!((t_quantile_975(1) - 12.706).abs() < 1e-9);
        assert!((t_quantile_975(49) - 2.021).abs() < 1e-9, "49 dof → 40 row");
        assert!((t_quantile_975(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn latency_stats_known_values() {
        // Samples 1..=5: mean 3, sd sqrt(2.5), se sqrt(0.5), t(4)=2.776.
        let s = LatencyStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean_ms - 3.0).abs() < 1e-12);
        assert!((s.ci_ms - 2.776 * (0.5f64).sqrt()).abs() < 1e-9);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn single_sample_has_zero_ci() {
        let s = LatencyStats::from_samples(&[42.0]);
        assert_eq!(s.mean_ms, 42.0);
        assert_eq!(s.ci_ms, 0.0);
    }

    #[test]
    fn identical_samples_zero_ci() {
        let s = LatencyStats::from_samples(&[7.0; 50]);
        assert_eq!(s.mean_ms, 7.0);
        assert_eq!(s.ci_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_samples_panic() {
        let _ = LatencyStats::from_samples(&[]);
    }

    #[test]
    fn display_format() {
        let s = LatencyStats {
            mean_ms: 14.9,
            ci_ms: 4.74,
            samples: 50,
        };
        assert_eq!(s.display(), "14.90 ± 4.74");
    }

    #[test]
    fn summary_basics() {
        let s = Summary::from_samples(&[3.0, 1.0, 2.0]).expect("non-empty");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(Summary::from_samples(&[]), None);
    }
}
