//! # turquois-harness — the DSN 2010 evaluation, reproduced
//!
//! Everything needed to regenerate the paper's evaluation section:
//!
//! * [`adapters`] — bind Turquois / Bracha / ABBA to the `wireless-net`
//!   simulator exactly as §7.1 deploys them (UDP broadcast vs. TCP,
//!   IPSec-AH-style HMAC for Bracha, RSA-calibrated CPU charging and
//!   RSA-sized messages for ABBA, 10 ms clock ticks).
//! * [`adversary`] — the §7.2 Byzantine strategies (value flipping for
//!   Turquois/Bracha, invalid-signature flooding for ABBA).
//! * [`scenario`] — one experiment cell: protocol × n × proposal
//!   distribution × fault load × loss model.
//! * [`experiment`] — 50-repetition measurement with mean ± 95 % CI and
//!   per-run safety assertions; paper-style table rendering.
//! * [`runner`] — deterministic parallel `(cell, rep)` fan-out with
//!   byte-identical output at any `TURQUOIS_THREADS` count.
//! * [`stats`] — Student-t confidence intervals.
//!
//! Binaries (`cargo run --release -p turquois-harness --bin …`):
//! `table1`, `table2`, `table3` regenerate the paper's three tables;
//! `phases`, `sigma_sweep`, `loss_sweep`, `msgcount` run the ablation
//! experiments indexed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod adversary;
pub mod env_guard;
pub mod experiment;
pub mod runner;
pub mod scenario;
pub mod simstress;
pub mod stats;
pub mod verifyq;

pub use scenario::{
    FaultLoad, LossSpec, Protocol, ProposalDistribution, RunOutcome, Scenario, ScenarioError,
};
pub use stats::LatencyStats;
