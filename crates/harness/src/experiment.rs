//! Repetition driving and table generation — the paper's methodology
//! (§7.2): 50 repetitions per cell, average latency over all processes,
//! 95 % confidence interval; safety (agreement + validity) asserted on
//! every single run.

use crate::scenario::{FaultLoad, Protocol, ProposalDistribution, Scenario};
use crate::stats::LatencyStats;

/// Group sizes used throughout the paper's evaluation.
pub const PAPER_SIZES: [usize; 5] = [4, 7, 10, 13, 16];

/// Default repetition count (§7.2).
pub const PAPER_REPS: usize = 50;

/// Result of measuring one experiment cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Latency statistics over the repetitions.
    pub latency: LatencyStats,
    /// Runs where fewer than `k` correct processes decided in time.
    pub incomplete_runs: usize,
    /// Mean data frames transmitted per run (message-complexity view).
    pub mean_frames: f64,
    /// Mean collisions per run.
    pub mean_collisions: f64,
}

/// Errors from measurement.
#[derive(Debug)]
pub enum MeasureError {
    /// The scenario was invalid.
    Scenario(crate::scenario::ScenarioError),
    /// A run violated agreement or validity — a protocol bug; never
    /// acceptable.
    SafetyViolation {
        /// Repetition index.
        rep: usize,
    },
    /// No run produced any decision.
    NoData,
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Scenario(e) => write!(f, "{e}"),
            MeasureError::SafetyViolation { rep } => {
                write!(f, "agreement/validity violated in repetition {rep}")
            }
            MeasureError::NoData => write!(f, "no repetition produced a decision"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Runs `reps` repetitions of `scenario` (varying the seed per
/// repetition, like the paper's 50 signaled executions) and aggregates
/// latency.
///
/// # Errors
///
/// Safety violations and configuration errors; see [`MeasureError`].
pub fn measure(scenario: &Scenario, reps: usize) -> Result<CellResult, MeasureError> {
    let mut rep_means = Vec::with_capacity(reps);
    let mut incomplete = 0usize;
    let mut frames = 0u64;
    let mut collisions = 0u64;
    for rep in 0..reps {
        let outcome = scenario
            .clone()
            .seed(scenario_rep_seed(scenario, rep))
            .run_once()
            .map_err(MeasureError::Scenario)?;
        if !outcome.agreement_holds() || !outcome.validity_holds() {
            return Err(MeasureError::SafetyViolation { rep });
        }
        frames += outcome.stats.frames_sent();
        collisions += outcome.stats.collisions;
        if !outcome.k_reached() {
            incomplete += 1;
            continue;
        }
        if let Some(mean) = outcome.mean_latency_ms() {
            rep_means.push(mean);
        }
    }
    if rep_means.is_empty() {
        return Err(MeasureError::NoData);
    }
    Ok(CellResult {
        latency: LatencyStats::from_samples(&rep_means),
        incomplete_runs: incomplete,
        mean_frames: frames as f64 / reps as f64,
        mean_collisions: collisions as f64 / reps as f64,
    })
}

fn scenario_rep_seed(scenario: &Scenario, rep: usize) -> u64 {
    // Spread repetitions across the seed space deterministically.
    0x9e37_79b9_7f4a_7c15u64
        .wrapping_mul(rep as u64 + 1)
        .wrapping_add(scenario.n() as u64)
}

/// One row of a paper-style table: a group size with per-protocol,
/// per-distribution cells.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Group size `n`.
    pub n: usize,
    /// Cells in `(protocol, distribution)` order: Turquois
    /// unanimous/divergent, ABBA u/d, Bracha u/d.
    pub cells: Vec<Result<CellResult, String>>,
}

/// Generates a full paper-style table for one fault load.
///
/// Cells that fail to measure carry their error text instead of
/// aborting the table.
pub fn paper_table(fault_load: FaultLoad, sizes: &[usize], reps: usize) -> Vec<TableRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut cells = Vec::new();
        for protocol in Protocol::ALL {
            for dist in [
                ProposalDistribution::Unanimous,
                ProposalDistribution::Divergent,
            ] {
                let scenario = Scenario::new(protocol, n)
                    .proposals(dist)
                    .fault_load(fault_load);
                cells.push(measure(&scenario, reps).map_err(|e| e.to_string()));
            }
        }
        rows.push(TableRow { n, cells });
    }
    rows
}

/// Renders rows in the paper's layout.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>6} | {:>19} {:>19} | {:>19} {:>19} | {:>19} {:>19}\n",
        "n",
        "Turquois unan.",
        "Turquois div.",
        "ABBA unan.",
        "ABBA div.",
        "Bracha unan.",
        "Bracha div."
    ));
    out.push_str(&"-".repeat(132));
    out.push('\n');
    for row in rows {
        let mut line = format!("{:>6}", row.n);
        for (i, cell) in row.cells.iter().enumerate() {
            let text = match cell {
                Ok(c) => c.latency.display(),
                Err(e) => format!("error: {}", truncate(e, 12)),
            };
            if i % 2 == 0 {
                line.push_str(" | ");
            } else {
                line.push(' ');
            }
            line.push_str(&format!("{text:>19}"));
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max])
    }
}

/// Reads the repetition count from `TURQUOIS_REPS` (or the first CLI
/// argument), defaulting to `default`. Lets the full paper grid
/// (50 reps) coexist with quick smoke runs.
pub fn reps_from_env(default: usize) -> usize {
    if let Some(arg) = std::env::args().nth(1) {
        if let Ok(v) = arg.parse() {
            return v;
        }
    }
    std::env::var("TURQUOIS_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads the group sizes from `TURQUOIS_SIZES` (comma-separated),
/// defaulting to the paper's grid.
pub fn sizes_from_env() -> Vec<usize> {
    std::env::var("TURQUOIS_SIZES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| PAPER_SIZES.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_turquois_small() {
        let scenario = Scenario::new(Protocol::Turquois, 4);
        let cell = measure(&scenario, 3).expect("measurement succeeds");
        assert_eq!(cell.latency.samples, 3);
        assert!(cell.latency.mean_ms > 0.0);
        assert_eq!(cell.incomplete_runs, 0);
        assert!(cell.mean_frames > 0.0);
    }

    #[test]
    fn rep_seeds_differ() {
        let s = Scenario::new(Protocol::Turquois, 4);
        assert_ne!(scenario_rep_seed(&s, 0), scenario_rep_seed(&s, 1));
    }

    #[test]
    fn render_table_contains_rows() {
        let rows = vec![TableRow {
            n: 4,
            cells: vec![
                Ok(CellResult {
                    latency: LatencyStats {
                        mean_ms: 14.9,
                        ci_ms: 4.7,
                        samples: 50,
                    },
                    incomplete_runs: 0,
                    mean_frames: 100.0,
                    mean_collisions: 2.0,
                }),
                Err("boom".into()),
                Ok(CellResult {
                    latency: LatencyStats {
                        mean_ms: 74.7,
                        ci_ms: 7.9,
                        samples: 50,
                    },
                    incomplete_runs: 1,
                    mean_frames: 500.0,
                    mean_collisions: 5.0,
                }),
                Err("x".into()),
                Err("y".into()),
                Err("z".into()),
            ],
        }];
        let rendered = render_table("Table 1", &rows);
        assert!(rendered.contains("Table 1"));
        assert!(rendered.contains("14.90 ± 4.70"));
        assert!(rendered.contains("error: boom"));
    }

    #[test]
    fn truncate_behaviour() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("a very long message", 6), "a very…");
    }
}
