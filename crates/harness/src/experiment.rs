//! Repetition driving and table generation — the paper's methodology
//! (§7.2): 50 repetitions per cell, average latency over all processes,
//! 95 % confidence interval; safety (agreement + validity) asserted on
//! every single run.
//!
//! Measurement fans `(cell, rep)` jobs across the [`crate::runner`]
//! worker pool. Each job owns its simulator for the duration of one
//! run; aggregation consumes the results in job order, so every number,
//! table byte, and error message is identical to the serial path
//! regardless of `TURQUOIS_THREADS`.

use crate::runner::{self, Attempt, JobOutcome, RunnerReport};
use crate::scenario::{FaultLoad, Protocol, ProposalDistribution, Scenario};
use crate::stats::LatencyStats;
use std::time::Duration;
use turquois_crypto::telemetry::HotpathSnapshot;
use wireless_net::supervise::StallReport;

/// Group sizes used throughout the paper's evaluation.
pub const PAPER_SIZES: [usize; 5] = [4, 7, 10, 13, 16];

/// Default repetition count (§7.2).
pub const PAPER_REPS: usize = 50;

/// Host-side (wall-clock) hot-path work observed while running a cell:
/// real SHA-256 compression blocks, memoized verification lookups with
/// their hit/miss split, and payload bytes physically copied by the
/// `bytes` stub. Purely observational — none of it feeds back into
/// simulated time, latency cells, or any checked-in table byte.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct HotpathTotals {
    /// Real SHA-256 compression-function invocations.
    pub sha_blocks: u64,
    /// Logical verification lookups (cache hits + misses).
    pub verify_calls: u64,
    /// Lookups answered from a memo cache.
    pub cache_hits: u64,
    /// Lookups that ran the underlying verification.
    pub cache_misses: u64,
    /// Payload bytes physically copied constructing `Bytes` buffers.
    pub bytes_copied: u64,
    /// Payload bytes the zero-copy receive path handed on by reference
    /// instead of copying (each count is a copy the legacy path made).
    pub bytes_saved: u64,
    /// Real compression blocks that went through the multi-lane kernel
    /// (a subset of `sha_blocks`; dummy lanes are never counted).
    pub lane_blocks: u64,
    /// Lane slots those multi-lane calls provided (`width × rounds`);
    /// `lane_blocks / lane_slots` is the kernel's occupancy.
    pub lane_slots: u64,
    /// Heap allocations the flat-arena codec elided versus the legacy
    /// per-message builder path (DESIGN.md §13): arena seals, shared
    /// duplicate payloads, and borrowed justification views.
    pub allocs_saved: u64,
    /// Bytes sealed through [`bytes::arena::EncodeArena`] chunks.
    pub arena_bytes: u64,
}

impl HotpathTotals {
    /// Component-wise sum.
    pub fn add(&mut self, other: HotpathTotals) {
        self.sha_blocks += other.sha_blocks;
        self.verify_calls += other.verify_calls;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.bytes_copied += other.bytes_copied;
        self.bytes_saved += other.bytes_saved;
        self.lane_blocks += other.lane_blocks;
        self.lane_slots += other.lane_slots;
        self.allocs_saved += other.allocs_saved;
        self.arena_bytes += other.arena_bytes;
    }

    /// Cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.verify_calls == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.verify_calls as f64
        }
    }

    /// Multi-lane kernel occupancy in `[0, 1]`: real blocks per lane
    /// slot (0 when nothing went through the lanes — e.g. under
    /// `TURQUOIS_SCALAR_SHA=1`).
    pub fn lanes_utilization(&self) -> f64 {
        if self.lane_slots == 0 {
            0.0
        } else {
            self.lane_blocks as f64 / self.lane_slots as f64
        }
    }
}

/// Runs `f`, returning its result plus the hot-path telemetry delta the
/// call produced on this thread. Each `(cell, rep)` job runs start to
/// finish on one worker thread and the counters are thread-local, so
/// the delta is exact and deterministic at any `TURQUOIS_THREADS`.
fn with_hotpath<T>(f: impl FnOnce() -> T) -> (T, HotpathTotals) {
    let crypto_before = HotpathSnapshot::now();
    let copied_before = bytes::telemetry::bytes_copied();
    let saved_before = bytes::telemetry::bytes_saved();
    let allocs_before = bytes::telemetry::allocs_saved();
    let arena_before = bytes::telemetry::arena_bytes();
    let out = f();
    let d = HotpathSnapshot::now().delta_since(&crypto_before);
    let hotpath = HotpathTotals {
        sha_blocks: d.sha_blocks,
        verify_calls: d.verify_calls,
        cache_hits: d.cache_hits,
        cache_misses: d.cache_misses,
        bytes_copied: bytes::telemetry::bytes_copied().saturating_sub(copied_before),
        bytes_saved: bytes::telemetry::bytes_saved().saturating_sub(saved_before),
        lane_blocks: d.lane_blocks,
        lane_slots: d.lane_slots,
        allocs_saved: bytes::telemetry::allocs_saved().saturating_sub(allocs_before),
        arena_bytes: bytes::telemetry::arena_bytes().saturating_sub(arena_before),
    };
    (out, hotpath)
}

/// Result of measuring one experiment cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Latency statistics over the repetitions.
    pub latency: LatencyStats,
    /// Runs where fewer than `k` correct processes decided in time.
    pub incomplete_runs: usize,
    /// Mean data frames transmitted per run (message-complexity view).
    pub mean_frames: f64,
    /// Mean collisions per run.
    pub mean_collisions: f64,
    /// Total transmit-queue tail drops across all repetitions (the
    /// congestion sharp edge, surfaced instead of silently eaten).
    pub total_queue_drops: u64,
    /// Repetitions that only completed on the escalated-budget retry
    /// (supervised tables only; always 0 on the unsupervised path).
    pub retried_runs: usize,
    /// Host-side hot-path telemetry summed over the repetitions.
    pub hotpath: HotpathTotals,
}

/// Errors from measurement.
#[derive(Debug)]
pub enum MeasureError {
    /// The scenario was invalid.
    Scenario(crate::scenario::ScenarioError),
    /// A run violated agreement or validity — a protocol bug; never
    /// acceptable.
    SafetyViolation {
        /// Repetition index.
        rep: usize,
    },
    /// No run produced any decision.
    NoData,
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Scenario(e) => write!(f, "{e}"),
            MeasureError::SafetyViolation { rep } => {
                write!(f, "agreement/validity violated in repetition {rep}")
            }
            MeasureError::NoData => write!(f, "no repetition produced a decision"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// What one repetition contributes to a cell aggregate — plain data,
/// the only thing that crosses a worker-thread boundary.
#[derive(Clone, Debug)]
struct RepSample {
    frames: u64,
    collisions: u64,
    complete: bool,
    mean_ms: Option<f64>,
    queue_drops: u64,
    retried: bool,
    hotpath: HotpathTotals,
}

/// Runs one `(scenario, rep)` job: seed, simulate, check safety.
fn run_rep(scenario: &Scenario, rep: usize) -> Result<RepSample, MeasureError> {
    let (outcome, hotpath) = with_hotpath(|| {
        scenario
            .clone()
            .seed(scenario_rep_seed(scenario, rep))
            .run_once()
    });
    let outcome = outcome.map_err(MeasureError::Scenario)?;
    if !outcome.agreement_holds() || !outcome.validity_holds() {
        return Err(MeasureError::SafetyViolation { rep });
    }
    Ok(RepSample {
        frames: outcome.stats.frames_sent(),
        collisions: outcome.stats.collisions,
        complete: outcome.k_reached(),
        mean_ms: outcome.mean_latency_ms(),
        queue_drops: outcome.stats.queue_drops,
        retried: false,
        hotpath,
    })
}

/// One `(scenario, rep)` job under supervision: the simulated-time
/// budget scales with the attempt, a stall surfaces as the outer `Err`
/// (retryable; boxed — the report dwarfs the happy path), and a safety
/// violation stays in the inner `Err` (completed — **never** retried or
/// downgraded).
fn run_rep_supervised(
    scenario: &Scenario,
    base_limit: Duration,
    rep: usize,
    attempt: Attempt,
) -> Result<Result<RepSample, MeasureError>, Box<StallReport>> {
    let (outcome, hotpath) = with_hotpath(|| {
        scenario
            .clone()
            .seed(scenario_rep_seed(scenario, rep))
            .time_limit(base_limit * attempt.budget_scale)
            .run_once()
    });
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => return Ok(Err(MeasureError::Scenario(e))),
    };
    if !outcome.agreement_holds() || !outcome.validity_holds() {
        return Ok(Err(MeasureError::SafetyViolation { rep }));
    }
    if !outcome.k_reached() {
        if let Some(stall) = outcome.stall {
            return Err(Box::new(stall));
        }
    }
    Ok(Ok(RepSample {
        frames: outcome.stats.frames_sent(),
        collisions: outcome.stats.collisions,
        complete: outcome.k_reached(),
        mean_ms: outcome.mean_latency_ms(),
        queue_drops: outcome.stats.queue_drops,
        retried: attempt.index > 0,
        hotpath,
    }))
}

/// Folds per-rep samples **in repetition order** into a cell result,
/// reproducing the serial loop exactly: the first failing repetition's
/// error wins, incomplete runs contribute no latency sample.
fn aggregate(
    reps: usize,
    samples: impl Iterator<Item = Result<RepSample, MeasureError>>,
) -> Result<CellResult, MeasureError> {
    let mut rep_means = Vec::with_capacity(reps);
    let mut incomplete = 0usize;
    let mut frames = 0u64;
    let mut collisions = 0u64;
    let mut queue_drops = 0u64;
    let mut retried = 0usize;
    let mut hotpath = HotpathTotals::default();
    for sample in samples {
        let sample = sample?;
        frames += sample.frames;
        collisions += sample.collisions;
        queue_drops += sample.queue_drops;
        retried += sample.retried as usize;
        hotpath.add(sample.hotpath);
        if !sample.complete {
            incomplete += 1;
            continue;
        }
        if let Some(mean) = sample.mean_ms {
            rep_means.push(mean);
        }
    }
    if rep_means.is_empty() {
        return Err(MeasureError::NoData);
    }
    Ok(CellResult {
        latency: LatencyStats::from_samples(&rep_means),
        incomplete_runs: incomplete,
        mean_frames: frames as f64 / reps as f64,
        mean_collisions: collisions as f64 / reps as f64,
        total_queue_drops: queue_drops,
        retried_runs: retried,
        hotpath,
    })
}

/// Runs `reps` repetitions of `scenario` (varying the seed per
/// repetition, like the paper's 50 signaled executions) and aggregates
/// latency. Repetitions fan out across `TURQUOIS_THREADS` workers; the
/// result is byte-identical to the serial path.
///
/// # Errors
///
/// Safety violations and configuration errors; see [`MeasureError`].
pub fn measure(scenario: &Scenario, reps: usize) -> Result<CellResult, MeasureError> {
    measure_on(scenario, reps, runner::threads_from_env())
}

/// [`measure`] with an explicit worker-thread count (1 = serial path).
pub fn measure_on(
    scenario: &Scenario,
    reps: usize,
    threads: usize,
) -> Result<CellResult, MeasureError> {
    let jobs: Vec<usize> = (0..reps).collect();
    let samples = runner::run_indexed(threads, &jobs, |_, &rep| run_rep(scenario, rep));
    aggregate(reps, samples.into_iter())
}

fn scenario_rep_seed(scenario: &Scenario, rep: usize) -> u64 {
    // Spread repetitions across the seed space deterministically.
    0x9e37_79b9_7f4a_7c15u64
        .wrapping_mul(rep as u64 + 1)
        .wrapping_add(scenario.n() as u64)
}

/// One row of a paper-style table: a group size with per-protocol,
/// per-distribution cells.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Group size `n`.
    pub n: usize,
    /// Cells in `(protocol, distribution)` order: Turquois
    /// unanimous/divergent, ABBA u/d, Bracha u/d.
    pub cells: Vec<Result<CellResult, String>>,
}

/// Generates a full paper-style table for one fault load, fanning every
/// `(cell, rep)` job of the whole grid across `TURQUOIS_THREADS`
/// workers.
///
/// Cells that fail to measure carry their error text instead of
/// aborting the table.
pub fn paper_table(fault_load: FaultLoad, sizes: &[usize], reps: usize) -> Vec<TableRow> {
    paper_table_on(fault_load, sizes, reps, runner::threads_from_env()).0
}

/// [`paper_table`] with an explicit worker-thread count, returning the
/// wall-clock report of the fan-out alongside the rows.
pub fn paper_table_on(
    fault_load: FaultLoad,
    sizes: &[usize],
    reps: usize,
    threads: usize,
) -> (Vec<TableRow>, RunnerReport) {
    // Enumerate cells in render order, then every (cell, rep) job
    // cell-major, so results come back as contiguous per-cell chunks.
    let mut scenarios = Vec::new();
    for &n in sizes {
        for protocol in Protocol::ALL {
            for dist in [
                ProposalDistribution::Unanimous,
                ProposalDistribution::Divergent,
            ] {
                scenarios.push(
                    Scenario::new(protocol, n)
                        .proposals(dist)
                        .fault_load(fault_load),
                );
            }
        }
    }
    let jobs: Vec<(usize, usize)> = (0..scenarios.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (samples, report) = runner::run_indexed_timed(threads, &jobs, |_, &(cell, rep)| {
        run_rep(&scenarios[cell], rep)
    });

    let cells_per_row = scenarios.len() / sizes.len().max(1);
    let mut samples = samples.into_iter();
    let mut rows = Vec::new();
    for &n in sizes {
        let mut cells = Vec::new();
        for _ in 0..cells_per_row {
            cells.push(aggregate_cell(reps, &mut samples).map_err(|e| e.to_string()));
        }
        rows.push(TableRow { n, cells });
    }
    (rows, report)
}

/// One failed cell of a supervised table, with enough context to
/// diagnose it from stderr.
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// Group size of the failing cell's row.
    pub n: usize,
    /// Cell label, e.g. `"Turquois divergent"`.
    pub label: String,
    /// Short machine-greppable reason: `panic`, `stalled`, `safety`, or
    /// `config`.
    pub reason: &'static str,
    /// Full detail: the panic message, the rendered [`StallReport`], or
    /// the error text.
    pub detail: String,
}

/// Health summary of a supervised table run: which cells failed and
/// why. An experiment binary renders the table first (completed cells
/// stay byte-identical), then logs this to stderr and exits nonzero if
/// anything failed.
#[derive(Clone, Debug, Default)]
pub struct TableHealth {
    /// Failures in render order (row-major, cell order within a row).
    pub failures: Vec<CellFailure>,
}

impl TableHealth {
    /// `true` when every cell completed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Logs every failure to stderr (never stdout — the table bytes on
    /// stdout must stay comparable across runs).
    pub fn log(&self) {
        for f in &self.failures {
            eprintln!("[supervisor] {} n={} FAILED({}):", f.label, f.n, f.reason);
            for line in f.detail.lines() {
                eprintln!("[supervisor]   {line}");
            }
        }
    }
}

/// [`paper_table_on`] with run supervision: each `(cell, rep)` job is
/// panic-isolated, stalls are retried once with a
/// [`runner::RETRY_BUDGET_SCALE`]× simulated-time budget, and failures
/// degrade gracefully — the failing cell renders `FAILED(<reason>)`
/// while every completed cell keeps the exact bytes it would have
/// produced in a fully healthy run.
///
/// `sabotage` deterministically panics the given `(cell, rep)` job —
/// the fault-injection hook the degradation tests and CI smoke use
/// (see [`sabotage_from_env`]). Pass `None` for real runs.
pub fn paper_table_supervised_on(
    fault_load: FaultLoad,
    sizes: &[usize],
    reps: usize,
    threads: usize,
    time_limit: Duration,
    sabotage: Option<(usize, usize)>,
) -> (Vec<TableRow>, TableHealth, RunnerReport) {
    paper_table_supervised_with(fault_load, sizes, reps, threads, time_limit, sabotage, |s| s)
}

/// [`paper_table_supervised_on`] with a per-cell scenario tweak applied
/// after the standard grid construction — the hook the hot-path bench
/// uses to shorten the key horizon (`Scenario::key_phases`) without
/// perturbing the paper tables' scenarios.
pub fn paper_table_supervised_with(
    fault_load: FaultLoad,
    sizes: &[usize],
    reps: usize,
    threads: usize,
    time_limit: Duration,
    sabotage: Option<(usize, usize)>,
    tweak: impl Fn(Scenario) -> Scenario,
) -> (Vec<TableRow>, TableHealth, RunnerReport) {
    let mut scenarios = Vec::new();
    let mut labels = Vec::new();
    for &n in sizes {
        for protocol in Protocol::ALL {
            for dist in [
                ProposalDistribution::Unanimous,
                ProposalDistribution::Divergent,
            ] {
                scenarios.push(tweak(
                    Scenario::new(protocol, n)
                        .proposals(dist)
                        .fault_load(fault_load)
                        .time_limit(time_limit),
                ));
                labels.push((n, format!("{} {}", protocol.name(), dist.name())));
            }
        }
    }
    let jobs: Vec<(usize, usize)> = (0..scenarios.len())
        .flat_map(|cell| (0..reps).map(move |rep| (cell, rep)))
        .collect();
    let (outcomes, report) = runner::run_supervised_timed(threads, &jobs, |_, &(cell, rep), attempt| {
        if sabotage == Some((cell, rep)) {
            panic!("sabotage: injected panic in cell {cell} rep {rep}");
        }
        run_rep_supervised(&scenarios[cell], time_limit, rep, attempt)
    });

    let cells_per_row = scenarios.len() / sizes.len().max(1);
    let mut outcomes = outcomes.into_iter();
    let mut health = TableHealth::default();
    let mut rows = Vec::new();
    for (row_idx, &n) in sizes.iter().enumerate() {
        let mut cells = Vec::new();
        for c in 0..cells_per_row {
            let chunk: Vec<_> = outcomes.by_ref().take(reps).collect();
            let label = &labels[row_idx * cells_per_row + c].1;
            cells.push(aggregate_supervised_cell(reps, chunk, n, label, &mut health));
        }
        rows.push(TableRow { n, cells });
    }
    (rows, health, report)
}

/// Folds one cell's supervised outcomes. The first failing repetition
/// (in repetition order) decides the cell's fate; a fully-completed
/// chunk aggregates exactly like the unsupervised path.
fn aggregate_supervised_cell(
    reps: usize,
    chunk: Vec<JobOutcome<Result<RepSample, MeasureError>>>,
    n: usize,
    label: &str,
    health: &mut TableHealth,
) -> Result<CellResult, String> {
    let mut samples = Vec::with_capacity(reps);
    for outcome in chunk {
        let (reason, detail) = match outcome {
            JobOutcome::Ok(Ok(sample)) => {
                samples.push(Ok(sample));
                continue;
            }
            JobOutcome::Ok(Err(e @ MeasureError::SafetyViolation { .. })) => {
                ("safety", e.to_string())
            }
            JobOutcome::Ok(Err(e)) => ("config", e.to_string()),
            JobOutcome::Stalled(report) => ("stalled", report.to_string()),
            JobOutcome::Panicked(msg) => ("panic", msg),
        };
        health.failures.push(CellFailure {
            n,
            label: label.to_string(),
            reason,
            detail,
        });
        return Err(format!("FAILED({reason})"));
    }
    aggregate(reps, samples.into_iter()).map_err(|e| e.to_string())
}

/// Aggregates the next cell's `reps`-sample chunk from the shared
/// sample stream. The chunk is drained in full *before* aggregation:
/// [`aggregate`] short-circuits on the first error, and handing it a
/// live `take(reps)` adapter would leave the rest of a failed cell's
/// chunk behind, silently feeding every later cell samples from the
/// wrong scenario.
fn aggregate_cell<I>(reps: usize, samples: &mut I) -> Result<CellResult, MeasureError>
where
    I: Iterator<Item = Result<RepSample, MeasureError>>,
{
    let chunk: Vec<_> = samples.by_ref().take(reps).collect();
    aggregate(reps, chunk.into_iter())
}

/// Renders the per-experiment stats line printed under each table:
/// total transmit-queue tail drops (the congestion sharp edge) and how
/// many repetitions only completed on the escalated-budget retry.
///
/// The checked-in `results/*.txt` transcribe this line byte-for-byte,
/// so host-side hot-path telemetry (SHA-256 blocks, memo hits, bytes
/// copied) is appended **only** when [`hotpath_stats_enabled`] — by
/// default the output is identical to what it was before memoization.
pub fn table_stats_line(rows: &[TableRow]) -> String {
    let mut queue_drops = 0u64;
    let mut retried = 0usize;
    let mut hotpath = HotpathTotals::default();
    for row in rows {
        for cell in row.cells.iter().flatten() {
            queue_drops += cell.total_queue_drops;
            retried += cell.retried_runs;
            hotpath.add(cell.hotpath);
        }
    }
    let mut line = format!("stats: tx-queue drops={queue_drops} retried reps={retried}");
    if hotpath_stats_enabled() {
        line.push_str(&format!(
            " | hotpath: sha-blocks={} verifies={} cache-hits={} cache-misses={} \
             hit-rate={:.1}% bytes-copied={} bytes-saved={} lanes-utilization={:.1}% \
             allocs-saved={} arena-bytes={}",
            hotpath.sha_blocks,
            hotpath.verify_calls,
            hotpath.cache_hits,
            hotpath.cache_misses,
            100.0 * hotpath.hit_rate(),
            hotpath.bytes_copied,
            hotpath.bytes_saved,
            100.0 * hotpath.lanes_utilization(),
            hotpath.allocs_saved,
            hotpath.arena_bytes
        ));
    }
    line
}

/// `TURQUOIS_HOTPATH_STATS` opt-in for the extended stats line: set to
/// any non-empty value other than `0` to append host-side hot-path
/// telemetry. Off by default so the checked-in `results/*.txt` stay
/// byte-identical.
pub fn hotpath_stats_enabled() -> bool {
    matches!(std::env::var("TURQUOIS_HOTPATH_STATS"), Ok(v) if !v.is_empty() && v != "0")
}

/// Renders rows in the paper's layout.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>6} | {:>19} {:>19} | {:>19} {:>19} | {:>19} {:>19}\n",
        "n",
        "Turquois unan.",
        "Turquois div.",
        "ABBA unan.",
        "ABBA div.",
        "Bracha unan.",
        "Bracha div."
    ));
    out.push_str(&"-".repeat(132));
    out.push('\n');
    for row in rows {
        let mut line = format!("{:>6}", row.n);
        for (i, cell) in row.cells.iter().enumerate() {
            let text = match cell {
                Ok(c) => c.latency.display(),
                // Supervisor verdicts are already terse and fixed-form;
                // prefixing/truncating them would hide the reason.
                Err(e) if e.starts_with("FAILED") => e.clone(),
                Err(e) => format!("error: {}", truncate(e, 12)),
            };
            if i % 2 == 0 {
                line.push_str(" | ");
            } else {
                line.push(' ');
            }
            line.push_str(&format!("{text:>19}"));
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

/// Truncates to at most `max` characters (not bytes — slicing at a
/// byte offset would panic mid-way through a multi-byte character).
fn truncate(s: &str, max: usize) -> String {
    match s.char_indices().nth(max) {
        None => s.to_string(),
        Some((cut, _)) => format!("{}…", &s[..cut]),
    }
}

/// Default simulated-time budget per run, matching the
/// [`Scenario`] builder's own default.
pub const DEFAULT_TIME_LIMIT: Duration = Duration::from_secs(120);

/// Parses a `TURQUOIS_TIME_LIMIT` value: positive (possibly
/// fractional) simulated seconds.
fn parse_time_limit(raw: &str) -> Option<Duration> {
    let secs: f64 = raw.trim().parse().ok()?;
    if secs.is_finite() && secs > 0.0 {
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    }
}

/// Reads the per-run simulated-time budget from `TURQUOIS_TIME_LIMIT`
/// (seconds, fractions allowed), defaulting to `default`. Malformed
/// values warn on stderr and fall through, matching
/// [`reps_from_env`] / [`sizes_from_env`].
pub fn time_limit_from_env(default: Duration) -> Duration {
    match std::env::var("TURQUOIS_TIME_LIMIT") {
        Ok(raw) => match parse_time_limit(&raw) {
            Some(limit) => limit,
            None => {
                eprintln!(
                    "warning: ignoring malformed TURQUOIS_TIME_LIMIT={raw:?}: \
                     expected a positive number of simulated seconds; using {}s",
                    default.as_secs_f64()
                );
                default
            }
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!(
                "warning: ignoring non-UTF-8 TURQUOIS_TIME_LIMIT; using {}s",
                default.as_secs_f64()
            );
            default
        }
    }
}

/// Parses a `TURQUOIS_SABOTAGE` value: `"cell,rep"` indices.
fn parse_sabotage(raw: &str) -> Option<(usize, usize)> {
    let (cell, rep) = raw.split_once(',')?;
    Some((cell.trim().parse().ok()?, rep.trim().parse().ok()?))
}

/// Reads a deterministic panic-injection target from
/// `TURQUOIS_SABOTAGE` (`"cell,rep"`). Used by CI to prove the
/// supervisor degrades gracefully and exits nonzero; absent or
/// malformed (with a stderr warning) means no sabotage.
pub fn sabotage_from_env() -> Option<(usize, usize)> {
    match std::env::var("TURQUOIS_SABOTAGE") {
        Ok(raw) => {
            let parsed = parse_sabotage(&raw);
            if parsed.is_none() {
                eprintln!(
                    "warning: ignoring malformed TURQUOIS_SABOTAGE={raw:?}: \
                     expected \"cell,rep\""
                );
            }
            parsed
        }
        Err(_) => None,
    }
}

/// Reads the repetition count from `TURQUOIS_REPS` (or the first CLI
/// argument), defaulting to `default`. Lets the full paper grid
/// (50 reps) coexist with quick smoke runs. Malformed values warn on
/// stderr and fall through instead of being silently ignored.
pub fn reps_from_env(default: usize) -> usize {
    if let Some(arg) = std::env::args().nth(1) {
        match arg.parse() {
            Ok(v) => return v,
            Err(_) => eprintln!(
                "warning: ignoring malformed repetition argument {arg:?}: \
                 expected a non-negative integer"
            ),
        }
    }
    match std::env::var("TURQUOIS_REPS") {
        Ok(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!(
                    "warning: ignoring malformed TURQUOIS_REPS={raw:?}: \
                     expected a non-negative integer; using {default}"
                );
                default
            }
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!("warning: ignoring non-UTF-8 TURQUOIS_REPS; using {default}");
            default
        }
    }
}

/// Reads the group sizes from `TURQUOIS_SIZES` (comma-separated),
/// defaulting to the paper's grid. Malformed entries warn on stderr;
/// if nothing valid remains, the paper grid is used.
pub fn sizes_from_env() -> Vec<usize> {
    sizes_from_env_or(&PAPER_SIZES)
}

/// [`sizes_from_env`] with a caller-chosen default grid — the scale
/// experiment (`table_scale`) defaults to n ∈ {16, 64, 256} instead of
/// the paper's n ≤ 16 grid.
pub fn sizes_from_env_or(default: &[usize]) -> Vec<usize> {
    let raw = match std::env::var("TURQUOIS_SIZES") {
        Ok(raw) => raw,
        Err(std::env::VarError::NotPresent) => return default.to_vec(),
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!(
                "warning: ignoring non-UTF-8 TURQUOIS_SIZES; using the default grid {default:?}"
            );
            return default.to_vec();
        }
    };
    let mut sizes = Vec::new();
    for token in raw.split(',') {
        match token.trim().parse() {
            Ok(n) => sizes.push(n),
            Err(_) => eprintln!(
                "warning: ignoring malformed TURQUOIS_SIZES entry {token:?}: \
                 expected a group size"
            ),
        }
    }
    if sizes.is_empty() {
        eprintln!(
            "warning: TURQUOIS_SIZES={raw:?} contains no valid sizes; \
             using the default grid {default:?}"
        );
        return default.to_vec();
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_turquois_small() {
        let scenario = Scenario::new(Protocol::Turquois, 4);
        let cell = measure(&scenario, 3).expect("measurement succeeds");
        assert_eq!(cell.latency.samples, 3);
        assert!(cell.latency.mean_ms > 0.0);
        assert_eq!(cell.incomplete_runs, 0);
        assert!(cell.mean_frames > 0.0);
    }

    #[test]
    fn measure_identical_across_thread_counts() {
        let scenario = Scenario::new(Protocol::Turquois, 4)
            .proposals(ProposalDistribution::Divergent);
        let serial = measure_on(&scenario, 4, 1).expect("serial succeeds");
        for threads in [2, 4] {
            let parallel = measure_on(&scenario, 4, threads).expect("parallel succeeds");
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    fn sample(mean_ms: f64) -> Result<RepSample, MeasureError> {
        Ok(RepSample {
            frames: 10,
            collisions: 1,
            complete: true,
            mean_ms: Some(mean_ms),
            queue_drops: 0,
            retried: false,
            hotpath: HotpathTotals::default(),
        })
    }

    #[test]
    fn failed_cell_does_not_misalign_later_cells() {
        // Cell 0 fails at its second repetition; its third sample must
        // still be drained so cell 1 aggregates its own chunk, not a
        // shifted window of leftovers.
        let reps = 3;
        let expected = aggregate(reps, [sample(5.0), sample(6.0), sample(7.0)].into_iter())
            .expect("clean cell aggregates");
        let stream: Vec<Result<RepSample, MeasureError>> = vec![
            sample(1.0),
            Err(MeasureError::SafetyViolation { rep: 1 }),
            sample(3.0),
            sample(5.0),
            sample(6.0),
            sample(7.0),
        ];
        let mut stream = stream.into_iter();
        let cell0 = aggregate_cell(reps, &mut stream);
        assert!(
            matches!(cell0, Err(MeasureError::SafetyViolation { rep: 1 })),
            "cell 0 reports its own failure"
        );
        let cell1 = aggregate_cell(reps, &mut stream).expect("cell 1 unaffected");
        assert_eq!(cell1, expected, "cell 1 sees exactly its own samples");
        assert!(stream.next().is_none(), "both chunks fully consumed");
    }

    #[test]
    fn rep_seeds_differ() {
        let s = Scenario::new(Protocol::Turquois, 4);
        assert_ne!(scenario_rep_seed(&s, 0), scenario_rep_seed(&s, 1));
    }

    #[test]
    fn render_table_contains_rows() {
        let rows = vec![TableRow {
            n: 4,
            cells: vec![
                Ok(CellResult {
                    latency: LatencyStats {
                        mean_ms: 14.9,
                        ci_ms: 4.7,
                        samples: 50,
                    },
                    incomplete_runs: 0,
                    mean_frames: 100.0,
                    mean_collisions: 2.0,
                    total_queue_drops: 0,
                    retried_runs: 0,
                    hotpath: HotpathTotals::default(),
                }),
                Err("boom".into()),
                Ok(CellResult {
                    latency: LatencyStats {
                        mean_ms: 74.7,
                        ci_ms: 7.9,
                        samples: 50,
                    },
                    incomplete_runs: 1,
                    mean_frames: 500.0,
                    mean_collisions: 5.0,
                    total_queue_drops: 0,
                    retried_runs: 0,
                    hotpath: HotpathTotals::default(),
                }),
                Err("x".into()),
                Err("y".into()),
                Err("z".into()),
            ],
        }];
        let rendered = render_table("Table 1", &rows);
        assert!(rendered.contains("Table 1"));
        assert!(rendered.contains("14.90 ± 4.70"));
        assert!(rendered.contains("error: boom"));
    }

    #[test]
    fn supervised_clean_table_matches_unsupervised() {
        let sizes = [4];
        let reps = 2;
        let (plain, _) = paper_table_on(FaultLoad::FailureFree, &sizes, reps, 2);
        let (sup, health, _) = paper_table_supervised_on(
            FaultLoad::FailureFree,
            &sizes,
            reps,
            2,
            DEFAULT_TIME_LIMIT,
            None,
        );
        assert!(health.ok(), "clean run reports no failures");
        assert_eq!(plain.len(), sup.len());
        for (a, b) in plain.iter().zip(&sup) {
            assert_eq!(a.n, b.n);
            for (i, (ca, cb)) in a.cells.iter().zip(&b.cells).enumerate() {
                assert_eq!(
                    ca.as_ref().ok(),
                    cb.as_ref().ok(),
                    "cell {i} identical under supervision"
                );
            }
        }
    }

    #[test]
    fn sabotaged_cell_fails_without_touching_siblings() {
        let sizes = [4];
        let reps = 2;
        let (clean, _, _) = paper_table_supervised_on(
            FaultLoad::FailureFree,
            &sizes,
            reps,
            1,
            DEFAULT_TIME_LIMIT,
            None,
        );
        for threads in [1, 4] {
            let (rows, health, _) = paper_table_supervised_on(
                FaultLoad::FailureFree,
                &sizes,
                reps,
                threads,
                DEFAULT_TIME_LIMIT,
                Some((1, 0)),
            );
            assert_eq!(health.failures.len(), 1, "threads={threads}");
            let failure = &health.failures[0];
            assert_eq!(failure.reason, "panic");
            assert_eq!(failure.n, 4);
            assert!(failure.detail.contains("sabotage"), "{:?}", failure.detail);
            assert_eq!(rows[0].cells[1], Err("FAILED(panic)".to_string()));
            for (i, cell) in rows[0].cells.iter().enumerate() {
                if i == 1 {
                    continue;
                }
                assert_eq!(cell, &clean[0].cells[i], "threads={threads} cell {i}");
            }
        }
    }

    #[test]
    fn render_failed_cells_pass_through() {
        let rows = vec![TableRow {
            n: 4,
            cells: vec![
                Err("FAILED(stalled)".into()),
                Err("FAILED(panic)".into()),
                Err("plain failure".into()),
                Err("x".into()),
                Err("y".into()),
                Err("z".into()),
            ],
        }];
        let rendered = render_table("T", &rows);
        assert!(rendered.contains("FAILED(stalled)"));
        assert!(rendered.contains("FAILED(panic)"));
        assert!(!rendered.contains("error: FAILED"), "no prefix/truncation");
        assert!(rendered.contains("error: plain failur"));
    }

    #[test]
    fn time_limit_parsing() {
        assert_eq!(parse_time_limit("2.5"), Some(Duration::from_secs_f64(2.5)));
        assert_eq!(parse_time_limit(" 30 "), Some(Duration::from_secs(30)));
        assert_eq!(parse_time_limit("0"), None);
        assert_eq!(parse_time_limit("-1"), None);
        assert_eq!(parse_time_limit("inf"), None);
        assert_eq!(parse_time_limit("abc"), None);
    }

    #[test]
    fn sabotage_parsing() {
        assert_eq!(parse_sabotage("3,1"), Some((3, 1)));
        assert_eq!(parse_sabotage(" 3 , 1 "), Some((3, 1)));
        assert_eq!(parse_sabotage("3"), None);
        assert_eq!(parse_sabotage("3,x"), None);
        assert_eq!(parse_sabotage(""), None);
    }

    #[test]
    fn truncate_behaviour() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("a very long message", 6), "a very…");
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        // The 12-char prefix of this message ends inside the multi-byte
        // "σ" if sliced by bytes — exactly the render_table error path.
        assert_eq!(truncate("latência σσσ excedida", 12), "latência σσσ…");
        assert_eq!(truncate("ééééé", 3), "ééé…");
        assert_eq!(truncate("ééé", 3), "ééé");
        assert_eq!(truncate("", 5), "");
    }
}
