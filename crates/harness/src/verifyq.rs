//! The per-delivery-tick batched verify queue (DESIGN.md §12).
//!
//! Receive adapters verify one frame at a time, but frames arriving in
//! the same simulated tick (and the per-destination tags of one
//! broadcast) are *independent* computations over distinct memo keys.
//! This module collects the computations a tick will actually need —
//! the memo misses — and drains them through one batched call (the
//! multi-lane SHA-256 kernel, via `hmac_many` or `sha256_many`) instead
//! of computing them one at a time.
//!
//! The queue is a pure host-side staging area. It never touches the
//! memo cache itself: callers thread the precomputed values into their
//! ordinary per-item lookups, which still count the miss, insert the
//! entry, and evict FIFO exactly as unbatched operation would. The
//! cache's evolution — and therefore every simulated result — cannot
//! depend on whether a value was computed in a batch or inline.

/// Plans and executes one tick's batch: dedups `requests` by key, drops
/// keys for which `cached` already holds an answer, computes the
/// remaining inputs in one `compute_many` call, and returns the
/// `(key, value)` pairs for the caller to thread into its memo lookups.
///
/// Duplicate keys keep their *first* request's input (the first lookup
/// inserts the value; later duplicates hit the cache). `compute_many`
/// must return exactly one value per input, in order.
pub fn precompute_batch<K: Ord + Clone, R, V>(
    requests: Vec<(K, R)>,
    cached: impl Fn(&K) -> bool,
    compute_many: impl FnOnce(&[R]) -> Vec<V>,
) -> Vec<(K, V)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut misses: Vec<(K, R)> = Vec::new();
    for (key, input) in requests {
        if cached(&key) || !seen.insert(key.clone()) {
            continue;
        }
        misses.push((key, input));
    }
    if misses.is_empty() {
        return Vec::new();
    }
    let (keys, inputs): (Vec<K>, Vec<R>) = misses.into_iter().unzip();
    let values = compute_many(&inputs);
    assert_eq!(
        values.len(),
        keys.len(),
        "compute_many must return one value per input"
    );
    keys.into_iter().zip(values).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn filters_cached_and_duplicate_keys() {
        let requests = vec![(1u32, "a"), (2, "b"), (1, "c"), (3, "d"), (2, "e")];
        let batch = precompute_batch(
            requests,
            |&k| k == 3, // 3 is already cached
            |inputs| inputs.iter().map(|s| s.to_uppercase()).collect(),
        );
        // 1 keeps its first input, 2 likewise, 3 was cached.
        assert_eq!(batch, vec![(1, "A".to_string()), (2, "B".to_string())]);
    }

    #[test]
    fn empty_and_fully_cached_batches_skip_compute() {
        let ran = Cell::new(false);
        let compute = |_: &[&str]| {
            ran.set(true);
            Vec::<u8>::new()
        };
        assert!(precompute_batch::<u32, &str, u8>(vec![], |_| false, compute).is_empty());
        assert!(!ran.get());
        let compute = |_: &[&str]| {
            ran.set(true);
            Vec::<u8>::new()
        };
        let all_cached = vec![(1u32, "x"), (2, "y")];
        assert!(precompute_batch(all_cached, |_| true, compute).is_empty());
        assert!(!ran.get(), "no misses, no batch computation");
    }

    #[test]
    #[should_panic(expected = "one value per input")]
    fn mismatched_compute_length_panics() {
        precompute_batch(vec![(1u32, ())], |_| false, |_| Vec::<u8>::new());
    }
}
