//! Adapters binding the three protocol engines to the `wireless-net`
//! simulator, reproducing the paper's deployment choices (§7.1):
//!
//! * **Turquois** runs over UDP broadcast. A local clock tick fires when
//!   10 ms passed since the last broadcast **or** the phase value
//!   changed.
//! * **Bracha** runs over TCP (the reliable transport) with per-link
//!   IPSec-AH-style authentication — HMAC-SHA256 with pairwise keys
//!   here.
//! * **ABBA** runs over TCP with its own threshold-signature
//!   authentication; messages are padded to the size they would have
//!   with RSA-1024 group elements, and every cryptographic operation is
//!   charged to the node's virtual CPU through the
//!   [`CostModel`].

use bytes::arena::EncodeArena;
use bytes::{BufMut, Bytes, BytesMut};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;
use turquois_baselines::abba::{Abba, AbbaOutput};
use turquois_baselines::bracha::{Bracha, BrachaOutput};
use turquois_baselines::gate::legacy_codec_enabled;
use turquois_core::instance::Turquois;
use turquois_crypto::cost::CostModel;
use turquois_crypto::hmac::HmacKey;
use turquois_crypto::memo::MemoCache;
use turquois_crypto::sha256::{Digest, DIGEST_LEN};
use wireless_net::config::overhead;
use wireless_net::frame::ReceivedFrame;
use wireless_net::reliable::ReliableEndpoint;
use wireless_net::sim::{Application, NodeCtx};
use wireless_net::supervise::AppProgress;

/// Observations shared between adapters and the experiment driver
/// (single-threaded simulator ⇒ `Rc<RefCell>`).
#[derive(Clone, Debug, Default)]
pub struct RunProbe {
    /// Protocol phase (Turquois) or round (baselines) at decision time.
    pub phase_at_decision: Vec<Option<u32>>,
    /// Messages accepted per node.
    pub accepted: Vec<u64>,
    /// Messages rejected (authenticity or semantic validation) per node.
    pub rejected: Vec<u64>,
    /// Nodes whose one-time keys ran out (Turquois re-key boundary).
    pub keys_exhausted: Vec<bool>,
    /// Last observed protocol phase/round per node (updated continuously).
    pub final_phase: Vec<u32>,
}

impl RunProbe {
    /// Creates a probe for `n` nodes.
    pub fn new(n: usize) -> SharedProbe {
        Rc::new(RefCell::new(RunProbe {
            phase_at_decision: vec![None; n],
            accepted: vec![0; n],
            rejected: vec![0; n],
            keys_exhausted: vec![false; n],
            final_phase: vec![0; n],
        }))
    }
}

/// Shared handle to a [`RunProbe`].
pub type SharedProbe = Rc<RefCell<RunProbe>>;

/// An outgoing-frame mutator installed on Byzantine protocol wrappers
/// (the §7.2 value-flipping strategies).
pub type FrameMutation = Box<dyn FnMut(&[u8]) -> Bytes>;

/// The paper's clock-tick interval (§7.1).
pub const TICK_INTERVAL: Duration = Duration::from_millis(10);

// ---------------------------------------------------------------- turquois

/// Construction parameters of a [`Turquois`] instance, retained so a
/// crash/rejoin can rebuild the engine from scratch (the engines are
/// deliberately not `Clone`).
type TurquoisRebuild = (turquois_core::config::Config, bool, turquois_core::KeyRing, u64);

/// Turquois over UDP broadcast.
pub struct TurquoisApp {
    instance: Turquois,
    cost: CostModel,
    tick: Duration,
    generation: u64,
    exhausted: bool,
    probe: SharedProbe,
    rebuild: Option<TurquoisRebuild>,
}

impl TurquoisApp {
    /// Wraps a protocol instance.
    pub fn new(instance: Turquois, cost: CostModel, probe: SharedProbe) -> Self {
        TurquoisApp {
            instance,
            cost,
            tick: TICK_INTERVAL,
            generation: 0,
            exhausted: false,
            probe,
            rebuild: None,
        }
    }

    /// Retains the engine's construction parameters so
    /// [`Application::reset`] can model a process restart (crash/rejoin
    /// scenarios). `proposal`, `ring`, and `seed` must match the ones
    /// the wrapped instance was built with. A restarted node re-signs
    /// early phases with the same one-time keys — safe, because the
    /// protocol counts per distinct sender and tolerates equivocation.
    pub fn resettable(
        mut self,
        cfg: turquois_core::config::Config,
        proposal: bool,
        ring: turquois_core::KeyRing,
        seed: u64,
    ) -> Self {
        self.rebuild = Some((cfg, proposal, ring, seed));
        self
    }

    /// Read access for post-run inspection.
    pub fn instance(&self) -> &Turquois {
        &self.instance
    }

    /// Overrides the clock-tick interval (paper default: 10 ms). Used by
    /// the tick-interval ablation.
    pub fn tick_interval(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    fn broadcast_now(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.exhausted {
            return;
        }
        match self.instance.on_tick() {
            Ok(out) => {
                ctx.charge_cpu(self.cost.otss_sign() + self.cost.hash(out.bytes.len()));
                ctx.broadcast(out.bytes, overhead::UDP);
            }
            Err(_) => {
                self.exhausted = true;
                self.probe.borrow_mut().keys_exhausted[self.instance.id()] = true;
                return;
            }
        }
        // Re-arm: only the newest generation's timer broadcasts, so a
        // phase-change broadcast implicitly resets the 10 ms clock.
        self.generation += 1;
        ctx.set_timer(self.tick, self.generation);
    }
}

impl Application for TurquoisApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.broadcast_now(ctx);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
        if timer == self.generation {
            self.broadcast_now(ctx);
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
        let receipt = self.instance.on_message(&frame.payload);
        ctx.charge_cpu(
            self.cost.hash(frame.payload.len())
                + self.cost.otss_verify(DIGEST_LEN) * receipt.sig_verifications as u32,
        );
        {
            let mut probe = self.probe.borrow_mut();
            let id = self.instance.id();
            match receipt.outcome {
                turquois_core::MessageOutcome::Accepted
                | turquois_core::MessageOutcome::Duplicate => probe.accepted[id] += 1,
                _ => probe.rejected[id] += 1,
            }
        }
        self.probe.borrow_mut().final_phase[self.instance.id()] = self.instance.phase();
        if let Some(v) = receipt.newly_decided {
            self.probe.borrow_mut().phase_at_decision[self.instance.id()] =
                Some(self.instance.phase());
            ctx.decide(v);
        }
        if receipt.phase_advanced {
            // Clock-tick condition (2): the phase value changed.
            self.broadcast_now(ctx);
        }
    }

    fn progress(&self) -> Option<AppProgress> {
        Some(AppProgress {
            phase: self.instance.phase(),
            decided: self.instance.decision().is_some(),
            store_bytes: self.instance.store_bytes(),
        })
    }

    fn reset(&mut self) {
        let Some((cfg, proposal, ring, seed)) = self.rebuild.clone() else {
            return; // no rebuild parameters: rejoin behaves like a partition
        };
        let id = self.instance.id();
        self.instance = Turquois::new(cfg, id, proposal, ring, seed);
        self.exhausted = false;
        self.probe.borrow_mut().keys_exhausted[id] = false;
        // `generation` is deliberately NOT reset: it must stay monotonic
        // so any pre-crash timer id can never match a post-rejoin one.
    }
}

// ------------------------------------------------------------------ bracha

/// IPSec AH truncates its HMAC ICV to 96 bits; the per-link framing is
/// `icv(12) ‖ inner`.
const ICV_LEN: usize = 12;

/// Per-link HMAC framing (IPSec AH stand-in) from a precomputed tag.
fn mac_wrap(tag: &Digest, inner: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(ICV_LEN + inner.len());
    buf.put_slice(&tag.as_bytes()[..ICV_LEN]);
    buf.put_slice(inner);
    buf.freeze()
}

/// Reference unwrap used by tests: recomputes the HMAC from the key.
#[cfg(test)]
fn mac_unwrap<'a>(key: &HmacKey, wrapped: &'a [u8]) -> Option<&'a [u8]> {
    if wrapped.len() < ICV_LEN {
        return None;
    }
    let (tag, inner) = wrapped.split_at(ICV_LEN);
    if key.verify_truncated(inner, tag) {
        Some(inner)
    } else {
        None
    }
}

/// Constant-time comparison of a full tag's 96-bit truncation against a
/// received ICV.
fn icv_matches(tag: &Digest, icv: &[u8]) -> bool {
    if icv.len() != ICV_LEN {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in tag.as_bytes()[..ICV_LEN].iter().zip(icv) {
        diff |= a ^ b;
    }
    diff == 0
}

/// Memo key for one link HMAC: the unordered node pair — which, under
/// the run's pre-distribution seed, fully determines the pairwise key —
/// plus the inner message bytes. Together these are every input the
/// HMAC reads, so a cached tag is always *the* correct tag for that
/// frame: comparing a received ICV against it is exactly as sound as
/// recomputing (a forged ICV mismatches the true tag either way).
/// The message bytes are held as a zero-copy [`Bytes`] handle: keying
/// the pool used to copy every frame body (`inner.to_vec()`) on every
/// wrap *and* every check; an `Arc`-backed slice keys the same content
/// (same `Ord` as `Vec<u8>`) without the copy.
type LinkTagKey = (u16, u16, Bytes);

/// One simulation's pool of link HMAC tags, shared by every node the
/// simulator hosts: the sender's wrap and each receiver's check of the
/// same frame are the same computation under the same pairwise key, so
/// within the single-threaded simulation the receive side is a cache
/// hit on the tag the sender already computed. Simulated CPU is still
/// charged per logical HMAC on both sides; only host hashing is shared.
pub type SharedLinkTags = Rc<RefCell<MemoCache<LinkTagKey, Digest>>>;

/// Bound on pooled link tags per simulation; eviction only recomputes.
const LINK_TAG_CAP: usize = 8192;

/// Creates a fresh per-simulation link-tag pool (see [`SharedLinkTags`]).
pub fn new_link_tags() -> SharedLinkTags {
    Rc::new(RefCell::new(MemoCache::new(LINK_TAG_CAP)))
}

/// Environment variable forcing eager pairwise-key derivation.
///
/// Set to any non-empty value to derive all `n` keys per node at setup,
/// as the original adapter did — O(n²) HMAC keys per run. Tags, verify
/// counts, and simulated times must be identical either way (key
/// derivation is pure host work, never charged to simulated CPU); the
/// variable exists as the differential oracle for the lazy default.
pub const EAGER_KEYS_ENV: &str = "TURQUOIS_EAGER_KEYS";

static EAGER_KEYS: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static EAGER_KEYS_INIT: std::sync::Once = std::sync::Once::new();

/// Returns whether new [`PairwiseKeys`] tables derive eagerly.
///
/// The first call reads [`EAGER_KEYS_ENV`]; later calls reuse the
/// cached value unless [`set_eager_keys`] overrides it.
pub fn eager_keys_enabled() -> bool {
    EAGER_KEYS_INIT.call_once(|| {
        if std::env::var_os(EAGER_KEYS_ENV).is_some_and(|v| !v.is_empty()) {
            EAGER_KEYS.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    });
    EAGER_KEYS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Programmatically selects the derivation mode for tables built
/// afterwards, overriding the environment (used by the lazy-vs-eager
/// differential test to run both modes in one process).
pub fn set_eager_keys(enabled: bool) {
    // Make sure the env lookup never races in after us and clobbers
    // the explicit choice.
    EAGER_KEYS_INIT.call_once(|| {});
    EAGER_KEYS.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// Derives the pairwise HMAC keys for `me` in a group of `n` from the
/// pre-distribution seed (the paper establishes IPSec security
/// associations between every pair before the run). The eager helper —
/// [`PairwiseKeys`] is the lazy per-link table the adapter uses.
pub fn pairwise_keys(me: usize, n: usize, seed: u64) -> Vec<HmacKey> {
    (0..n)
        .map(|peer| turquois_crypto::hmac::pairwise_key(seed, me, peer))
        .collect()
}

/// One node's pairwise-key table, derived lazily by default: a key is
/// materialised the first time its link is used (first HMAC wrap or
/// check against that peer), so a node only ever pays for the links it
/// actually touches instead of the full O(n²) mesh at setup. Derivation
/// is a pure function of `(seed, pair)` (see
/// [`turquois_crypto::hmac::pairwise_key`]), so lazy and eager modes
/// produce bit-identical keys and tags; it is host work outside the
/// simulated cost model, so it cannot move simulated time.
pub struct PairwiseKeys {
    me: usize,
    seed: u64,
    keys: RefCell<Vec<Option<HmacKey>>>,
}

impl std::fmt::Debug for PairwiseKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairwiseKeys")
            .field("me", &self.me)
            .field("derived", &self.derived_count())
            .finish_non_exhaustive()
    }
}

impl PairwiseKeys {
    /// Creates the table for `me` in a group of `n`, deriving eagerly
    /// or lazily per [`eager_keys_enabled`].
    pub fn new(me: usize, n: usize, seed: u64) -> Self {
        PairwiseKeys::with_eager(me, n, seed, eager_keys_enabled())
    }

    /// Creates the table with an explicit derivation mode (used by the
    /// lazy-vs-eager differential test).
    pub fn with_eager(me: usize, n: usize, seed: u64, eager: bool) -> Self {
        let keys = if eager {
            (0..n)
                .map(|peer| Some(turquois_crypto::hmac::pairwise_key(seed, me, peer)))
                .collect()
        } else {
            vec![None; n]
        };
        PairwiseKeys {
            me,
            seed,
            keys: RefCell::new(keys),
        }
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.keys.borrow().len()
    }

    /// Keys materialised so far (n when eager; the links actually used
    /// when lazy — the differential test's observable).
    pub fn derived_count(&self) -> usize {
        self.keys.borrow().iter().flatten().count()
    }

    /// Runs `f` with the key for the link to `peer`, deriving it first
    /// if this is the link's first use.
    pub fn with_key<R>(&self, peer: usize, f: impl FnOnce(&HmacKey) -> R) -> R {
        let mut keys = self.keys.borrow_mut();
        let slot = &mut keys[peer];
        if slot.is_none() {
            *slot = Some(turquois_crypto::hmac::pairwise_key(self.seed, self.me, peer));
        }
        f(slot.as_ref().expect("slot just filled"))
    }

    /// The HMAC tag for `message` on the link to `peer`.
    pub fn mac(&self, peer: usize, message: &[u8]) -> Digest {
        self.with_key(peer, |k| k.mac(message))
    }

    /// The HMAC tags for a batch of `(peer, message)` link
    /// computations: derives any keys the batch touches for the first
    /// time, then finishes every tag through one
    /// [`turquois_crypto::hmac::hmac_many`] lane batch. Tag-for-tag
    /// identical to calling [`PairwiseKeys::mac`] per item.
    pub fn mac_many(&self, items: &[(usize, &[u8])]) -> Vec<Digest> {
        let mut keys = self.keys.borrow_mut();
        for &(peer, _) in items {
            let slot = &mut keys[peer];
            if slot.is_none() {
                *slot = Some(turquois_crypto::hmac::pairwise_key(self.seed, self.me, peer));
            }
        }
        let pairs: Vec<(&HmacKey, &[u8])> = items
            .iter()
            .map(|&(peer, msg)| (keys[peer].as_ref().expect("derived above"), msg))
            .collect();
        turquois_crypto::hmac::hmac_many(&pairs)
    }
}

/// Bracha's protocol over the reliable (TCP-like) transport with
/// per-link HMAC authentication.
pub struct BrachaApp {
    engine: Bracha,
    transport: ReliableEndpoint,
    macs: PairwiseKeys,
    cost: CostModel,
    probe: SharedProbe,
    /// Optional mutation of outgoing messages (Byzantine strategies).
    mutate: Option<FrameMutation>,
    /// Byzantine wrappers suppress decisions (only correct processes
    /// count toward k).
    decide_enabled: bool,
    /// The simulation-wide link-tag pool; simulated cost is still
    /// charged per logical HMAC, only host hashing is shared.
    link_tags: SharedLinkTags,
    /// Encode scratch for the per-destination HMAC wraps: the n wrapped
    /// frames of one broadcast share a single arena chunk (DESIGN.md
    /// §13) instead of n `BytesMut` builders.
    arena: EncodeArena,
}

impl BrachaApp {
    /// Wraps an engine; `seed` must match across the group (key
    /// pre-distribution) and `link_tags` must be the one pool shared by
    /// every node of the simulation (see [`new_link_tags`]).
    pub fn new(
        engine: Bracha,
        n: usize,
        seed: u64,
        cost: CostModel,
        probe: SharedProbe,
        link_tags: SharedLinkTags,
    ) -> Self {
        let me = engine.id();
        BrachaApp {
            engine,
            transport: ReliableEndpoint::new(me, n),
            macs: PairwiseKeys::new(me, n, seed),
            cost,
            probe,
            mutate: None,
            decide_enabled: true,
            link_tags,
            arena: EncodeArena::new(),
        }
    }

    /// The HMAC tag for `inner` on the link between this node and
    /// `peer`, via the simulation's shared tag pool: whichever endpoint
    /// computes it first pays the hashing, the other side hits. The key
    /// shares `inner`'s allocation — no per-lookup copy. `pre` carries
    /// tags the batched verify queue already computed for this tick
    /// (see [`BrachaApp::batch_link_tags`]); the pool lookup still
    /// counts the miss and inserts the entry, so cache evolution is
    /// identical to the unbatched path.
    fn link_tag_with(&self, peer: usize, inner: &Bytes, pre: &[(LinkTagKey, Digest)]) -> Digest {
        let me = self.engine.id();
        let (lo, hi) = (me.min(peer) as u16, me.max(peer) as u16);
        let macs = &self.macs;
        bytes::telemetry::count_saved(inner.len());
        self.link_tags
            .borrow_mut()
            .lookup((lo, hi, inner.clone()), || {
                pre.iter()
                    .find(|(k, _)| k.0 == lo && k.1 == hi && k.2 == *inner)
                    .map(|(_, tag)| *tag)
                    .unwrap_or_else(|| macs.mac(peer, inner))
            })
    }

    /// The batched verify queue's prescan (DESIGN.md §12): collects the
    /// link-tag keys `pairs` will miss in the shared pool and computes
    /// them through one multi-lane HMAC batch. Returns an empty plan —
    /// falling back to per-item hashing inside the lookups — for
    /// singleton batches or when memoization is disabled, so the
    /// `TURQUOIS_NO_MEMO` baseline does exactly the historical work.
    fn batch_link_tags(&self, pairs: &[(usize, Bytes)]) -> Vec<(LinkTagKey, Digest)> {
        if pairs.len() < 2 || !turquois_crypto::telemetry::memo_enabled() {
            return Vec::new();
        }
        let me = self.engine.id();
        let requests: Vec<(LinkTagKey, (usize, Bytes))> = pairs
            .iter()
            .map(|(peer, inner)| {
                let (lo, hi) = (me.min(*peer) as u16, me.max(*peer) as u16);
                ((lo, hi, inner.clone()), (*peer, inner.clone()))
            })
            .collect();
        let pool = self.link_tags.borrow();
        let macs = &self.macs;
        crate::verifyq::precompute_batch(
            requests,
            |key| pool.contains(key),
            |misses| {
                let items: Vec<(usize, &[u8])> =
                    misses.iter().map(|(peer, inner)| (*peer, &inner[..])).collect();
                macs.mac_many(&items)
            },
        )
    }

    /// Installs an outgoing-message mutator (used by the Byzantine
    /// value-flipping strategy of §7.2) and suppresses decisions — a
    /// Byzantine node never counts toward k.
    pub fn with_mutation(mut self, mutate: FrameMutation) -> Self {
        self.mutate = Some(mutate);
        self.decide_enabled = false;
        self
    }

    /// Read access for post-run inspection.
    pub fn engine(&self) -> &Bracha {
        &self.engine
    }

    /// Read access to the reliable transport (post-run diagnostics:
    /// sent/delivered/retransmit counters).
    pub fn transport(&self) -> &ReliableEndpoint {
        &self.transport
    }

    /// Pairwise keys materialised so far (the lazy-derivation
    /// observable: n when eager, the links actually touched when lazy).
    pub fn derived_keys(&self) -> usize {
        self.macs.derived_count()
    }

    fn dispatch(&mut self, ctx: &mut NodeCtx<'_>, out: BrachaOutput) {
        if let Some(v) = out.newly_decided {
            if self.decide_enabled {
                self.probe.borrow_mut().phase_at_decision[self.engine.id()] =
                    Some(self.engine.round());
                ctx.decide(v);
            }
        }
        for bytes in out.send {
            let bytes = match &mut self.mutate {
                Some(m) => m(&bytes),
                None => bytes,
            };
            let n = self.macs.n();
            // The n per-destination tags of one broadcast are distinct
            // pool keys; on first send they all miss, so drain them
            // through one lane batch before the per-link loop.
            let pairs: Vec<(usize, Bytes)> = (0..n).map(|dst| (dst, bytes.clone())).collect();
            let pre = self.batch_link_tags(&pairs);
            if legacy_codec_enabled() {
                for dst in 0..n {
                    // One HMAC per destination link (as IPSec AH would).
                    ctx.charge_cpu(self.cost.hmac(bytes.len()));
                    let tag = self.link_tag_with(dst, &bytes, &pre);
                    let wrapped = mac_wrap(&tag, &bytes);
                    self.transport.send(ctx, dst, wrapped);
                }
            } else {
                // Stage all n wrapped frames of this broadcast into one
                // arena chunk. Every frame is `ICV_LEN + |bytes|` long,
                // so the per-destination slices need no side table; CPU
                // charges accumulate on the context and take effect
                // after the callback either way, so batching the wraps
                // ahead of the sends cannot move simulated time.
                let base = self.arena.len();
                let w = ICV_LEN + bytes.len();
                for dst in 0..n {
                    ctx.charge_cpu(self.cost.hmac(bytes.len()));
                    let tag = self.link_tag_with(dst, &bytes, &pre);
                    self.arena.mark();
                    let buf = self.arena.buf();
                    buf.put_slice(&tag.as_bytes()[..ICV_LEN]);
                    buf.put_slice(&bytes);
                }
                let chunk = self.arena.seal();
                for dst in 0..n {
                    let start = base + dst * w;
                    self.transport.send(ctx, dst, chunk.slice(start..start + w));
                }
            }
        }
    }
}

impl Application for BrachaApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let out = self.engine.on_start();
        self.dispatch(ctx, out);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
        let delivered = self.transport.on_frame(ctx, &frame);
        // Queue this delivery's ICV checks and drain the pool misses
        // through one lane batch (typically all hits — the sender's
        // wrap already pooled each tag — so the plan is usually empty).
        let pairs: Vec<(usize, Bytes)> = delivered
            .iter()
            .filter(|(_, w)| w.len() >= ICV_LEN)
            .map(|(peer, w)| (*peer, w.slice(ICV_LEN..)))
            .collect();
        let pre = self.batch_link_tags(&pairs);
        for (peer, wrapped) in delivered {
            ctx.charge_cpu(self.cost.hmac(wrapped.len().saturating_sub(ICV_LEN)));
            let ok = wrapped.len() >= ICV_LEN && {
                let expected = self.link_tag_with(peer, &wrapped.slice(ICV_LEN..), &pre);
                icv_matches(&expected, &wrapped[..ICV_LEN])
            };
            if !ok {
                self.probe.borrow_mut().rejected[self.engine.id()] += 1;
                continue;
            }
            self.probe.borrow_mut().accepted[self.engine.id()] += 1;
            let out = self.engine.on_message(peer, &wrapped[ICV_LEN..]);
            self.dispatch(ctx, out);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
        let _ = self.transport.on_timer(ctx, timer);
    }

    fn on_unicast_failed(&mut self, ctx: &mut NodeCtx<'_>, dst: usize, payload: Bytes) {
        self.transport.on_unicast_failed(ctx, dst, payload);
    }

    fn progress(&self) -> Option<AppProgress> {
        Some(AppProgress {
            phase: self.engine.round(),
            decided: self.engine.decision().is_some(),
            store_bytes: self.engine.store_bytes(),
        })
    }
}

// -------------------------------------------------------------------- abba

/// Length-prefixed padding so ABBA payloads occupy their RSA-equivalent
/// size on the air: `len(4) ‖ msg ‖ zeros`.
pub fn pad_to(inner: &[u8], total: usize) -> Bytes {
    let body = total.max(inner.len() + 4);
    let mut buf = BytesMut::with_capacity(body);
    buf.put_u32(inner.len() as u32);
    buf.put_slice(inner);
    buf.resize(body, 0);
    buf.freeze()
}

/// Arena-path twin of [`pad_to`]: writes the same `len(4) ‖ msg ‖
/// zeros` framing into an open arena chunk (which may already hold
/// earlier staged bytes, hence the relative cursor). Byte-for-byte
/// identical output to [`pad_to`].
fn pad_into(buf: &mut Vec<u8>, inner: &[u8], total: usize) {
    let start = buf.len();
    let body = total.max(inner.len() + 4);
    buf.put_u32(inner.len() as u32);
    buf.put_slice(inner);
    buf.resize(start + body, 0);
}

/// Strips [`pad_to`] framing.
pub fn unpad(padded: &[u8]) -> Option<&[u8]> {
    if padded.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(padded[..4].try_into().ok()?) as usize;
    padded.get(4..4 + len)
}

/// ABBA over the reliable transport, with RSA-calibrated CPU charging
/// and RSA-equivalent message sizes.
pub struct AbbaApp {
    engine: Abba,
    transport: ReliableEndpoint,
    n: usize,
    cost: CostModel,
    probe: SharedProbe,
    /// Encode scratch for the RSA-equivalent padding frames
    /// (DESIGN.md §13).
    arena: EncodeArena,
}

impl AbbaApp {
    /// Wraps an engine.
    pub fn new(engine: Abba, n: usize, cost: CostModel, probe: SharedProbe) -> Self {
        let me = engine.id();
        AbbaApp {
            engine,
            transport: ReliableEndpoint::new(me, n),
            n,
            cost,
            probe,
            arena: EncodeArena::new(),
        }
    }

    /// Read access for post-run inspection.
    pub fn engine(&self) -> &Abba {
        &self.engine
    }

    fn charge(&self, ctx: &mut NodeCtx<'_>, ops: turquois_baselines::abba::CryptoOps) {
        ctx.charge_cpu(
            self.cost.threshold_share() * ops.share_signs
                + self.cost.threshold_share_verify() * ops.share_verifies
                + self.cost.rsa_verify() * ops.sig_verifies
                + self.cost.threshold_combine(ops.shares_combined as usize),
        );
    }

    fn dispatch(&mut self, ctx: &mut NodeCtx<'_>, out: AbbaOutput) {
        self.charge(ctx, out.ops);
        if let Some(v) = out.newly_decided {
            self.probe.borrow_mut().phase_at_decision[self.engine.id()] =
                Some(self.engine.round());
            ctx.decide(v);
        }
        for bytes in out.send {
            let rsa_size = turquois_baselines::abba::AbbaMessage::decode(&bytes)
                .map(|m| m.rsa_equivalent_size())
                .unwrap_or(bytes.len());
            let padded = if legacy_codec_enabled() {
                pad_to(&bytes, rsa_size + 4)
            } else {
                self.arena.encode_with(|buf| pad_into(buf, &bytes, rsa_size + 4))
            };
            for dst in 0..self.n {
                self.transport.send(ctx, dst, padded.clone());
            }
        }
    }

}

impl Application for AbbaApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let out = self.engine.on_start();
        self.dispatch(ctx, out);
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
        let delivered = self.transport.on_frame(ctx, &frame);
        for (peer, padded) in delivered {
            let Some(inner) = unpad(&padded) else {
                self.probe.borrow_mut().rejected[self.engine.id()] += 1;
                continue;
            };
            // `inner` borrows straight out of the delivered buffer; the
            // engine parses it without an owned copy.
            bytes::telemetry::count_saved(inner.len());
            self.probe.borrow_mut().accepted[self.engine.id()] += 1;
            let out = self.engine.on_message(peer, inner);
            self.dispatch(ctx, out);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
        let _ = self.transport.on_timer(ctx, timer);
    }

    fn on_unicast_failed(&mut self, ctx: &mut NodeCtx<'_>, dst: usize, payload: Bytes) {
        self.transport.on_unicast_failed(ctx, dst, payload);
    }

    fn progress(&self) -> Option<AppProgress> {
        Some(AppProgress {
            phase: self.engine.round(),
            decided: self.engine.decision().is_some(),
            store_bytes: self.engine.store_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_wrap_round_trip() {
        let key = HmacKey::from_bytes(b"pairwise");
        let wrapped = mac_wrap(&key.mac(b"payload"), b"payload");
        assert_eq!(mac_unwrap(&key, &wrapped), Some(&b"payload"[..]));
        let other = HmacKey::from_bytes(b"other");
        assert_eq!(mac_unwrap(&other, &wrapped), None);
        assert_eq!(mac_unwrap(&key, b"short"), None);
        let mut tampered = wrapped.to_vec();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        assert_eq!(mac_unwrap(&key, &tampered), None);
    }

    /// A received ICV verifies against the pooled tag exactly when the
    /// reference recomputation would accept the frame.
    #[test]
    fn icv_matches_agrees_with_reference_unwrap() {
        let key = HmacKey::from_bytes(b"pairwise");
        let tag = key.mac(b"payload");
        let wrapped = mac_wrap(&tag, b"payload");
        assert!(icv_matches(&tag, &wrapped[..ICV_LEN]));
        assert!(!icv_matches(&tag, &wrapped[1..ICV_LEN + 1]));
        assert!(!icv_matches(&tag, &wrapped[..ICV_LEN - 1]));
        assert!(!icv_matches(&key.mac(b"other"), &wrapped[..ICV_LEN]));
    }

    #[test]
    fn pairwise_keys_symmetric() {
        let a = pairwise_keys(0, 4, 7);
        let b = pairwise_keys(3, 4, 7);
        // Key (0→3) equals key (3→0): same MAC over the same message.
        assert_eq!(a[3].mac(b"m"), b[0].mac(b"m"));
        // Distinct pairs get distinct keys.
        assert_ne!(a[1].mac(b"m"), a[2].mac(b"m"));
    }

    #[test]
    fn lazy_pairwise_keys_match_eager_key_by_key() {
        let lazy = PairwiseKeys::with_eager(2, 5, 7, false);
        let eager = PairwiseKeys::with_eager(2, 5, 7, true);
        assert_eq!(lazy.derived_count(), 0, "lazy starts empty");
        assert_eq!(eager.derived_count(), 5, "eager derives the full row");
        // First use derives; the tag matches the eager key's bit for bit.
        assert_eq!(lazy.mac(4, b"m"), eager.mac(4, b"m"));
        assert_eq!(lazy.derived_count(), 1, "one link touched, one key");
        for peer in 0..5 {
            assert_eq!(lazy.mac(peer, b"payload"), eager.mac(peer, b"payload"));
            // And both agree with the retired eager helper.
            assert_eq!(lazy.mac(peer, b"payload"), pairwise_keys(2, 5, 7)[peer].mac(b"payload"));
        }
        assert_eq!(lazy.derived_count(), 5);
    }

    #[test]
    fn pad_round_trip() {
        let padded = pad_to(b"hello", 64);
        assert_eq!(padded.len(), 64);
        assert_eq!(unpad(&padded), Some(&b"hello"[..]));
        // Minimum size respected even when total is too small.
        let tight = pad_to(b"hello", 3);
        assert_eq!(unpad(&tight), Some(&b"hello"[..]));
        assert_eq!(unpad(b"xy"), None);
        assert_eq!(unpad(&[0, 0, 0, 9, 1]), None, "declared length overruns");
    }

    /// The arena padding twin is byte-identical to [`pad_to`], even
    /// when staged mid-chunk after earlier bytes.
    #[test]
    fn pad_into_matches_pad_to() {
        let mut arena = EncodeArena::new();
        for (inner, total) in [(&b"hello"[..], 64usize), (b"hello", 3), (b"", 10)] {
            let legacy = pad_to(inner, total);
            let staged = arena.encode_with(|buf| pad_into(buf, inner, total));
            assert_eq!(&legacy[..], &staged[..]);
        }
        arena.mark();
        arena.buf().put_slice(b"prefix");
        let start = arena.len();
        arena.mark();
        pad_into(arena.buf(), b"hello", 32);
        let end = arena.len();
        let chunk = arena.seal();
        assert_eq!(&chunk.slice(start..end)[..], &pad_to(b"hello", 32)[..]);
    }

    /// One Bracha broadcast's n HMAC wraps staged into a single arena
    /// chunk produce the same frames as per-destination [`mac_wrap`].
    #[test]
    fn arena_wrap_batch_matches_mac_wrap() {
        let keys = PairwiseKeys::with_eager(0, 4, 9, true);
        let inner = b"broadcast body";
        let mut arena = EncodeArena::new();
        let base = arena.len();
        let w = ICV_LEN + inner.len();
        for dst in 0..4 {
            let tag = keys.mac(dst, inner);
            arena.mark();
            let buf = arena.buf();
            buf.put_slice(&tag.as_bytes()[..ICV_LEN]);
            buf.put_slice(inner);
        }
        let chunk = arena.seal();
        for dst in 0..4 {
            let start = base + dst * w;
            let staged = chunk.slice(start..start + w);
            let legacy = mac_wrap(&keys.mac(dst, inner), inner);
            assert_eq!(&staged[..], &legacy[..]);
            let key = turquois_crypto::hmac::pairwise_key(9, 0, dst);
            assert_eq!(mac_unwrap(&key, &staged), Some(&inner[..]));
        }
    }

    #[test]
    fn probe_new_sizes() {
        let probe = RunProbe::new(5);
        assert_eq!(probe.borrow().phase_at_decision.len(), 5);
        assert_eq!(probe.borrow().accepted.len(), 5);
    }
}
