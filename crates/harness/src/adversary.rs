//! Byzantine attack strategies from the paper's evaluation (§7.2).
//!
//! * **Turquois / Bracha** — the value-flipping strategy: "a Byzantine
//!   process in phase 1 and 2 proposes the opposite value that it would
//!   propose if it were behaving correctly, and in phase 3 it proposes
//!   the default value ⊥. This strategy is followed even if messages are
//!   potentially considered invalid."
//! * **ABBA** — "a Byzantine process … transmits messages with invalid
//!   signatures and justifications in order to force extra computations
//!   at the correct processes."
//!
//! Each adversary tracks the protocol honestly on the inside (so its
//! lies stay phase-fresh) but corrupts what leaves the node. Adversaries
//! never call `decide`, so the simulator's decision count only reflects
//! correct processes.

use crate::adapters::{
    pad_to, BrachaApp, FrameMutation, SharedLinkTags, SharedProbe, TICK_INTERVAL,
};
use bytes::Bytes;
use std::collections::BTreeSet;
use std::time::Duration;
use turquois_baselines::bracha::Bracha;
use turquois_baselines::rbc::RbcMessage;
use turquois_core::instance::Turquois;
use turquois_core::message::{Message, Status};
use turquois_core::state::PhaseKind;
use turquois_core::KeyRing;
use turquois_crypto::cost::CostModel;
use turquois_crypto::otss::Value;
use turquois_crypto::sha256::sha256_concat;
use turquois_crypto::threshold::{CoinShare, SigShare};
use wireless_net::config::overhead;
use wireless_net::frame::ReceivedFrame;
use wireless_net::reliable::ReliableEndpoint;
use wireless_net::sim::{Application, NodeCtx};

/// The Turquois value-flipping adversary.
///
/// Runs a genuine instance internally to follow the protocol's phase
/// structure, but every broadcast carries the lie: flipped value in
/// CONVERGE and LOCK phases, `⊥` in DECIDE phases — signed with its own
/// (legitimate) one-time keys, exactly what a compromised node could do.
pub struct ByzantineTurquoisApp {
    tracker: Turquois,
    keyring: KeyRing,
    generation: u64,
    tick: Duration,
}

impl ByzantineTurquoisApp {
    /// Creates the adversary for the process owning `keyring`.
    pub fn new(tracker: Turquois, keyring: KeyRing) -> Self {
        ByzantineTurquoisApp {
            tracker,
            keyring,
            generation: 0,
            tick: TICK_INTERVAL,
        }
    }

    /// Overrides the clock-tick interval (paper default: 10 ms) — the
    /// adversary must tick at the same rate as the correct processes it
    /// hides among (scale grid, tick ablation).
    pub fn tick_interval(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    fn lie(&self) -> Option<Message> {
        turquois_lie(
            self.tracker.phase(),
            self.tracker.value(),
            self.tracker.id(),
            &self.keyring,
        )
    }

    fn broadcast_lie(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(msg) = self.lie() {
            ctx.broadcast(msg.encode(), overhead::UDP);
        }
        self.generation += 1;
        ctx.set_timer(self.tick, self.generation);
    }
}

impl Application for ByzantineTurquoisApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.broadcast_lie(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
        if timer == self.generation {
            self.broadcast_lie(ctx);
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
        let receipt = self.tracker.on_message(&frame.payload);
        if receipt.phase_advanced {
            self.broadcast_lie(ctx);
        }
        // Never decides.
    }

    fn progress(&self) -> Option<wireless_net::supervise::AppProgress> {
        Some(wireless_net::supervise::AppProgress {
            phase: self.tracker.phase(),
            decided: false, // a Byzantine node never counts as decided
            store_bytes: self.tracker.store_bytes(),
        })
    }
}

/// Builds the paper's §7.2 Turquois lie for a process tracking phase
/// `phase` with honest value `value`: the flipped value in CONVERGE and
/// LOCK phases, `⊥` in DECIDE phases, signed with the liar's legitimate
/// one-time keys. Returns `None` once the keys no longer cover `phase`.
///
/// Exposed as a pure function so both the simulator adversary
/// ([`ByzantineTurquoisApp`]) and the `turquois-check` schedule explorer
/// inject byte-identical lies.
pub fn turquois_lie(
    phase: u32,
    value: Value,
    sender: usize,
    keyring: &KeyRing,
) -> Option<Message> {
    let lie_value = match PhaseKind::of(phase) {
        PhaseKind::Converge | PhaseKind::Lock => match value {
            Value::Bot => Value::One, // an honest tracker holds ⊥ only transiently
            v => v.flipped(),
        },
        PhaseKind::Decide => Value::Bot,
    };
    let signature = keyring.sign(phase, lie_value).ok()?;
    Some(Message::bare(
        turquois_core::Envelope {
            sender,
            phase,
            value: lie_value,
            coin_flip: false,
            status: Status::Undecided,
        },
        signature,
    ))
}

/// Builds the Bracha value-flipping adversary: a [`BrachaApp`] whose
/// own reliable-broadcast *initials* are corrupted (steps 1–2 flipped,
/// step 3 forced to ⊥); echoes and readies for other processes pass
/// through unmodified.
pub fn byzantine_bracha_app(
    engine: Bracha,
    n: usize,
    seed: u64,
    cost: CostModel,
    probe: SharedProbe,
    link_tags: SharedLinkTags,
) -> BrachaApp {
    let me = engine.id();
    BrachaApp::new(engine, n, seed, cost, probe, link_tags)
        .with_mutation(bracha_flip_mutation(me))
}

/// The raw value-flipping mutation applied to a Byzantine Bracha node's
/// outgoing messages (exposed for tests and custom fault loads).
pub fn bracha_flip_mutation(me: usize) -> FrameMutation {
    Box::new(move |bytes| {
        let Some(msg) = RbcMessage::decode(bytes) else {
            return Bytes::copy_from_slice(bytes);
        };
        if let RbcMessage::Initial { tag, payload } = &msg {
            if tag.origin == me && payload.len() == 1 {
                let lie = match (tag.step, payload[0]) {
                    (1 | 2, 0) => 1u8,
                    (1 | 2, 1) => 0u8,
                    (3, _) => 2u8, // ⊥
                    (_, v) => v,
                };
                return RbcMessage::Initial {
                    tag: *tag,
                    payload: Bytes::copy_from_slice(&[lie]),
                }
                .encode();
            }
        }
        Bytes::copy_from_slice(bytes)
    })
}

/// Builds one salvo of the paper's ABBA attack messages for party `me`:
/// a pre-vote and a main-vote for `round` that decode fine but whose
/// shares and justifications are garbage, forcing verification work at
/// every receiver. Returns `(encoded message, RSA-equivalent wire size)`
/// pairs; simulator adversaries pad to the RSA size for airtime realism,
/// while the `turquois-check` explorer (which has no airtime) sends the
/// raw bytes.
pub fn abba_garbage_votes(me: usize, round: u32, salvo: usize) -> Vec<(Bytes, usize)> {
    let junk =
        |label: &str| sha256_concat(&[label.as_bytes(), &round.to_be_bytes(), &[salvo as u8]]);
    let share = SigShare {
        party: me,
        tag: junk("share"),
    };
    let coin_share = CoinShare {
        party: me,
        tag: junk("coin"),
    };
    let prevote = turquois_baselines::abba::AbbaMessage::PreVote {
        round,
        value: salvo.is_multiple_of(2),
        share,
        just: turquois_baselines::abba::PreVoteJust::Hard(
            turquois_crypto::threshold::ThresholdSignature { tag: junk("sig") },
        ),
    };
    let mainvote = turquois_baselines::abba::AbbaMessage::MainVote {
        round,
        value: turquois_baselines::abba::MainVoteValue::One,
        share,
        coin_share,
        just: turquois_baselines::abba::MainVoteJust::ForValue(
            turquois_crypto::threshold::ThresholdSignature { tag: junk("sig2") },
        ),
    };
    vec![
        (prevote.encode(), prevote.rsa_equivalent_size()),
        (mainvote.encode(), mainvote.rsa_equivalent_size()),
    ]
}

/// The ABBA invalid-signature adversary: floods every round it observes
/// with RSA-sized messages whose shares and justifications are garbage,
/// forcing correct processes to burn verification time before
/// discarding.
pub struct ByzantineAbbaApp {
    me: usize,
    n: usize,
    transport: ReliableEndpoint,
    rounds_hit: BTreeSet<u32>,
    salvos_per_round: usize,
}

impl ByzantineAbbaApp {
    /// Creates the adversary.
    pub fn new(me: usize, n: usize) -> Self {
        ByzantineAbbaApp {
            me,
            n,
            transport: ReliableEndpoint::new(me, n),
            rounds_hit: BTreeSet::new(),
            salvos_per_round: 2,
        }
    }

    fn bogus_for_round(&self, round: u32, salvo: usize) -> Vec<Bytes> {
        abba_garbage_votes(self.me, round, salvo)
            .into_iter()
            .map(|(bytes, rsa_size)| pad_to(&bytes, rsa_size + 4))
            .collect()
    }

    fn attack_round(&mut self, ctx: &mut NodeCtx<'_>, round: u32) {
        if !self.rounds_hit.insert(round) {
            return;
        }
        for salvo in 0..self.salvos_per_round {
            for bytes in self.bogus_for_round(round, salvo) {
                for dst in 0..self.n {
                    if dst != self.me {
                        self.transport.send(ctx, dst, bytes.clone());
                    }
                }
            }
        }
    }
}

impl Application for ByzantineAbbaApp {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.attack_round(ctx, 1);
        // Periodic re-scan in case traffic reveals later rounds slowly.
        ctx.set_timer(Duration::from_millis(20), 1);
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
        let delivered = self.transport.on_frame(ctx, &frame);
        let mut rounds = Vec::new();
        for (_peer, padded) in delivered {
            if let Some(inner) = crate::adapters::unpad(&padded) {
                if let Some(msg) = turquois_baselines::abba::AbbaMessage::decode(inner) {
                    let round = match msg {
                        turquois_baselines::abba::AbbaMessage::PreVote { round, .. }
                        | turquois_baselines::abba::AbbaMessage::MainVote { round, .. } => round,
                    };
                    rounds.push(round);
                    rounds.push(round + 1);
                }
            }
        }
        for round in rounds {
            self.attack_round(ctx, round);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
        if timer == 1 {
            ctx.set_timer(Duration::from_millis(20), 1);
            return;
        }
        let _ = self.transport.on_timer(ctx, timer);
    }

    fn on_unicast_failed(&mut self, ctx: &mut NodeCtx<'_>, dst: usize, payload: Bytes) {
        self.transport.on_unicast_failed(ctx, dst, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turquois_core::Config;

    #[test]
    fn turquois_lie_shape() {
        let cfg = Config::evaluation(4).expect("valid");
        let rings = KeyRing::trusted_setup(4, 30, 5);
        let mut rings: Vec<KeyRing> = rings;
        let ring3 = rings.pop().expect("4 rings");
        let tracker = Turquois::new(cfg, 3, true, ring3.clone(), 99);
        let adv = ByzantineTurquoisApp::new(tracker, ring3);
        // Phase 1 (CONVERGE), proposal true → lie is Zero.
        let lie = adv.lie().expect("keys cover phase 1");
        assert_eq!(lie.envelope.value, Value::Zero);
        assert_eq!(lie.envelope.phase, 1);
        assert_eq!(lie.envelope.status, Status::Undecided);
        // The lie is genuinely signed: any peer's keyring accepts it.
        assert!(rings[0].verify(&lie.envelope, &lie.signature));
    }

    #[test]
    fn bracha_mutation_flips_initials_only() {
        use turquois_baselines::rbc::Tag;
        let own_initial = RbcMessage::Initial {
            tag: Tag {
                origin: 3,
                round: 1,
                step: 1,
            },
            payload: Bytes::copy_from_slice(&[1]),
        };
        let echo = RbcMessage::Echo {
            tag: Tag {
                origin: 0,
                round: 1,
                step: 1,
            },
            payload: Bytes::copy_from_slice(&[1]),
        };
        let mut mutate = bracha_flip_mutation(3);
        let mutated = mutate(&own_initial.encode());
        match RbcMessage::decode(&mutated).expect("valid") {
            RbcMessage::Initial { payload, .. } => assert_eq!(&payload[..], &[0]),
            other => panic!("unexpected {other:?}"),
        }
        let untouched = mutate(&echo.encode());
        assert_eq!(&untouched[..], &echo.encode()[..]);
        let step3 = RbcMessage::Initial {
            tag: Tag {
                origin: 3,
                round: 1,
                step: 3,
            },
            payload: Bytes::copy_from_slice(&[1]),
        };
        match RbcMessage::decode(&mutate(&step3.encode())).expect("valid") {
            RbcMessage::Initial { payload, .. } => assert_eq!(&payload[..], &[2], "⊥ at step 3"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn abba_bogus_messages_decode_but_fail_verification() {
        let adv = ByzantineAbbaApp::new(3, 4);
        let msgs = adv.bogus_for_round(1, 0);
        assert_eq!(msgs.len(), 2);
        for padded in msgs {
            let inner = crate::adapters::unpad(&padded).expect("padded frame");
            let msg = turquois_baselines::abba::AbbaMessage::decode(inner)
                .expect("decodes fine — the signatures are the garbage part");
            // RSA-equivalent padding was applied.
            assert!(padded.len() >= msg.rsa_equivalent_size());
        }
    }
}
