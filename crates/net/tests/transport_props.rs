//! Property tests for the wireless substrate: the reliable transport's
//! exactly-once/in-order contract under arbitrary loss, and frame
//! conservation in the medium.

use bytes::Bytes;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use wireless_net::fault::{FaultModel, IidLoss};
use wireless_net::frame::{NodeId, ReceivedFrame};
use wireless_net::reliable::ReliableEndpoint;
use wireless_net::sim::{Application, NodeCtx, SimConfig, Simulator};
use wireless_net::time::SimTime;

type Inbox = Rc<RefCell<Vec<(NodeId, Vec<u8>)>>>;

/// Sends a scripted list of (dst, tag) messages at start; records
/// ordered deliveries.
struct Scripted {
    transport: ReliableEndpoint,
    script: Vec<(usize, u32)>,
    inbox: Inbox,
}

impl Application for Scripted {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let me = ctx.node();
        for (i, &(dst, tag)) in self.script.iter().enumerate() {
            let msg = format!("{me}:{i}:{tag}");
            self.transport.send(ctx, dst, Bytes::from(msg.into_bytes()));
        }
    }
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
        for (peer, msg) in self.transport.on_frame(ctx, &frame) {
            self.inbox.borrow_mut().push((peer, msg.to_vec()));
        }
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
        let _ = self.transport.on_timer(ctx, timer);
    }
    fn on_unicast_failed(&mut self, ctx: &mut NodeCtx<'_>, dst: NodeId, payload: Bytes) {
        self.transport.on_unicast_failed(ctx, dst, payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every sent message is delivered exactly once, in per-sender
    /// order, regardless of loss rate (below the MAC-death threshold)
    /// and scheduling seed.
    #[test]
    fn reliable_transport_exactly_once_in_order(
        seed in 0u64..5000,
        loss_pct in 0u32..35,
        scripts in prop::collection::vec(
            prop::collection::vec((0usize..3, 0u32..100), 0..6),
            3,
        ),
    ) {
        let n = 3;
        let inboxes: Vec<Inbox> = (0..n).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
        let apps: Vec<Box<dyn Application>> = scripts
            .iter()
            .enumerate()
            .map(|(i, script)| {
                Box::new(Scripted {
                    transport: ReliableEndpoint::new(i, n),
                    script: script.clone(),
                    inbox: inboxes[i].clone(),
                }) as Box<dyn Application>
            })
            .collect();
        let fault: Box<dyn FaultModel> = Box::new(IidLoss::new(loss_pct as f64 / 100.0, seed));
        let mut sim = Simulator::new(
            SimConfig { seed, ..SimConfig::default() },
            fault,
            apps,
        );
        sim.run_until(SimTime::from_millis(120_000), |_| false);

        // Expected per (receiver, sender): the sender's script entries
        // addressed to that receiver, in order.
        for rx in 0..n {
            for tx in 0..n {
                let expected: Vec<String> = scripts[tx]
                    .iter()
                    .enumerate()
                    .filter(|(_, &(dst, _))| dst == rx)
                    .map(|(i, &(_, tag))| format!("{tx}:{i}:{tag}"))
                    .collect();
                let got: Vec<String> = inboxes[rx]
                    .borrow()
                    .iter()
                    .filter(|(peer, _)| *peer == tx)
                    .map(|(_, m)| String::from_utf8_lossy(m).into_owned())
                    .collect();
                prop_assert_eq!(
                    got, expected,
                    "rx={} tx={} seed={} loss={}%", rx, tx, seed, loss_pct
                );
            }
        }
    }

    /// Frame accounting is conserved: every application delivery stems
    /// from a transmitted frame, and drops + deliveries never exceed
    /// transmissions × receivers.
    #[test]
    fn frame_accounting_consistent(seed in 0u64..2000, loss_pct in 0u32..50) {
        struct Babbler;
        impl Application for Babbler {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                for _ in 0..5 {
                    ctx.broadcast(Bytes::from_static(b"x"), 36);
                }
            }
            fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _f: ReceivedFrame) {}
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _t: u64) {}
        }
        let n = 4;
        let apps: Vec<Box<dyn Application>> =
            (0..n).map(|_| Box::new(Babbler) as Box<dyn Application>).collect();
        let mut sim = Simulator::new(
            SimConfig { seed, ..SimConfig::default() },
            Box::new(IidLoss::new(loss_pct as f64 / 100.0, seed)),
            apps,
        );
        sim.run_until(SimTime::from_millis(10_000), |_| false);
        let s = sim.stats();
        // Non-loopback deliveries can never exceed successful broadcast
        // transmissions × (n − 1).
        let successful = s.broadcast_frames_sent - s.collisions.min(s.broadcast_frames_sent);
        prop_assert!(s.deliveries - s.loopback_deliveries <= successful * (n as u64 - 1));
        // Fault drops only occur on transmitted frames.
        prop_assert!(s.fault_drops <= s.broadcast_frames_sent * (n as u64 - 1));
        // Everything enqueued either flew or was queue-dropped.
        prop_assert!(s.broadcast_frames_sent + s.queue_drops >= s.broadcast_sends);
    }
}
