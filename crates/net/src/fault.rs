//! Dynamic omission-fault injection (the communication failure model).
//!
//! Turquois adopts the Santoro–Widmayer *communication failure model*:
//! any transmission between two correct processes may be lost, at any
//! time, in any pattern. The simulator realizes that model with pluggable
//! [`FaultModel`]s consulted once per `(frame, receiver)` delivery — on
//! top of the losses the MAC itself produces (collisions).
//!
//! Provided models:
//!
//! * [`NoFaults`] — the failure-free fault load of paper §7.2.
//! * [`IidLoss`] — independent per-delivery loss with probability `p`.
//! * [`GilbertElliott`] — bursty per-directed-link loss (good/bad channel
//!   states), the standard model for 802.11 interference and fading.
//! * [`JammingWindows`] — total loss during configured time windows,
//!   modelling the jamming attack discussed in the paper's introduction.
//! * [`BudgetedOmission`] — an omission *adversary*: kills up to `budget`
//!   deliveries per time window, targeting the protocol's σ bound.
//! * [`TargetedLoss`] — loss restricted to configured sender/receiver
//!   sets.
//! * [`Compose`] — OR-composition of several models.
//! * [`CrashSchedule`] — deterministic crash (and optional rejoin) of
//!   whole nodes. Unlike the delivery-filter models above, a crash
//!   silences the node entirely — it stops transmitting, receiving,
//!   and ticking — so it is installed into the simulator with
//!   [`crate::sim::Simulator::set_crash_schedule`] rather than through
//!   the [`FaultModel`] hook, and composes freely with any of them.

use crate::frame::NodeId;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Duration;

/// Context handed to a fault model for one prospective delivery.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryCtx {
    /// Simulated time of the delivery decision.
    pub now: SimTime,
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node under consideration.
    pub dst: NodeId,
    /// Whether the frame is link-layer broadcast.
    pub broadcast: bool,
}

/// Decides, per `(frame, receiver)`, whether an omission fault occurs.
///
/// Implementations must be deterministic given their seed so experiment
/// runs are reproducible.
pub trait FaultModel: Send {
    /// Returns `true` if this delivery is lost.
    fn drops(&mut self, ctx: &DeliveryCtx) -> bool;

    /// Human-readable description, recorded with experiment results.
    fn describe(&self) -> String;
}

/// No injected faults (collisions may still occur at the MAC).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn drops(&mut self, _ctx: &DeliveryCtx) -> bool {
        false
    }

    fn describe(&self) -> String {
        "no injected faults".into()
    }
}

/// Independent loss: every delivery is dropped with probability `p`.
#[derive(Debug)]
pub struct IidLoss {
    p: f64,
    rng: StdRng,
}

impl IidLoss {
    /// Creates a model dropping each delivery with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability {p} out of range");
        IidLoss {
            p,
            rng: StdRng::seed_from_u64(seed ^ 0x1d1d_1055),
        }
    }
}

impl FaultModel for IidLoss {
    fn drops(&mut self, _ctx: &DeliveryCtx) -> bool {
        self.rng.gen_bool(self.p)
    }

    fn describe(&self) -> String {
        format!("iid loss p={}", self.p)
    }
}

/// Two-state Gilbert–Elliott burst-loss model, independent per directed
/// link.
///
/// In the *good* state deliveries are lost with `loss_good`; in the *bad*
/// state with `loss_bad`. Before each decision the link transitions
/// good→bad with `p_gb` and bad→good with `p_bg`.
#[derive(Debug)]
pub struct GilbertElliott {
    p_gb: f64,
    p_bg: f64,
    loss_good: f64,
    loss_bad: f64,
    states: HashMap<(NodeId, NodeId), bool>, // true = bad
    rng: StdRng,
}

impl GilbertElliott {
    /// Creates the model; see type-level docs for parameter meaning.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64, seed: u64) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name}={p} out of range");
        }
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            states: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x6e11_be47),
        }
    }
}

impl FaultModel for GilbertElliott {
    fn drops(&mut self, ctx: &DeliveryCtx) -> bool {
        let state = self.states.entry((ctx.src, ctx.dst)).or_insert(false);
        let flip = if *state { self.p_bg } else { self.p_gb };
        if self.rng.gen_bool(flip) {
            *state = !*state;
        }
        let loss = if *state { self.loss_bad } else { self.loss_good };
        self.rng.gen_bool(loss)
    }

    fn describe(&self) -> String {
        format!(
            "gilbert-elliott p_gb={} p_bg={} loss_good={} loss_bad={}",
            self.p_gb, self.p_bg, self.loss_good, self.loss_bad
        )
    }
}

/// Total loss inside configured `[start, end)` windows — a jammer.
#[derive(Clone, Debug)]
pub struct JammingWindows {
    windows: Vec<(SimTime, SimTime)>,
}

impl JammingWindows {
    /// Creates a jammer active during each `[start, end)` window.
    pub fn new(windows: Vec<(SimTime, SimTime)>) -> Self {
        JammingWindows { windows }
    }

    /// A single jamming burst starting at `start` lasting `len`.
    pub fn burst(start: SimTime, len: Duration) -> Self {
        Self::new(vec![(start, start + len)])
    }
}

impl FaultModel for JammingWindows {
    fn drops(&mut self, ctx: &DeliveryCtx) -> bool {
        self.windows
            .iter()
            .any(|&(s, e)| ctx.now >= s && ctx.now < e)
    }

    fn describe(&self) -> String {
        format!("jamming x{} windows", self.windows.len())
    }
}

/// An omission adversary with a per-window kill budget.
///
/// Drops the first `budget` eligible deliveries in every `window`-long
/// interval. With `budget` set to the protocol's σ bound this realizes
/// the strongest omission pattern under which Turquois must still make
/// progress; above σ it demonstrates safe stagnation.
#[derive(Debug)]
pub struct BudgetedOmission {
    budget: usize,
    window: Duration,
    window_start: SimTime,
    used: usize,
    broadcast_only: bool,
}

impl BudgetedOmission {
    /// Creates an adversary killing up to `budget` deliveries per
    /// `window`.
    pub fn new(budget: usize, window: Duration) -> Self {
        BudgetedOmission {
            budget,
            window,
            window_start: SimTime::ZERO,
            used: 0,
            broadcast_only: false,
        }
    }

    /// Restricts the adversary to broadcast deliveries (the frames that
    /// carry Turquois protocol messages).
    pub fn broadcast_only(mut self) -> Self {
        self.broadcast_only = true;
        self
    }
}

impl FaultModel for BudgetedOmission {
    fn drops(&mut self, ctx: &DeliveryCtx) -> bool {
        if self.broadcast_only && !ctx.broadcast {
            return false;
        }
        while ctx.now >= self.window_start + self.window {
            self.window_start += self.window;
            self.used = 0;
        }
        if self.used < self.budget {
            self.used += 1;
            true
        } else {
            false
        }
    }

    fn describe(&self) -> String {
        format!(
            "budgeted omission {} per {:?}{}",
            self.budget,
            self.window,
            if self.broadcast_only {
                " (broadcast only)"
            } else {
                ""
            }
        )
    }
}

/// Loss with probability `p` restricted to deliveries whose sender is in
/// `srcs` **and** receiver in `dsts` (empty set = wildcard).
#[derive(Debug)]
pub struct TargetedLoss {
    srcs: Vec<NodeId>,
    dsts: Vec<NodeId>,
    p: f64,
    rng: StdRng,
}

impl TargetedLoss {
    /// Creates a targeted-loss model; an empty `srcs`/`dsts` matches all.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(srcs: Vec<NodeId>, dsts: Vec<NodeId>, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability {p} out of range");
        TargetedLoss {
            srcs,
            dsts,
            p,
            rng: StdRng::seed_from_u64(seed ^ 0x7a26_e7ed),
        }
    }
}

impl FaultModel for TargetedLoss {
    fn drops(&mut self, ctx: &DeliveryCtx) -> bool {
        let src_match = self.srcs.is_empty() || self.srcs.contains(&ctx.src);
        let dst_match = self.dsts.is_empty() || self.dsts.contains(&ctx.dst);
        if src_match && dst_match {
            self.rng.gen_bool(self.p)
        } else {
            false
        }
    }

    fn describe(&self) -> String {
        format!(
            "targeted loss p={} srcs={:?} dsts={:?}",
            self.p, self.srcs, self.dsts
        )
    }
}

/// OR-composition: a delivery is dropped if **any** component drops it.
pub struct Compose {
    parts: Vec<Box<dyn FaultModel>>,
}

impl Compose {
    /// Composes `parts` into one model.
    pub fn new(parts: Vec<Box<dyn FaultModel>>) -> Self {
        Compose { parts }
    }
}

impl std::fmt::Debug for Compose {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Compose({})", self.describe())
    }
}

impl FaultModel for Compose {
    fn drops(&mut self, ctx: &DeliveryCtx) -> bool {
        // Evaluate all parts so stateful models (Gilbert–Elliott) advance
        // uniformly regardless of short-circuiting.
        let mut dropped = false;
        for p in &mut self.parts {
            dropped |= p.drops(ctx);
        }
        dropped
    }

    fn describe(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.describe())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// What makes a [`CrashSpec`] fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Crash at the given simulated time.
    At(SimTime),
    /// Crash as soon as the node's [`crate::sim::Application`] reports
    /// (via [`crate::sim::Application::progress`]) a phase/round `>=`
    /// the given value — "crash mid-protocol", independent of how long
    /// the run takes to get there. Nodes whose application exposes no
    /// progress probe never trigger a phase crash.
    AtPhase(u32),
}

/// One node's deterministic crash (and optional rejoin).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The node to crash.
    pub node: NodeId,
    /// When the crash happens.
    pub trigger: CrashTrigger,
    /// If set, the node rejoins this long after the crash: its
    /// application is reset ([`crate::sim::Application::reset`]) and
    /// restarted via `on_start`, modelling a process restart with fresh
    /// in-memory state. `None` means the node stays down forever.
    pub rejoin_after: Option<Duration>,
}

/// A deterministic crash/recovery fault injector: at most one crash per
/// node, each optionally followed by a rejoin-with-reset.
///
/// While a node is down the simulator suppresses every callback to it,
/// flushes its transmit queue (a dead NIC loses its backlog), aborts
/// any frame it had on the air, and counts suppressed deliveries in
/// [`crate::stats::NetStats::crash_drops`]. Timers armed before the
/// crash never fire after a rejoin (each crash bumps the node's timer
/// epoch).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    specs: Vec<CrashSpec>,
}

impl CrashSchedule {
    /// An empty schedule (no crashes).
    pub fn new() -> Self {
        CrashSchedule::default()
    }

    /// Adds a crash of `node` at simulated time `at`, never rejoining.
    ///
    /// # Panics
    ///
    /// Panics if `node` already has a crash scheduled.
    pub fn crash_at(self, node: NodeId, at: SimTime) -> Self {
        self.push(CrashSpec {
            node,
            trigger: CrashTrigger::At(at),
            rejoin_after: None,
        })
    }

    /// Adds a crash of `node` when it reaches protocol phase `phase`,
    /// never rejoining.
    ///
    /// # Panics
    ///
    /// Panics if `node` already has a crash scheduled.
    pub fn crash_at_phase(self, node: NodeId, phase: u32) -> Self {
        self.push(CrashSpec {
            node,
            trigger: CrashTrigger::AtPhase(phase),
            rejoin_after: None,
        })
    }

    /// Makes the most recently added crash rejoin `delay` after it
    /// fires.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn rejoin_after(mut self, delay: Duration) -> Self {
        self.specs
            .last_mut()
            .expect("rejoin_after needs a preceding crash spec")
            .rejoin_after = Some(delay);
        self
    }

    /// Adds a fully-specified crash.
    ///
    /// # Panics
    ///
    /// Panics if `spec.node` already has a crash scheduled — the
    /// one-crash-per-node rule keeps rejoin/epoch bookkeeping trivially
    /// deterministic.
    pub fn push(mut self, spec: CrashSpec) -> Self {
        assert!(
            self.specs.iter().all(|s| s.node != spec.node),
            "node {} already has a crash scheduled",
            spec.node
        );
        self.specs.push(spec);
        self
    }

    /// The scheduled crashes.
    pub fn specs(&self) -> &[CrashSpec] {
        &self.specs
    }

    /// `true` when no crash is scheduled.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Human-readable description, matching [`FaultModel::describe`]
    /// conventions so experiment results can record the full fault
    /// state.
    pub fn describe(&self) -> String {
        if self.specs.is_empty() {
            return "no crashes".into();
        }
        self.specs
            .iter()
            .map(|s| {
                let trigger = match s.trigger {
                    CrashTrigger::At(t) => format!("crash n{} at {t}", s.node),
                    CrashTrigger::AtPhase(p) => format!("crash n{} at phase {p}", s.node),
                };
                match s.rejoin_after {
                    Some(d) => format!("{trigger} rejoin +{d:?}"),
                    None => trigger,
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_at(now_us: u64) -> DeliveryCtx {
        DeliveryCtx {
            now: SimTime::from_micros(now_us),
            src: 0,
            dst: 1,
            broadcast: true,
        }
    }

    #[test]
    fn no_faults_never_drops() {
        let mut m = NoFaults;
        for t in 0..100 {
            assert!(!m.drops(&ctx_at(t)));
        }
    }

    #[test]
    fn iid_loss_zero_and_one() {
        let mut never = IidLoss::new(0.0, 1);
        let mut always = IidLoss::new(1.0, 1);
        for t in 0..100 {
            assert!(!never.drops(&ctx_at(t)));
            assert!(always.drops(&ctx_at(t)));
        }
    }

    #[test]
    fn iid_loss_rate_close_to_p() {
        let mut m = IidLoss::new(0.3, 42);
        let drops = (0..10_000).filter(|&t| m.drops(&ctx_at(t))).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed {rate}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn iid_loss_rejects_bad_p() {
        let _ = IidLoss::new(1.5, 0);
    }

    #[test]
    fn iid_deterministic_per_seed() {
        let run = |seed| {
            let mut m = IidLoss::new(0.5, seed);
            (0..64).map(|t| m.drops(&ctx_at(t))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn gilbert_elliott_burstier_than_iid() {
        // With sticky states, consecutive outcomes should correlate:
        // measure the rate of loss-runs vs. total losses.
        let mut ge = GilbertElliott::new(0.02, 0.1, 0.0, 0.9, 3);
        let outcomes: Vec<bool> = (0..20_000).map(|t| ge.drops(&ctx_at(t))).collect();
        let losses = outcomes.iter().filter(|&&d| d).count();
        assert!(losses > 100, "bad state should be visited: {losses}");
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        // P(loss | previous loss) must exceed the marginal loss rate.
        let cond = pairs as f64 / losses as f64;
        let marginal = losses as f64 / outcomes.len() as f64;
        assert!(
            cond > marginal * 2.0,
            "cond {cond} should exceed 2x marginal {marginal}"
        );
    }

    #[test]
    fn gilbert_elliott_links_independent() {
        let mut ge = GilbertElliott::new(0.5, 0.01, 0.0, 1.0, 3);
        // Drive link (0,1) into the bad state.
        for t in 0..50 {
            let _ = ge.drops(&ctx_at(t));
        }
        // A fresh link starts in the good state with loss_good = 0.
        let fresh = DeliveryCtx {
            now: SimTime::from_micros(1000),
            src: 5,
            dst: 6,
            broadcast: false,
        };
        // First decision on a fresh link can only be lost if it flips to
        // bad (p=0.5); run a few distinct fresh links and require at least
        // one clean delivery.
        let mut any_ok = false;
        for d in 7..17 {
            let c = DeliveryCtx { dst: d, ..fresh };
            any_ok |= !ge.drops(&c);
        }
        assert!(any_ok);
    }

    #[test]
    fn jamming_drops_only_inside_windows() {
        let mut jam = JammingWindows::burst(SimTime::from_micros(100), Duration::from_micros(50));
        assert!(!jam.drops(&ctx_at(99)));
        assert!(jam.drops(&ctx_at(100)));
        assert!(jam.drops(&ctx_at(149)));
        assert!(!jam.drops(&ctx_at(150)));
    }

    #[test]
    fn budgeted_omission_respects_budget_and_resets() {
        let mut adv = BudgetedOmission::new(2, Duration::from_micros(100));
        // Window [0, 100): first two killed, third passes.
        assert!(adv.drops(&ctx_at(1)));
        assert!(adv.drops(&ctx_at(2)));
        assert!(!adv.drops(&ctx_at(3)));
        // Next window: budget resets.
        assert!(adv.drops(&ctx_at(101)));
        assert!(adv.drops(&ctx_at(110)));
        assert!(!adv.drops(&ctx_at(111)));
    }

    #[test]
    fn budgeted_omission_skips_multiple_windows() {
        let mut adv = BudgetedOmission::new(1, Duration::from_micros(10));
        assert!(adv.drops(&ctx_at(5)));
        // Jump several windows ahead; budget must be fresh.
        assert!(adv.drops(&ctx_at(95)));
    }

    #[test]
    fn budgeted_omission_broadcast_only_ignores_unicast() {
        let mut adv = BudgetedOmission::new(1, Duration::from_micros(100)).broadcast_only();
        let unicast = DeliveryCtx {
            now: SimTime::from_micros(1),
            src: 0,
            dst: 1,
            broadcast: false,
        };
        assert!(!adv.drops(&unicast));
        assert!(adv.drops(&ctx_at(2)), "budget untouched by unicast");
    }

    #[test]
    fn targeted_loss_scopes_by_src_dst() {
        let mut m = TargetedLoss::new(vec![0], vec![1], 1.0, 9);
        assert!(m.drops(&ctx_at(0)));
        let other = DeliveryCtx {
            now: SimTime::ZERO,
            src: 2,
            dst: 1,
            broadcast: true,
        };
        assert!(!m.drops(&other));
    }

    #[test]
    fn targeted_loss_empty_sets_are_wildcards() {
        let mut m = TargetedLoss::new(vec![], vec![], 1.0, 9);
        assert!(m.drops(&ctx_at(0)));
    }

    #[test]
    fn compose_ors_components() {
        let mut m = Compose::new(vec![
            Box::new(JammingWindows::burst(
                SimTime::from_micros(10),
                Duration::from_micros(10),
            )),
            Box::new(TargetedLoss::new(vec![0], vec![], 1.0, 1)),
        ]);
        assert!(m.drops(&ctx_at(0)), "targeted component drops src 0");
        let other_src = DeliveryCtx {
            now: SimTime::from_micros(15),
            src: 3,
            dst: 1,
            broadcast: true,
        };
        assert!(m.drops(&other_src), "jamming window drops it");
        let clean = DeliveryCtx {
            now: SimTime::from_micros(30),
            src: 3,
            dst: 1,
            broadcast: true,
        };
        assert!(!m.drops(&clean));
    }

    #[test]
    fn crash_schedule_builders_and_describe() {
        let sched = CrashSchedule::new()
            .crash_at(0, SimTime::from_millis(5))
            .crash_at_phase(2, 4)
            .rejoin_after(Duration::from_millis(100));
        assert_eq!(sched.specs().len(), 2);
        assert_eq!(sched.specs()[0].rejoin_after, None);
        assert_eq!(
            sched.specs()[1],
            CrashSpec {
                node: 2,
                trigger: CrashTrigger::AtPhase(4),
                rejoin_after: Some(Duration::from_millis(100)),
            }
        );
        let text = sched.describe();
        assert!(text.contains("crash n0"), "{text}");
        assert!(text.contains("phase 4"), "{text}");
        assert!(text.contains("rejoin"), "{text}");
        assert_eq!(CrashSchedule::new().describe(), "no crashes");
        assert!(CrashSchedule::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "already has a crash scheduled")]
    fn crash_schedule_rejects_duplicate_node() {
        let _ = CrashSchedule::new()
            .crash_at(1, SimTime::from_millis(5))
            .crash_at_phase(1, 3);
    }

    #[test]
    fn descriptions_nonempty() {
        assert!(!NoFaults.describe().is_empty());
        assert!(!IidLoss::new(0.1, 0).describe().is_empty());
        assert!(!GilbertElliott::new(0.1, 0.1, 0.0, 1.0, 0).describe().is_empty());
        assert!(!JammingWindows::new(vec![]).describe().is_empty());
        assert!(!BudgetedOmission::new(1, Duration::from_millis(1)).describe().is_empty());
        assert!(!TargetedLoss::new(vec![], vec![], 0.0, 0).describe().is_empty());
    }
}
