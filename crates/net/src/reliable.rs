//! A TCP-like reliable, ordered, per-pair transport over the simulated
//! medium.
//!
//! The baseline protocols of the paper's evaluation (Bracha, ABBA) assume
//! the classic intrusion-tolerant model with *reliable point-to-point
//! links*, which the authors implement with TCP. This module provides the
//! equivalent: per-pair sequence numbers, cumulative acknowledgements
//! piggybacked on reverse-direction data, delayed pure ACKs, an adaptive
//! retransmission timeout (RFC 6298-style, Karn's rule), and recovery
//! from MAC-level retry exhaustion. Combined with the MAC's own
//! ACK/retransmission, this delivers every message to a live peer exactly
//! once and in order — at the airtime price the paper's results hinge on:
//! a logical broadcast costs `n − 1` unicast data frames plus their MAC
//! ACKs (and occasional transport ACKs), versus one frame for UDP
//! broadcast.
//!
//! Like real TCP, the endpoint applies **Nagle-style coalescing**: a
//! message sent while earlier data is still unacknowledged is buffered
//! and rides the next segment (flushed when the in-flight data is
//! acknowledged, or immediately once a full MSS accumulates). Protocols
//! that emit bursts — Bracha's reliable broadcast emits `O(n)` echoes
//! and readies per delivery — get the segment-packing a kernel TCP stack
//! would give them.
//!
//! [`ReliableEndpoint`] is a helper an [`crate::sim::Application`]
//! embeds; the application forwards its `on_frame`, `on_timer`, and
//! `on_unicast_failed` callbacks.

use crate::config::overhead;
use crate::frame::{NodeId, ReceivedFrame};
use crate::sim::NodeCtx;
use bytes::arena::EncodeArena;
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use std::time::Duration;

/// Environment variable selecting the legacy per-segment wire builders
/// (a fresh `BytesMut` per packed batch and per segment) instead of
/// the endpoint's pooled [`EncodeArena`]. Results must be
/// byte-identical either way; the variable exists as a differential
/// guard, mirroring `TURQUOIS_LEGACY_QUEUE` / `TURQUOIS_LEGACY_MEDIUM`
/// (DESIGN.md §13).
pub const LEGACY_CODEC_ENV: &str = "TURQUOIS_LEGACY_CODEC";

static LEGACY_CODEC: AtomicBool = AtomicBool::new(false);
static LEGACY_CODEC_INIT: Once = Once::new();

/// Returns whether transport segments use the legacy owned builders.
///
/// The first call reads [`LEGACY_CODEC_ENV`]; later calls reuse the
/// cached value unless [`set_legacy_codec`] overrides it.
pub fn legacy_codec_enabled() -> bool {
    LEGACY_CODEC_INIT.call_once(|| {
        if std::env::var_os(LEGACY_CODEC_ENV).is_some_and(|v| !v.is_empty()) {
            LEGACY_CODEC.store(true, Ordering::Relaxed);
        }
    });
    LEGACY_CODEC.load(Ordering::Relaxed)
}

/// Programmatically selects the transport codec, overriding the
/// environment.
pub fn set_legacy_codec(enabled: bool) {
    LEGACY_CODEC_INIT.call_once(|| {});
    LEGACY_CODEC.store(enabled, Ordering::Relaxed);
}

/// Timer-id namespace bit reserved by the transport. Applications using
/// a [`ReliableEndpoint`] must keep their own timer ids below this.
pub const TRANSPORT_TIMER_FLAG: u64 = 1 << 63;

const TICK_ID: u64 = TRANSPORT_TIMER_FLAG | 1;
const TICK_INTERVAL: Duration = Duration::from_millis(5);
const DELAYED_ACK: Duration = Duration::from_millis(10);
const MIN_RTO: Duration = Duration::from_millis(200);
const MAX_RTO: Duration = Duration::from_secs(3);

const MAGIC: u8 = 0x54; // 'T'
const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
const HEADER_LEN: usize = 1 + 1 + 8 + 8;
/// Maximum segment payload (Ethernet-class MSS minus headers).
const MSS: usize = 1400;

#[derive(Debug)]
struct Unacked {
    seq: u64,
    payload: Bytes,
    sent_at: crate::time::SimTime,
    retransmitted: bool,
    rto_deadline: crate::time::SimTime,
}

#[derive(Debug)]
struct PeerState {
    next_seq_out: u64,
    /// Messages awaiting segment assignment (Nagle buffer).
    pending: Vec<Bytes>,
    pending_bytes: usize,
    unacked: VecDeque<Unacked>,
    next_expected_in: u64,
    reorder: BTreeMap<u64, Bytes>,
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    ack_due_at: Option<crate::time::SimTime>,
    mac_failed: bool,
}

impl PeerState {
    fn new() -> Self {
        PeerState {
            next_seq_out: 0,
            pending: Vec::new(),
            pending_bytes: 0,
            unacked: VecDeque::new(),
            next_expected_in: 0,
            reorder: BTreeMap::new(),
            srtt: None,
            rttvar: Duration::ZERO,
            rto: MIN_RTO,
            ack_due_at: None,
            mac_failed: false,
        }
    }

    fn update_rtt(&mut self, sample: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let diff = srtt.abs_diff(sample);
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                self.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
        let rto = self.srtt.expect("just set") + 4 * self.rttvar;
        self.rto = rto.clamp(MIN_RTO, MAX_RTO);
    }
}

/// Reliable ordered transport endpoint for one node.
///
/// # Example (inside an `Application`)
///
/// ```no_run
/// use wireless_net::reliable::ReliableEndpoint;
/// use wireless_net::sim::{Application, NodeCtx};
/// use wireless_net::frame::ReceivedFrame;
/// use bytes::Bytes;
///
/// struct Echo {
///     transport: ReliableEndpoint,
/// }
///
/// impl Application for Echo {
///     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
///         self.transport.send(ctx, 1, Bytes::from_static(b"ping"));
///     }
///     fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
///         for (peer, msg) in self.transport.on_frame(ctx, &frame) {
///             self.transport.send(ctx, peer, msg); // echo back
///         }
///     }
///     fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
///         let _ = self.transport.on_timer(ctx, timer);
///     }
///     fn on_unicast_failed(&mut self, ctx: &mut NodeCtx<'_>, dst: usize, payload: Bytes) {
///         self.transport.on_unicast_failed(ctx, dst, payload);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct ReliableEndpoint {
    node: NodeId,
    peers: Vec<PeerState>,
    tick_armed: bool,
    delivered_messages: u64,
    sent_messages: u64,
    transport_retransmits: u64,
    /// Pooled encode scratch for outgoing segments (arena codec;
    /// unused when `TURQUOIS_LEGACY_CODEC` selects per-segment
    /// builders).
    arena: EncodeArena,
}

impl ReliableEndpoint {
    /// Creates the endpoint for `node` in a network of `n` nodes.
    pub fn new(node: NodeId, n: usize) -> Self {
        ReliableEndpoint {
            node,
            peers: (0..n).map(|_| PeerState::new()).collect(),
            tick_armed: false,
            delivered_messages: 0,
            sent_messages: 0,
            transport_retransmits: 0,
            arena: EncodeArena::new(),
        }
    }

    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Application messages delivered in order so far.
    pub fn delivered_messages(&self) -> u64 {
        self.delivered_messages
    }

    /// Application messages accepted for sending so far.
    pub fn sent_messages(&self) -> u64 {
        self.sent_messages
    }

    /// Transport-level (not MAC-level) retransmissions performed.
    pub fn transport_retransmits(&self) -> u64 {
        self.transport_retransmits
    }

    /// Sends `payload` reliably and in order to `dst`.
    ///
    /// Transmits immediately when no data is in flight to `dst`;
    /// otherwise the message joins the Nagle buffer and rides the next
    /// segment (on acknowledgement, or as soon as a full MSS
    /// accumulates).
    pub fn send(&mut self, ctx: &mut NodeCtx<'_>, dst: NodeId, payload: Bytes) {
        self.sent_messages += 1;
        let peer = &mut self.peers[dst];
        peer.pending_bytes += payload.len() + 2;
        peer.pending.push(payload);
        if peer.unacked.is_empty() || peer.pending_bytes >= MSS {
            self.flush(ctx, dst);
        }
        self.arm_tick(ctx);
    }

    /// Packs the Nagle buffer into one segment (up to MSS) and
    /// transmits it.
    fn flush(&mut self, ctx: &mut NodeCtx<'_>, dst: NodeId) {
        let now = ctx.now();
        let peer = &mut self.peers[dst];
        while !peer.pending.is_empty() {
            // Take messages until the MSS would be exceeded (always at
            // least one).
            let mut batch = Vec::new();
            let mut bytes = 0usize;
            while let Some(front) = peer.pending.first() {
                let add = front.len() + 2;
                if !batch.is_empty() && bytes + add > MSS {
                    break;
                }
                bytes += add;
                batch.push(peer.pending.remove(0));
            }
            peer.pending_bytes = peer.pending_bytes.saturating_sub(bytes);
            let seq = peer.next_seq_out;
            peer.next_seq_out += 1;
            let ack = peer.next_expected_in;
            peer.ack_due_at = None; // piggybacked
            let rto = peer.rto;
            let (payload, segment) = if legacy_codec_enabled() {
                let payload = pack_batch(&batch);
                let segment = encode(KIND_DATA, seq, ack, &payload);
                (payload, segment)
            } else {
                // One arena chunk carries the whole segment; the packed
                // batch the retransmit queue must retain is a zero-copy
                // slice of it (the bytes are written exactly once).
                let seg_mark = self.arena.mark();
                put_segment_header(self.arena.buf(), KIND_DATA, seq, ack);
                let payload_mark = self.arena.mark();
                pack_batch_into(self.arena.buf(), &batch);
                let end = self.arena.len();
                let chunk = self.arena.seal();
                (
                    chunk.slice(payload_mark..end),
                    chunk.slice(seg_mark..end),
                )
            };
            peer.unacked.push_back(Unacked {
                seq,
                payload,
                sent_at: now,
                retransmitted: false,
                rto_deadline: now + rto,
            });
            ctx.unicast(dst, segment, overhead::TCP);
            // Only the first segment goes out eagerly; the rest wait for
            // acks unless a full MSS is already queued.
            if peer.pending_bytes < MSS {
                break;
            }
        }
    }

    /// Sends `payload` reliably to every node (including self, via
    /// loopback) — the "broadcast" of a reliable point-to-point system:
    /// `n` separate sends.
    pub fn send_to_all(&mut self, ctx: &mut NodeCtx<'_>, payload: &Bytes) {
        for dst in 0..self.peers.len() {
            self.send(ctx, dst, payload.clone());
        }
    }

    /// Processes a received frame. Returns the application messages this
    /// frame released, in order, as `(peer, payload)` pairs. Frames that
    /// are not transport segments are ignored (returns empty).
    pub fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &ReceivedFrame) -> Vec<(NodeId, Bytes)> {
        let Some((kind, seq, ack, payload)) = decode(&frame.payload) else {
            return Vec::new();
        };
        let src = frame.src;
        if src >= self.peers.len() {
            return Vec::new();
        }
        let now = ctx.now();
        if self.process_ack(src, ack, now) {
            // The pipe drained and the Nagle buffer has data: flush it.
            self.flush(ctx, src);
        }
        let mut released = Vec::new();
        if kind == KIND_DATA {
            let peer = &mut self.peers[src];
            if seq == peer.next_expected_in {
                peer.next_expected_in += 1;
                for msg in unpack_batch(&payload) {
                    released.push((src, msg));
                }
                while let Some(p) = peer.reorder.remove(&peer.next_expected_in) {
                    peer.next_expected_in += 1;
                    for msg in unpack_batch(&p) {
                        released.push((src, msg));
                    }
                }
                self.delivered_messages += released.len() as u64;
            } else if seq > peer.next_expected_in {
                peer.reorder.insert(seq, payload);
            }
            // Duplicate or old segment: just (re-)ack.
            let peer = &mut self.peers[src];
            if peer.ack_due_at.is_none() {
                peer.ack_due_at = Some(now + DELAYED_ACK);
            }
            self.arm_tick(ctx);
        }
        released
    }

    /// Handles a transport tick or ignores foreign timers. Returns `true`
    /// when the timer belonged to the transport.
    pub fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) -> bool {
        if timer != TICK_ID {
            return false;
        }
        self.tick_armed = false;
        let now = ctx.now();
        let mut work_left = false;
        for dst in 0..self.peers.len() {
            // Pure ACK if the delayed-ack clock expired.
            if let Some(due) = self.peers[dst].ack_due_at {
                if now >= due {
                    let ack = self.peers[dst].next_expected_in;
                    let next_seq = self.peers[dst].next_seq_out;
                    self.peers[dst].ack_due_at = None;
                    let segment = self.encode_segment(KIND_ACK, next_seq, ack, &[]);
                    ctx.unicast(dst, segment, overhead::TCP_ACK_SEGMENT);
                } else {
                    work_left = true;
                }
            }
            // Retransmit on RTO expiry or MAC failure.
            let mac_failed = std::mem::take(&mut self.peers[dst].mac_failed);
            let expired = self.peers[dst]
                .unacked
                .front()
                .is_some_and(|u| mac_failed || now >= u.rto_deadline);
            if expired {
                let rto = (self.peers[dst].rto * 2).min(MAX_RTO);
                self.peers[dst].rto = rto;
                let ack = self.peers[dst].next_expected_in;
                let (head_seq, head_payload) = {
                    let head = self.peers[dst].unacked.front_mut().expect("checked");
                    head.retransmitted = true;
                    head.rto_deadline = now + rto;
                    (head.seq, head.payload.clone())
                };
                let segment = self.encode_segment(KIND_DATA, head_seq, ack, &head_payload);
                self.transport_retransmits += 1;
                ctx.unicast(dst, segment, overhead::TCP);
            }
            if !self.peers[dst].unacked.is_empty() || !self.peers[dst].pending.is_empty() {
                work_left = true;
            }
        }
        if work_left {
            self.arm_tick(ctx);
        }
        true
    }

    /// Notifies the transport that the MAC gave up on a unicast frame to
    /// `dst`; the affected segment is retransmitted on the next tick.
    pub fn on_unicast_failed(&mut self, ctx: &mut NodeCtx<'_>, dst: NodeId, _payload: Bytes) {
        if dst < self.peers.len() && !self.peers[dst].unacked.is_empty() {
            self.peers[dst].mac_failed = true;
            self.arm_tick(ctx);
        }
    }

    fn process_ack(&mut self, src: NodeId, ack: u64, now: crate::time::SimTime) -> bool {
        let peer = &mut self.peers[src];
        let mut newest_sample: Option<Duration> = None;
        while let Some(front) = peer.unacked.front() {
            if front.seq < ack {
                let u = peer.unacked.pop_front().expect("front checked");
                if !u.retransmitted {
                    newest_sample = Some(now.saturating_since(u.sent_at));
                }
            } else {
                break;
            }
        }
        if let Some(sample) = newest_sample {
            peer.update_rtt(sample);
        }
        peer.unacked.is_empty() && !peer.pending.is_empty()
    }

    fn arm_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.tick_armed {
            self.tick_armed = true;
            ctx.set_timer(TICK_INTERVAL, TICK_ID);
        }
    }

    /// Encodes one wire segment — through the endpoint's pooled arena
    /// by default, or the legacy per-segment builder under
    /// `TURQUOIS_LEGACY_CODEC` (byte-identical either way).
    fn encode_segment(&mut self, kind: u8, seq: u64, ack: u64, payload: &[u8]) -> Bytes {
        if legacy_codec_enabled() {
            encode(kind, seq, ack, payload)
        } else {
            self.arena.encode_with(|buf| {
                put_segment_header(buf, kind, seq, ack);
                buf.put_slice(payload);
            })
        }
    }
}

fn put_segment_header<B: BufMut>(buf: &mut B, kind: u8, seq: u64, ack: u64) {
    buf.put_u8(MAGIC);
    buf.put_u8(kind);
    buf.put_u64(seq);
    buf.put_u64(ack);
}

fn pack_batch_into<B: BufMut>(buf: &mut B, messages: &[Bytes]) {
    buf.put_u16(messages.len() as u16);
    for m in messages {
        buf.put_u16(m.len() as u16);
        buf.put_slice(m);
    }
}

fn pack_batch(messages: &[Bytes]) -> Bytes {
    let mut buf = BytesMut::with_capacity(2 + messages.iter().map(|m| m.len() + 2).sum::<usize>());
    pack_batch_into(&mut buf, messages);
    buf.freeze()
}

fn unpack_batch(payload: &Bytes) -> Vec<Bytes> {
    let mut out = Vec::new();
    if payload.len() < 2 {
        return out;
    }
    let count = u16::from_be_bytes([payload[0], payload[1]]) as usize;
    let mut at = 2usize;
    for _ in 0..count {
        if at + 2 > payload.len() {
            return Vec::new(); // malformed batch: drop whole segment
        }
        let len = u16::from_be_bytes([payload[at], payload[at + 1]]) as usize;
        at += 2;
        if at + len > payload.len() {
            return Vec::new();
        }
        out.push(payload.slice(at..at + len));
        at += len;
    }
    out
}

fn encode(kind: u8, seq: u64, ack: u64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    put_segment_header(&mut buf, kind, seq, ack);
    buf.put_slice(payload);
    buf.freeze()
}

fn decode(bytes: &Bytes) -> Option<(u8, u64, u64, Bytes)> {
    if bytes.len() < HEADER_LEN || bytes[0] != MAGIC {
        return None;
    }
    let kind = bytes[1];
    if kind != KIND_DATA && kind != KIND_ACK {
        return None;
    }
    let seq = u64::from_be_bytes(bytes[2..10].try_into().ok()?);
    let ack = u64::from_be_bytes(bytes[10..18].try_into().ok()?);
    Some((kind, seq, ack, bytes.slice(HEADER_LEN..)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{IidLoss, NoFaults, TargetedLoss};
    use crate::sim::{Application, SimConfig, Simulator};
    use crate::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn codec_round_trip() {
        let seg = encode(KIND_DATA, 7, 3, &Bytes::from_static(b"payload"));
        let (kind, seq, ack, payload) = decode(&seg).expect("valid segment");
        assert_eq!(kind, KIND_DATA);
        assert_eq!(seq, 7);
        assert_eq!(ack, 3);
        assert_eq!(&payload[..], b"payload");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&Bytes::from_static(b"")).is_none());
        assert!(decode(&Bytes::from_static(b"short")).is_none());
        let mut bad_magic = encode(KIND_DATA, 0, 0, &Bytes::new()).to_vec();
        bad_magic[0] = 0xff;
        assert!(decode(&Bytes::from(bad_magic)).is_none());
        let mut bad_kind = encode(KIND_DATA, 0, 0, &Bytes::new()).to_vec();
        bad_kind[1] = 77;
        assert!(decode(&Bytes::from(bad_kind)).is_none());
    }

    type Inbox = Rc<RefCell<Vec<(NodeId, Vec<u8>)>>>;

    /// Sends `count` messages to every peer at start; records ordered
    /// deliveries.
    struct Flood {
        transport: ReliableEndpoint,
        count: usize,
        inbox: Inbox,
    }

    impl Application for Flood {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            for i in 0..self.count {
                let msg = format!("m{}-{}", ctx.node(), i);
                let payload = Bytes::from(msg.into_bytes());
                self.transport.send_to_all(ctx, &payload);
            }
        }
        fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
            for (peer, msg) in self.transport.on_frame(ctx, &frame) {
                self.inbox.borrow_mut().push((peer, msg.to_vec()));
            }
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
            let _ = self.transport.on_timer(ctx, timer);
        }
        fn on_unicast_failed(&mut self, ctx: &mut NodeCtx<'_>, dst: NodeId, payload: Bytes) {
            self.transport.on_unicast_failed(ctx, dst, payload);
        }
    }

    fn flood_sim(
        n: usize,
        count: usize,
        seed: u64,
        fault: Box<dyn crate::fault::FaultModel>,
    ) -> (Simulator, Vec<Inbox>) {
        let inboxes: Vec<Inbox> = (0..n).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
        let apps: Vec<Box<dyn Application>> = inboxes
            .iter()
            .enumerate()
            .map(|(i, inbox)| {
                Box::new(Flood {
                    transport: ReliableEndpoint::new(i, n),
                    count,
                    inbox: inbox.clone(),
                }) as Box<dyn Application>
            })
            .collect();
        let cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        (Simulator::new(cfg, fault, apps), inboxes)
    }

    fn assert_all_delivered_in_order(inboxes: &[Inbox], n: usize, count: usize) {
        for (rx, inbox) in inboxes.iter().enumerate() {
            let got = inbox.borrow();
            for src in 0..n {
                let from_src: Vec<&Vec<u8>> = got
                    .iter()
                    .filter(|(s, _)| *s == src)
                    .map(|(_, m)| m)
                    .collect();
                assert_eq!(
                    from_src.len(),
                    count,
                    "node {rx} expected {count} messages from {src}"
                );
                for (i, msg) in from_src.iter().enumerate() {
                    let expected = format!("m{src}-{i}");
                    assert_eq!(
                        msg.as_slice(),
                        expected.as_bytes(),
                        "node {rx} message {i} from {src} out of order"
                    );
                }
            }
        }
    }

    #[test]
    fn lossless_delivery_in_order() {
        let (mut sim, inboxes) = flood_sim(3, 5, 11, Box::new(NoFaults));
        sim.run_until(SimTime::from_millis(5_000), |_| false);
        assert_all_delivered_in_order(&inboxes, 3, 5);
    }

    #[test]
    fn delivery_survives_heavy_loss() {
        // 40% loss: MAC ARQ plus transport retransmission must still get
        // every message through, in order, exactly once.
        let (mut sim, inboxes) = flood_sim(3, 5, 13, Box::new(IidLoss::new(0.4, 21)));
        sim.run_until(SimTime::from_millis(30_000), |_| false);
        assert_all_delivered_in_order(&inboxes, 3, 5);
        assert!(sim.stats().fault_drops > 0, "loss must actually occur");
    }

    #[test]
    fn delivery_survives_total_blackout_of_one_direction_then_recovers() {
        // All deliveries to node 1 dropped: MAC fails, transport keeps
        // retrying. (Jamming that later clears is covered by the
        // integration tests; here we check nothing deadlocks and other
        // pairs complete.)
        let fault = TargetedLoss::new(vec![], vec![1], 1.0, 5);
        let (mut sim, inboxes) = flood_sim(3, 2, 17, Box::new(fault));
        sim.run_until(SimTime::from_millis(2_000), |_| false);
        // Nodes 0 and 2 exchange everything despite node 1 being deaf.
        for rx in [0usize, 2] {
            let got = inboxes[rx].borrow();
            for src in [0usize, 2] {
                let cnt = got.iter().filter(|(s, _)| *s == src).count();
                assert_eq!(cnt, 2, "node {rx} should have node {src}'s messages");
            }
        }
        assert!(sim.stats().mac_failures > 0);
    }

    #[test]
    fn no_duplicate_deliveries_under_loss() {
        let (mut sim, inboxes) = flood_sim(2, 10, 29, Box::new(IidLoss::new(0.3, 7)));
        sim.run_until(SimTime::from_millis(30_000), |_| false);
        for inbox in &inboxes {
            let got = inbox.borrow();
            let mut seen = std::collections::BTreeSet::new();
            for (src, msg) in got.iter() {
                assert!(
                    seen.insert((*src, msg.clone())),
                    "duplicate delivery of {msg:?} from {src}"
                );
            }
        }
    }

    /// The arena codec and the legacy per-segment builders drive
    /// byte-identical simulations: same deliveries, same stats (frame
    /// counts and airtime depend on every segment byte).
    #[test]
    fn codec_paths_are_observationally_identical() {
        fn run(legacy: bool) -> (Vec<Vec<(NodeId, Vec<u8>)>>, String) {
            set_legacy_codec(legacy);
            let (mut sim, inboxes) = flood_sim(3, 5, 41, Box::new(IidLoss::new(0.2, 9)));
            sim.run_until(SimTime::from_millis(30_000), |_| false);
            set_legacy_codec(false);
            let stats = format!("{:?}", sim.stats());
            (
                inboxes.iter().map(|i| i.borrow().clone()).collect(),
                stats,
            )
        }
        let arena = run(false);
        let legacy = run(true);
        assert_eq!(arena.0, legacy.0, "deliveries");
        assert_eq!(arena.1, legacy.1, "simulator stats");
    }

    /// The arena flush writes the packed batch once: the retained
    /// payload and the transmitted segment share one chunk, and the
    /// segment bytes equal the legacy encoding.
    #[test]
    fn arena_segment_matches_legacy_bytes() {
        let batch = vec![Bytes::copy_from_slice(b"one"), Bytes::copy_from_slice(b"two")];
        let payload = pack_batch(&batch);
        let legacy_segment = encode(KIND_DATA, 3, 9, &payload);
        let mut arena = EncodeArena::new();
        let seg_mark = arena.mark();
        put_segment_header(arena.buf(), KIND_DATA, 3, 9);
        let payload_mark = arena.mark();
        pack_batch_into(arena.buf(), &batch);
        let end = arena.len();
        let chunk = arena.seal();
        assert_eq!(&chunk.slice(seg_mark..end)[..], &legacy_segment[..]);
        assert_eq!(&chunk.slice(payload_mark..end)[..], &payload[..]);
        // Shared storage: the payload slice points inside the segment.
        assert_eq!(
            chunk.slice(payload_mark..end).as_ptr(),
            chunk.slice(seg_mark..end)[HEADER_LEN..].as_ptr()
        );
    }

    #[test]
    fn batch_pack_unpack_round_trip() {
        let msgs = vec![
            Bytes::from_static(b"alpha"),
            Bytes::from_static(b""),
            Bytes::from_static(b"gamma-gamma"),
        ];
        let packed = pack_batch(&msgs);
        assert_eq!(unpack_batch(&packed), msgs);
        assert!(unpack_batch(&Bytes::from_static(b"")).is_empty());
        // Malformed batches (bad inner length) drop cleanly.
        let mut bad = packed.to_vec();
        bad[2] = 0xff; // first chunk length high byte
        bad[3] = 0xff;
        assert!(unpack_batch(&Bytes::from(bad)).is_empty());
    }

    #[test]
    fn nagle_coalesces_burst_into_few_segments() {
        // One sender bursts 20 small messages to one receiver: the first
        // flies alone, the rest coalesce behind acknowledgements — far
        // fewer than 20 data segments hit the air.
        struct Burst {
            transport: ReliableEndpoint,
            inbox: Rc<RefCell<Vec<Bytes>>>,
        }
        impl Application for Burst {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                if ctx.node() == 0 {
                    for i in 0..20u8 {
                        self.transport.send(ctx, 1, Bytes::from(vec![i; 8]));
                    }
                }
            }
            fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
                for (_, m) in self.transport.on_frame(ctx, &frame) {
                    self.inbox.borrow_mut().push(m);
                }
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
                let _ = self.transport.on_timer(ctx, timer);
            }
            fn on_unicast_failed(&mut self, ctx: &mut NodeCtx<'_>, dst: NodeId, p: Bytes) {
                self.transport.on_unicast_failed(ctx, dst, p);
            }
        }
        let inbox = Rc::new(RefCell::new(Vec::new()));
        let apps: Vec<Box<dyn Application>> = vec![
            Box::new(Burst {
                transport: ReliableEndpoint::new(0, 2),
                inbox: Rc::new(RefCell::new(Vec::new())),
            }),
            Box::new(Burst {
                transport: ReliableEndpoint::new(1, 2),
                inbox: inbox.clone(),
            }),
        ];
        let mut sim = Simulator::without_faults(
            SimConfig {
                seed: 3,
                ..SimConfig::default()
            },
            apps,
        );
        sim.run_until(SimTime::from_millis(5_000), |_| false);
        assert_eq!(inbox.borrow().len(), 20, "all messages delivered");
        // 20 messages must travel in far fewer data segments (1 eager +
        // a handful of coalesced flushes + pure acks).
        assert!(
            sim.stats().unicast_frames_sent < 20,
            "expected coalescing, saw {} frames",
            sim.stats().unicast_frames_sent
        );
    }

    #[test]
    fn transport_timer_namespace_respected() {
        let mut ep = ReliableEndpoint::new(0, 2);
        assert_eq!(ep.node(), 0);
        // Foreign timers are not consumed. (NodeCtx cannot be built
        // outside the simulator, so exercise through a tiny sim.)
        struct Probe {
            ep: ReliableEndpoint,
            foreign_seen: Rc<RefCell<bool>>,
        }
        impl Application for Probe {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(Duration::from_millis(1), 7); // app timer
            }
            fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
                if !self.ep.on_timer(ctx, timer) {
                    *self.foreign_seen.borrow_mut() = true;
                    assert_eq!(timer, 7);
                }
            }
        }
        let seen = Rc::new(RefCell::new(false));
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Probe {
            ep: std::mem::replace(&mut ep, ReliableEndpoint::new(0, 2)),
            foreign_seen: seen.clone(),
        })];
        let mut sim = Simulator::without_faults(SimConfig::default(), apps);
        sim.run_until(SimTime::from_millis(100), |_| false);
        assert!(*seen.borrow());
    }
}
