//! # wireless-net — a deterministic 802.11b ad hoc network simulator
//!
//! This crate is the network substrate of the Turquois reproduction
//! (Moniz, Neves, Correia — DSN 2010). The paper evaluated its protocols
//! on a physical 802.11b Emulab testbed; the reproduction replaces that
//! testbed with a discrete-event simulation that models the three
//! mechanisms the evaluation actually exercises:
//!
//! 1. **A shared broadcast medium** ([`medium`]) — CSMA/CA with binary
//!    exponential backoff, DIFS/SIFS/slot timing, per-frame airtime from
//!    the 802.11b rate set, collisions, and unicast ACK/retransmission.
//!    One broadcast frame reaches every node; a logical broadcast over
//!    TCP costs `n − 1` unicast exchanges.
//! 2. **Dynamic omission faults** ([`fault`]) — the Santoro–Widmayer
//!    communication failure model, as i.i.d. loss, Gilbert–Elliott
//!    bursts, jamming windows, and budget-constrained omission
//!    adversaries.
//! 3. **CPU cost accounting** ([`sim::NodeCtx::charge_cpu`]) — protocol
//!    adapters charge cryptographic work to per-node virtual clocks,
//!    reproducing the hash-vs-RSA asymmetry central to the paper.
//!
//! Applications implement [`sim::Application`] and are driven by the
//! [`sim::Simulator`]. The [`reliable`] module provides the TCP-like
//! ordered reliable channel the baseline protocols (Bracha, ABBA)
//! require.
//!
//! Everything is deterministic given `SimConfig::seed`.
//!
//! # Example
//!
//! ```
//! use wireless_net::sim::{Application, NodeCtx, SimConfig, Simulator};
//! use wireless_net::frame::ReceivedFrame;
//! use wireless_net::time::SimTime;
//! use bytes::Bytes;
//!
//! struct Hello;
//! impl Application for Hello {
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
//!         ctx.broadcast(Bytes::from_static(b"hi"), 36);
//!     }
//!     fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
//!         if frame.src != ctx.node() {
//!             ctx.decide(true);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
//! }
//!
//! let apps: Vec<Box<dyn Application>> = vec![Box::new(Hello), Box::new(Hello)];
//! let mut sim = Simulator::without_faults(SimConfig::default(), apps);
//! sim.run_until_k_decided(2, SimTime::from_millis(100));
//! assert_eq!(sim.decided_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod frame;
pub mod medium;
pub mod queue;
pub mod reliable;
pub mod sim;
pub mod stats;
pub mod supervise;
pub mod time;
pub mod topology;
pub mod trace;

pub use config::PhyConfig;
pub use fault::{CrashSchedule, CrashSpec, CrashTrigger};
pub use frame::{Addressing, Frame, NodeId, ReceivedFrame};
pub use sim::{Application, Decision, NodeCtx, RunStatus, SimConfig, Simulator};
pub use supervise::{AppProgress, NodeProgress, StallReport};
pub use time::SimTime;
pub use topology::{Connectivity, PartitionSchedule, Topology, TopologySpec};
