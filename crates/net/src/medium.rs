//! The shared 802.11b broadcast medium: CSMA/CA arbitration with binary
//! exponential backoff, collisions, and unicast ACK/retransmission.
//!
//! The model is the standard simplified DCF used by protocol simulators:
//!
//! * Every node owns a FIFO transmit queue; only the head frame contends.
//! * A contender draws a backoff uniform in `[0, CW(attempt)]` slots.
//!   Contention resolves at `max(now, channel_free) + DIFS + min_backoff ·
//!   slot`; all contenders holding the minimum transmit **simultaneously**
//!   — more than one means a collision that garbles every involved frame
//!   at every receiver. Losers decrement their counters by the elapsed
//!   slots (the freeze rule).
//! * Broadcast (group-addressed) frames are sent once at the basic rate:
//!   no ACK, no retransmission — a collision or fault loses them at up to
//!   `n − 1` receivers, the effect paper §7.3 highlights.
//! * Unicast frames use the data rate and are acknowledged after SIFS;
//!   a collision or missing ACK triggers retransmission with a doubled
//!   contention window, up to `retry_limit`, after which the MAC reports
//!   failure to the sender.
//!
//! The medium is *driven* by the [`crate::sim::Simulator`]: it never
//! schedules its own events. Instead every mutation bumps an epoch, and
//! the simulator re-queries [`Medium::next_resolution`] and schedules a
//! resolution event carrying that epoch; stale events are ignored.

use crate::config::PhyConfig;
use crate::frame::{Addressing, Frame, NodeId};
use crate::time::SimTime;
use rand::RngCore;
use std::collections::VecDeque;
use std::time::Duration;

/// A frame waiting in (or re-queued to) a node's transmit queue.
#[derive(Clone, Debug)]
pub struct PendingTx {
    /// The frame to transmit.
    pub frame: Frame,
    /// Transmission attempt, 0-based (drives the contention window).
    pub attempt: u32,
}

/// A transmission that just finished.
#[derive(Clone, Debug)]
pub struct CompletedTx {
    /// The transmitting node.
    pub node: NodeId,
    /// The frame that was on the air.
    pub frame: Frame,
    /// Attempt number of this transmission.
    pub attempt: u32,
    /// `true` if this transmission collided with another.
    pub collision: bool,
}

/// Opaque token tying a scheduled resolution event to the medium state it
/// was computed from.
pub type Epoch = u64;

#[derive(Debug)]
struct InFlight {
    txs: Vec<(NodeId, PendingTx)>,
    end: SimTime,
}

/// The shared-medium arbiter. See the module docs for the model.
#[derive(Debug)]
pub struct Medium {
    phy: PhyConfig,
    free_at: SimTime,
    in_flight: Option<InFlight>,
    queues: Vec<VecDeque<PendingTx>>,
    /// Remaining backoff slots of each node's head frame; `None` when the
    /// node has nothing to contend with.
    backoffs: Vec<Option<u32>>,
    epoch: Epoch,
    /// Duration of the transmission that just finished (for stats).
    last_busy: Duration,
}

impl Medium {
    /// Creates a medium for `n` nodes with the given PHY parameters.
    pub fn new(n: usize, phy: PhyConfig) -> Self {
        Medium {
            phy,
            free_at: SimTime::ZERO,
            in_flight: None,
            queues: vec![VecDeque::new(); n],
            backoffs: vec![None; n],
            epoch: 0,
            last_busy: Duration::ZERO,
        }
    }

    /// The PHY configuration in use.
    pub fn phy(&self) -> &PhyConfig {
        &self.phy
    }

    /// Current epoch; resolution events carrying an older epoch are
    /// stale.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// `true` while a transmission is on the air.
    pub fn transmitting(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Enqueues a frame for transmission by `frame.src`. Returns `false`
    /// — dropping the frame — when the node's transmit queue is full
    /// (socket-buffer tail drop).
    ///
    /// # Panics
    ///
    /// Panics on unicast frames addressed to their own sender (the
    /// simulator loops those back without touching the radio) and on
    /// unknown node ids.
    pub fn enqueue(&mut self, frame: Frame, rng: &mut dyn RngCore) -> bool {
        if let Addressing::Unicast(dst) = frame.addressing {
            assert_ne!(dst, frame.src, "self-unicast must not reach the medium");
        }
        let node = frame.src;
        if self.queues[node].len() >= self.phy.tx_queue_cap {
            self.epoch += 1;
            return false;
        }
        self.queues[node].push_back(PendingTx { frame, attempt: 0 });
        if self.backoffs[node].is_none() && self.queues[node].len() == 1 {
            self.backoffs[node] = Some(self.draw_backoff(0, rng));
        }
        self.epoch += 1;
        true
    }

    /// When and with what epoch the next contention resolution should
    /// fire, or `None` while transmitting or idle with no contenders.
    pub fn next_resolution(&self, now: SimTime) -> Option<(SimTime, Epoch)> {
        if self.in_flight.is_some() {
            return None;
        }
        let min = self.backoffs.iter().flatten().min()?;
        let base = now.max(self.free_at);
        let at = base + self.phy.difs + self.phy.slot * *min;
        Some((at, self.epoch))
    }

    /// Fires a contention resolution scheduled with `epoch`.
    ///
    /// Returns the end time of the transmission that starts now, or
    /// `None` if the event was stale (epoch mismatch, or a transmission
    /// started in the meantime).
    pub fn resolve(&mut self, now: SimTime, epoch: Epoch) -> Option<SimTime> {
        if epoch != self.epoch || self.in_flight.is_some() {
            return None;
        }
        let min = *self.backoffs.iter().flatten().min()?;
        let mut txs = Vec::new();
        for node in 0..self.backoffs.len() {
            match self.backoffs[node] {
                Some(b) if b == min => {
                    let pending = self.queues[node]
                        .pop_front()
                        .expect("contending node has a head frame");
                    self.backoffs[node] = None;
                    txs.push((node, pending));
                }
                Some(b) => {
                    // Freeze rule: the elapsed slots are consumed.
                    self.backoffs[node] = Some(b - min);
                }
                None => {}
            }
        }
        debug_assert!(!txs.is_empty());
        let airtime = txs
            .iter()
            .map(|(_, p)| self.airtime_of(&p.frame))
            .max()
            .expect("at least one transmission");
        let end = now + airtime;
        self.last_busy = airtime;
        self.in_flight = Some(InFlight { txs, end });
        self.epoch += 1;
        Some(end)
    }

    /// Completes the in-flight transmission.
    ///
    /// Returns the transmissions that were on the air, flagged with
    /// whether they collided. The caller decides deliveries (fault model)
    /// and drives retries via [`Medium::retry_unicast`].
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in flight.
    pub fn finish_tx(&mut self, now: SimTime) -> Vec<CompletedTx> {
        let mut done = Vec::new();
        self.finish_tx_into(now, &mut done);
        done
    }

    /// [`Medium::finish_tx`] into a caller-provided buffer (cleared
    /// first), so the event loop can reuse one allocation across
    /// transmissions.
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in flight.
    pub fn finish_tx_into(&mut self, now: SimTime, done: &mut Vec<CompletedTx>) {
        let fl = self.in_flight.take().expect("finish_tx with no tx in flight");
        debug_assert_eq!(now, fl.end, "TxEnd event at the wrong time");
        self.free_at = fl.end;
        let collision = fl.txs.len() > 1;
        done.clear();
        done.reserve(fl.txs.len());
        for (node, pending) in fl.txs {
            done.push(CompletedTx {
                node,
                frame: pending.frame,
                attempt: pending.attempt,
                collision,
            });
        }
        self.epoch += 1;
    }

    /// Time the channel was busy in the transmission reported by the last
    /// [`Medium::finish_tx`].
    pub fn last_busy(&self) -> Duration {
        self.last_busy
    }

    /// Re-queues a unicast frame after a failed attempt.
    ///
    /// Returns `false` — and drops the frame — when the retry limit is
    /// exhausted (the caller should report a MAC failure to the sender).
    pub fn retry_unicast(
        &mut self,
        node: NodeId,
        frame: Frame,
        attempt: u32,
        rng: &mut dyn RngCore,
    ) -> bool {
        self.epoch += 1;
        let next_attempt = attempt + 1;
        if next_attempt > self.phy.retry_limit {
            self.after_head_done(node, rng);
            return false;
        }
        self.queues[node].push_front(PendingTx {
            frame,
            attempt: next_attempt,
        });
        self.backoffs[node] = Some(self.draw_backoff(next_attempt, rng));
        true
    }

    /// Restarts contention for `node` after its head frame left the
    /// queue for good (success, broadcast loss, or retry exhaustion).
    pub fn after_head_done(&mut self, node: NodeId, rng: &mut dyn RngCore) {
        self.epoch += 1;
        if let Some(head) = self.queues[node].front() {
            let attempt = head.attempt;
            self.backoffs[node] = Some(self.draw_backoff(attempt, rng));
        } else {
            self.backoffs[node] = None;
        }
    }

    /// Number of frames queued at `node` (head included, in-flight
    /// excluded).
    pub fn queue_len(&self, node: NodeId) -> usize {
        self.queues[node].len()
    }

    /// Empties `node`'s transmit queue and withdraws it from contention
    /// — a crashed NIC loses its backlog. Returns the number of frames
    /// discarded. A frame already on the air is unaffected here; the
    /// simulator discards it at `TxEnd` when the source is down.
    pub fn clear_queue(&mut self, node: NodeId) -> usize {
        self.epoch += 1;
        self.backoffs[node] = None;
        let dropped = self.queues[node].len();
        self.queues[node].clear();
        dropped
    }

    fn airtime_of(&self, frame: &Frame) -> Duration {
        match frame.addressing {
            Addressing::Broadcast => self.phy.broadcast_airtime(frame.mac_payload_len()),
            Addressing::Unicast(_) => {
                // Data + SIFS + ACK (or the equivalent ACK-timeout wait).
                self.phy.unicast_exchange_airtime(frame.mac_payload_len())
            }
        }
    }

    fn draw_backoff(&self, attempt: u32, rng: &mut dyn RngCore) -> u32 {
        let cw = self.phy.contention_window(attempt);
        // cw + 1 is a power of two for 802.11 windows, so the modulo is
        // exactly uniform (and trivially scriptable from tests).
        rng.next_u32() % (cw + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    /// An RNG yielding a scripted sequence (for forcing backoff values).
    struct ScriptRng {
        values: Vec<u64>,
        at: usize,
    }

    impl ScriptRng {
        fn new(values: Vec<u64>) -> Self {
            ScriptRng { values, at: 0 }
        }
    }

    impl RngCore for ScriptRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let v = self.values[self.at % self.values.len()];
            self.at += 1;
            v
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    fn bc(src: NodeId, len: usize) -> Frame {
        Frame {
            src,
            addressing: Addressing::Broadcast,
            payload: Bytes::from(vec![0u8; len]),
            transport_overhead: 0,
        }
    }

    fn uc(src: NodeId, dst: NodeId, len: usize) -> Frame {
        Frame {
            src,
            addressing: Addressing::Unicast(dst),
            payload: Bytes::from(vec![0u8; len]),
            transport_overhead: 0,
        }
    }

    #[test]
    fn single_broadcast_airs_after_difs_and_backoff() {
        let phy = PhyConfig::default();
        let mut m = Medium::new(2, phy);
        // Scripted value 0 → backoff 0 slots.
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(bc(0, 100), &mut rng);
        let (at, epoch) = m.next_resolution(SimTime::ZERO).expect("contender present");
        assert_eq!(at, SimTime::ZERO + phy.difs);
        let end = m.resolve(at, epoch).expect("fresh epoch");
        assert_eq!(end, at + phy.broadcast_airtime(100));
        let done = m.finish_tx(end);
        assert_eq!(done.len(), 1);
        assert!(!done[0].collision);
        assert_eq!(done[0].node, 0);
    }

    #[test]
    fn stale_epoch_ignored() {
        let mut m = Medium::new(2, PhyConfig::default());
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(bc(0, 10), &mut rng);
        let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
        m.enqueue(bc(1, 10), &mut rng); // bumps epoch
        assert_eq!(m.resolve(at, epoch), None, "stale event must be ignored");
        let (_, fresh) = m.next_resolution(SimTime::ZERO).unwrap();
        assert!(m.resolve(at, fresh).is_some());
    }

    #[test]
    fn equal_backoffs_collide() {
        let phy = PhyConfig::default();
        let mut m = Medium::new(3, phy);
        let mut rng = ScriptRng::new(vec![5]);
        m.enqueue(bc(0, 50), &mut rng);
        m.enqueue(bc(1, 80), &mut rng);
        let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
        assert_eq!(at, SimTime::ZERO + phy.difs + phy.slot * 5);
        let end = m.resolve(at, epoch).unwrap();
        // Busy for the longer of the two frames.
        assert_eq!(end, at + phy.broadcast_airtime(80));
        let done = m.finish_tx(end);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|t| t.collision));
    }

    #[test]
    fn lower_backoff_wins_and_loser_decrements() {
        let phy = PhyConfig::default();
        let mut m = Medium::new(2, phy);
        let mut rng = ScriptRng::new(vec![2, 7]);
        m.enqueue(bc(0, 10), &mut rng); // backoff 2
        m.enqueue(bc(1, 10), &mut rng); // backoff 7
        let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
        let end = m.resolve(at, epoch).unwrap();
        let done = m.finish_tx(end);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].node, 0);
        // Node 1's residual backoff is 7 − 2 = 5 slots after the busy
        // period.
        let (at2, _) = m.next_resolution(end).unwrap();
        assert_eq!(at2, end + phy.difs + phy.slot * 5);
    }

    #[test]
    fn unicast_busy_includes_ack_exchange() {
        let phy = PhyConfig::default();
        let mut m = Medium::new(2, phy);
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(uc(0, 1, 100), &mut rng);
        let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
        let end = m.resolve(at, epoch).unwrap();
        assert_eq!(end, at + phy.unicast_exchange_airtime(100));
    }

    #[test]
    fn retry_respects_limit() {
        let phy = PhyConfig::default();
        let mut m = Medium::new(2, phy);
        let mut rng = ScriptRng::new(vec![0]);
        let frame = uc(0, 1, 10);
        let mut attempt = 0;
        // retry_limit retries allowed (attempts 1..=retry_limit).
        for _ in 0..phy.retry_limit {
            assert!(m.retry_unicast(0, frame.clone(), attempt, &mut rng));
            attempt += 1;
            // Clear the queue for the next retry call.
            let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
            let end = m.resolve(at, epoch).unwrap();
            let _ = m.finish_tx(end);
        }
        assert!(
            !m.retry_unicast(0, frame, attempt, &mut rng),
            "attempt {} must exceed the limit",
            attempt + 1
        );
    }

    #[test]
    fn retry_goes_to_front_of_queue() {
        let mut m = Medium::new(2, PhyConfig::default());
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(uc(0, 1, 10), &mut rng);
        m.enqueue(bc(0, 99), &mut rng); // queued behind
        let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
        let end = m.resolve(at, epoch).unwrap();
        let done = m.finish_tx(end);
        // Failed: retry must contend before the queued broadcast.
        assert!(m.retry_unicast(0, done[0].frame.clone(), done[0].attempt, &mut rng));
        let (at2, epoch2) = m.next_resolution(end).unwrap();
        let end2 = m.resolve(at2, epoch2).unwrap();
        let done2 = m.finish_tx(end2);
        assert_eq!(done2[0].attempt, 1);
        assert!(!done2[0].frame.is_broadcast());
    }

    #[test]
    fn after_head_done_starts_next_frame() {
        let mut m = Medium::new(2, PhyConfig::default());
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(bc(0, 10), &mut rng);
        m.enqueue(bc(0, 20), &mut rng); // same node, queued
        let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
        let end = m.resolve(at, epoch).unwrap();
        let _ = m.finish_tx(end);
        assert!(
            m.next_resolution(end).is_none(),
            "no contender until after_head_done"
        );
        m.after_head_done(0, &mut rng);
        assert!(m.next_resolution(end).is_some());
        assert_eq!(m.queue_len(0), 1);
    }

    #[test]
    #[should_panic(expected = "self-unicast")]
    fn self_unicast_rejected() {
        let mut m = Medium::new(2, PhyConfig::default());
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(uc(1, 1, 10), &mut rng);
    }

    #[test]
    fn tx_queue_tail_drops_when_full() {
        let phy = PhyConfig {
            tx_queue_cap: 2,
            ..PhyConfig::default()
        };
        let mut m = Medium::new(2, phy);
        let mut rng = ScriptRng::new(vec![0]);
        assert!(m.enqueue(bc(0, 10), &mut rng));
        assert!(m.enqueue(bc(0, 11), &mut rng));
        assert!(!m.enqueue(bc(0, 12), &mut rng), "third frame tail-drops");
        assert_eq!(m.queue_len(0), 2);
        // Another node's queue is independent.
        assert!(m.enqueue(bc(1, 13), &mut rng));
    }

    #[test]
    fn clear_queue_discards_backlog_and_contention() {
        let mut m = Medium::new(2, PhyConfig::default());
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(bc(0, 10), &mut rng);
        m.enqueue(bc(0, 20), &mut rng);
        assert_eq!(m.clear_queue(0), 2);
        assert_eq!(m.queue_len(0), 0);
        assert!(m.next_resolution(SimTime::ZERO).is_none(), "no contender left");
        // An unaffected node keeps its queue.
        m.enqueue(bc(1, 10), &mut rng);
        assert_eq!(m.clear_queue(0), 0);
        assert_eq!(m.queue_len(1), 1);
    }

    #[test]
    fn no_resolution_while_transmitting() {
        let mut m = Medium::new(2, PhyConfig::default());
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(bc(0, 10), &mut rng);
        let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
        let _ = m.resolve(at, epoch).unwrap();
        m.enqueue(bc(1, 10), &mut rng);
        assert!(m.next_resolution(at).is_none(), "channel is busy");
        assert!(m.transmitting());
    }
}
