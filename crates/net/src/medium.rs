//! The shared 802.11b broadcast medium: CSMA/CA arbitration with binary
//! exponential backoff, collisions, and unicast ACK/retransmission.
//!
//! The model is the standard simplified DCF used by protocol simulators:
//!
//! * Every node owns a FIFO transmit queue; only the head frame contends.
//! * A contender draws a backoff uniform in `[0, CW(attempt)]` slots.
//!   Contention resolves at `max(now, channel_free) + DIFS + min_backoff ·
//!   slot`; all contenders holding the minimum transmit **simultaneously**
//!   — more than one means a collision that garbles every involved frame
//!   at every receiver. Losers decrement their counters by the elapsed
//!   slots (the freeze rule).
//! * Broadcast (group-addressed) frames are sent once at the basic rate:
//!   no ACK, no retransmission — a collision or fault loses them at up to
//!   `n − 1` receivers, the effect paper §7.3 highlights.
//! * Unicast frames use the data rate and are acknowledged after SIFS;
//!   a collision or missing ACK triggers retransmission with a doubled
//!   contention window, up to `retry_limit`, after which the MAC reports
//!   failure to the sender.
//!
//! The medium is *driven* by the [`crate::sim::Simulator`]: it never
//! schedules its own events. Instead every mutation bumps an epoch, and
//! the simulator re-queries [`Medium::next_resolution`] and schedules a
//! resolution event carrying that epoch; stale events are ignored.
//!
//! Since the topology refactor the medium is a dispatcher over two
//! engines. The default is the topology-aware engine
//! (`medium/topo.rs`): per-node carrier sense against a
//! [`crate::topology::Topology`], concurrent transmission groups where
//! transmitters cannot sense each other (hidden terminals, partition
//! islands), and per-receiver [`Reception`]. The original single-domain
//! arbiter is preserved verbatim (`medium/legacy.rs`) behind
//! [`LEGACY_MEDIUM_ENV`] and must stay **byte-identical** to the
//! topology engine on every single-domain experiment — the same
//! differential discipline as `TURQUOIS_LEGACY_QUEUE` and
//! `TURQUOIS_LEGACY_STORE` (DESIGN.md §11).

mod legacy;
mod topo;

use crate::config::PhyConfig;
use crate::frame::{Frame, NodeId};
use crate::time::SimTime;
use crate::topology::{self, Connectivity, TopologySpec};
use rand::RngCore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use std::time::Duration;

/// A frame waiting in (or re-queued to) a node's transmit queue.
#[derive(Clone, Debug)]
pub struct PendingTx {
    /// The frame to transmit.
    pub frame: Frame,
    /// Transmission attempt, 0-based (drives the contention window).
    pub attempt: u32,
}

/// Which receivers can decode a completed transmission (before the
/// fault model has its say).
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum Reception {
    /// Every node other than the transmitter decodes the frame — the
    /// single-domain collision-free case.
    Everyone,
    /// No node decodes the frame (collision, or nobody in range).
    Nobody,
    /// Exactly these nodes decode the frame (sorted ascending).
    Subset(Vec<NodeId>),
}

impl Reception {
    /// Whether `rx` decodes the frame. `Everyone` answers for any id;
    /// the caller is responsible for excluding the transmitter itself.
    pub fn hears(&self, rx: NodeId) -> bool {
        match self {
            Reception::Everyone => true,
            Reception::Nobody => false,
            Reception::Subset(v) => v.binary_search(&rx).is_ok(),
        }
    }
}

/// A transmission that just finished.
#[derive(Clone, Debug)]
pub struct CompletedTx {
    /// The transmitting node.
    pub node: NodeId,
    /// The frame that was on the air.
    pub frame: Frame,
    /// Attempt number of this transmission.
    pub attempt: u32,
    /// `true` if this transmission was garbled by interference at one
    /// or more receivers (in a single domain: it collided).
    pub collision: bool,
    /// Who decodes the frame.
    pub reception: Reception,
}

/// Opaque token tying a scheduled resolution event to the medium state it
/// was computed from.
pub type Epoch = u64;

/// Environment variable selecting the legacy single-domain arbiter for
/// byte-identity differentials (any non-empty value enables it).
pub const LEGACY_MEDIUM_ENV: &str = "TURQUOIS_LEGACY_MEDIUM";

static LEGACY_MEDIUM: AtomicBool = AtomicBool::new(false);
static LEGACY_MEDIUM_INIT: Once = Once::new();

/// Returns whether new single-domain simulators use the legacy
/// arbiter.
///
/// The first call reads [`LEGACY_MEDIUM_ENV`]; later calls reuse the
/// cached value unless [`set_legacy_medium`] overrides it. The flag
/// only affects single-domain configurations — a non-default topology
/// always gets the topology-aware engine.
pub fn legacy_medium_enabled() -> bool {
    LEGACY_MEDIUM_INIT.call_once(|| {
        if std::env::var_os(LEGACY_MEDIUM_ENV).is_some_and(|v| !v.is_empty()) {
            LEGACY_MEDIUM.store(true, Ordering::Relaxed);
        }
    });
    LEGACY_MEDIUM.load(Ordering::Relaxed)
}

/// Programmatically selects the medium engine for simulators built
/// afterwards, overriding the environment (used by differential
/// tests to run both engines in one process).
pub fn set_legacy_medium(enabled: bool) {
    // Make sure the env lookup never races in after us and clobbers
    // the explicit choice.
    LEGACY_MEDIUM_INIT.call_once(|| {});
    LEGACY_MEDIUM.store(enabled, Ordering::Relaxed);
}

#[derive(Debug)]
enum Engine {
    Legacy(legacy::LegacyMedium),
    Topo(topo::TopoMedium),
}

/// The shared-medium arbiter. See the module docs for the model.
#[derive(Debug)]
pub struct Medium {
    engine: Engine,
}

impl Medium {
    /// Creates a single-broadcast-domain medium for `n` nodes with the
    /// given PHY parameters, honoring [`LEGACY_MEDIUM_ENV`].
    pub fn new(n: usize, phy: PhyConfig) -> Self {
        Medium::with_topology(n, phy, &TopologySpec::SingleDomain, 0)
    }

    /// Creates a medium whose reachability is governed by `spec`
    /// (instantiated from `seed`). A single-domain spec honors
    /// [`LEGACY_MEDIUM_ENV`]; any other topology requires the
    /// topology-aware engine.
    pub fn with_topology(n: usize, phy: PhyConfig, spec: &TopologySpec, seed: u64) -> Self {
        if spec.is_single_domain() && legacy_medium_enabled() {
            return Medium::new_legacy(n, phy);
        }
        Medium {
            engine: Engine::Topo(topo::TopoMedium::new(n, phy, spec.build(n, seed))),
        }
    }

    /// Creates the legacy single-domain arbiter unconditionally (the
    /// differential tests' oracle).
    pub fn new_legacy(n: usize, phy: PhyConfig) -> Self {
        Medium {
            engine: Engine::Legacy(legacy::LegacyMedium::new(n, phy)),
        }
    }

    /// The PHY configuration in use.
    pub fn phy(&self) -> &PhyConfig {
        match &self.engine {
            Engine::Legacy(m) => m.phy(),
            Engine::Topo(m) => m.phy(),
        }
    }

    /// One-line description of the active topology.
    pub fn topology_describe(&self) -> String {
        match &self.engine {
            Engine::Legacy(_) => "single broadcast domain".into(),
            Engine::Topo(m) => m.topology_describe(),
        }
    }

    /// Reachability snapshot at `now` (for stall diagnostics): per-node
    /// direct-neighbor count and connected-component id.
    pub fn connectivity(&mut self, now: SimTime, n: usize) -> Connectivity {
        match &mut self.engine {
            Engine::Legacy(_) => Connectivity {
                reachable: vec![n.saturating_sub(1); n],
                component: vec![0; n],
            },
            Engine::Topo(m) => topology::connectivity(m.topology_mut(), now, n),
        }
    }

    /// Current epoch; resolution events carrying an older epoch are
    /// stale.
    pub fn epoch(&self) -> Epoch {
        match &self.engine {
            Engine::Legacy(m) => m.epoch(),
            Engine::Topo(m) => m.epoch(),
        }
    }

    /// `true` while a transmission is on the air.
    pub fn transmitting(&self) -> bool {
        match &self.engine {
            Engine::Legacy(m) => m.transmitting(),
            Engine::Topo(m) => m.transmitting(),
        }
    }

    /// Enqueues a frame for transmission by `frame.src`. Returns `false`
    /// — dropping the frame — when the node's transmit queue is full
    /// (socket-buffer tail drop).
    ///
    /// # Panics
    ///
    /// Panics on unicast frames addressed to their own sender (the
    /// simulator loops those back without touching the radio) and on
    /// unknown node ids.
    pub fn enqueue(&mut self, frame: Frame, rng: &mut dyn RngCore) -> bool {
        match &mut self.engine {
            Engine::Legacy(m) => m.enqueue(frame, rng),
            Engine::Topo(m) => m.enqueue(frame, rng),
        }
    }

    /// When and with what epoch the next contention resolution should
    /// fire, or `None` when no eligible contender exists (single
    /// domain: while transmitting or idle with no contenders).
    ///
    /// Takes `&mut self`: the topology engine records the query
    /// instant (to replay the winner computation at `resolve`) and a
    /// mobile topology may advance its state.
    pub fn next_resolution(&mut self, now: SimTime) -> Option<(SimTime, Epoch)> {
        match &mut self.engine {
            Engine::Legacy(m) => m.next_resolution(now),
            Engine::Topo(m) => m.next_resolution(now),
        }
    }

    /// Fires a contention resolution scheduled with `epoch`.
    ///
    /// Returns the end time of the transmission group that starts now,
    /// or `None` if the event was stale (epoch mismatch — a mutation,
    /// or another group starting, intervened).
    pub fn resolve(&mut self, now: SimTime, epoch: Epoch) -> Option<SimTime> {
        match &mut self.engine {
            Engine::Legacy(m) => m.resolve(now, epoch),
            Engine::Topo(m) => m.resolve(now, epoch),
        }
    }

    /// Completes the earliest-ending in-flight transmission group.
    ///
    /// Returns the transmissions that were on the air, each flagged
    /// with its [`Reception`]. The caller decides deliveries (fault
    /// model) and drives retries via [`Medium::retry_unicast`].
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in flight.
    pub fn finish_tx(&mut self, now: SimTime) -> Vec<CompletedTx> {
        let mut done = Vec::new();
        self.finish_tx_into(now, &mut done);
        done
    }

    /// [`Medium::finish_tx`] into a caller-provided buffer (cleared
    /// first), so the event loop can reuse one allocation across
    /// transmissions.
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in flight.
    pub fn finish_tx_into(&mut self, now: SimTime, done: &mut Vec<CompletedTx>) {
        match &mut self.engine {
            Engine::Legacy(m) => m.finish_tx_into(now, done),
            Engine::Topo(m) => m.finish_tx_into(now, done),
        }
    }

    /// Time the channel was busy in the transmission reported by the last
    /// [`Medium::finish_tx`].
    pub fn last_busy(&self) -> Duration {
        match &self.engine {
            Engine::Legacy(m) => m.last_busy(),
            Engine::Topo(m) => m.last_busy(),
        }
    }

    /// Re-queues a unicast frame after a failed attempt.
    ///
    /// Returns `false` — and drops the frame — when the retry limit is
    /// exhausted (the caller should report a MAC failure to the sender).
    pub fn retry_unicast(
        &mut self,
        node: NodeId,
        frame: Frame,
        attempt: u32,
        rng: &mut dyn RngCore,
    ) -> bool {
        match &mut self.engine {
            Engine::Legacy(m) => m.retry_unicast(node, frame, attempt, rng),
            Engine::Topo(m) => m.retry_unicast(node, frame, attempt, rng),
        }
    }

    /// Restarts contention for `node` after its head frame left the
    /// queue for good (success, broadcast loss, or retry exhaustion).
    pub fn after_head_done(&mut self, node: NodeId, rng: &mut dyn RngCore) {
        match &mut self.engine {
            Engine::Legacy(m) => m.after_head_done(node, rng),
            Engine::Topo(m) => m.after_head_done(node, rng),
        }
    }

    /// Number of frames queued at `node` (head included, in-flight
    /// excluded).
    pub fn queue_len(&self, node: NodeId) -> usize {
        match &self.engine {
            Engine::Legacy(m) => m.queue_len(node),
            Engine::Topo(m) => m.queue_len(node),
        }
    }

    /// Empties `node`'s transmit queue and withdraws it from contention
    /// — a crashed NIC loses its backlog. Returns the number of frames
    /// discarded. A frame already on the air is unaffected here; the
    /// simulator discards it at `TxEnd` when the source is down.
    pub fn clear_queue(&mut self, node: NodeId) -> usize {
        match &mut self.engine {
            Engine::Legacy(m) => m.clear_queue(node),
            Engine::Topo(m) => m.clear_queue(node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Addressing;
    use crate::topology::{Disk, PartitionSchedule};
    use bytes::Bytes;

    /// An RNG yielding a scripted sequence (for forcing backoff values).
    struct ScriptRng {
        values: Vec<u64>,
        at: usize,
    }

    impl ScriptRng {
        fn new(values: Vec<u64>) -> Self {
            ScriptRng { values, at: 0 }
        }
    }

    impl RngCore for ScriptRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let v = self.values[self.at % self.values.len()];
            self.at += 1;
            v
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    fn bc(src: NodeId, len: usize) -> Frame {
        Frame {
            src,
            addressing: Addressing::Broadcast,
            payload: Bytes::from(vec![0u8; len]),
            transport_overhead: 0,
        }
    }

    fn uc(src: NodeId, dst: NodeId, len: usize) -> Frame {
        Frame {
            src,
            addressing: Addressing::Unicast(dst),
            payload: Bytes::from(vec![0u8; len]),
            transport_overhead: 0,
        }
    }

    /// Both single-domain engines, so every legacy behavior test runs
    /// against the topology engine too.
    fn engines(n: usize, phy: PhyConfig) -> [Medium; 2] {
        [
            Medium::new_legacy(n, phy),
            Medium::with_topology(n, phy, &TopologySpec::SingleDomain, 0),
        ]
    }

    #[test]
    fn single_broadcast_airs_after_difs_and_backoff() {
        let phy = PhyConfig::default();
        for mut m in engines(2, phy) {
            // Scripted value 0 → backoff 0 slots.
            let mut rng = ScriptRng::new(vec![0]);
            m.enqueue(bc(0, 100), &mut rng);
            let (at, epoch) = m.next_resolution(SimTime::ZERO).expect("contender present");
            assert_eq!(at, SimTime::ZERO + phy.difs);
            let end = m.resolve(at, epoch).expect("fresh epoch");
            assert_eq!(end, at + phy.broadcast_airtime(100));
            let done = m.finish_tx(end);
            assert_eq!(done.len(), 1);
            assert!(!done[0].collision);
            assert_eq!(done[0].node, 0);
            assert_eq!(done[0].reception, Reception::Everyone);
        }
    }

    #[test]
    fn stale_epoch_ignored() {
        for mut m in engines(2, PhyConfig::default()) {
            let mut rng = ScriptRng::new(vec![0]);
            m.enqueue(bc(0, 10), &mut rng);
            let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
            m.enqueue(bc(1, 10), &mut rng); // bumps epoch
            assert_eq!(m.resolve(at, epoch), None, "stale event must be ignored");
            let (_, fresh) = m.next_resolution(SimTime::ZERO).unwrap();
            assert!(m.resolve(at, fresh).is_some());
        }
    }

    #[test]
    fn equal_backoffs_collide() {
        let phy = PhyConfig::default();
        for mut m in engines(3, phy) {
            let mut rng = ScriptRng::new(vec![5]);
            m.enqueue(bc(0, 50), &mut rng);
            m.enqueue(bc(1, 80), &mut rng);
            let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
            assert_eq!(at, SimTime::ZERO + phy.difs + phy.slot * 5);
            let end = m.resolve(at, epoch).unwrap();
            // Busy for the longer of the two frames.
            assert_eq!(end, at + phy.broadcast_airtime(80));
            let done = m.finish_tx(end);
            assert_eq!(done.len(), 2);
            assert!(done.iter().all(|t| t.collision));
            assert!(done.iter().all(|t| t.reception == Reception::Nobody));
        }
    }

    #[test]
    fn lower_backoff_wins_and_loser_decrements() {
        let phy = PhyConfig::default();
        for mut m in engines(2, phy) {
            let mut rng = ScriptRng::new(vec![2, 7]);
            m.enqueue(bc(0, 10), &mut rng); // backoff 2
            m.enqueue(bc(1, 10), &mut rng); // backoff 7
            let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
            let end = m.resolve(at, epoch).unwrap();
            let done = m.finish_tx(end);
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].node, 0);
            // Node 1's residual backoff is 7 − 2 = 5 slots after the busy
            // period.
            let (at2, _) = m.next_resolution(end).unwrap();
            assert_eq!(at2, end + phy.difs + phy.slot * 5);
        }
    }

    #[test]
    fn unicast_busy_includes_ack_exchange() {
        let phy = PhyConfig::default();
        for mut m in engines(2, phy) {
            let mut rng = ScriptRng::new(vec![0]);
            m.enqueue(uc(0, 1, 100), &mut rng);
            let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
            let end = m.resolve(at, epoch).unwrap();
            assert_eq!(end, at + phy.unicast_exchange_airtime(100));
        }
    }

    #[test]
    fn retry_respects_limit() {
        let phy = PhyConfig::default();
        for mut m in engines(2, phy) {
            let mut rng = ScriptRng::new(vec![0]);
            let frame = uc(0, 1, 10);
            let mut attempt = 0;
            // retry_limit retries allowed (attempts 1..=retry_limit).
            for _ in 0..phy.retry_limit {
                assert!(m.retry_unicast(0, frame.clone(), attempt, &mut rng));
                attempt += 1;
                // Clear the queue for the next retry call.
                let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
                let end = m.resolve(at, epoch).unwrap();
                let _ = m.finish_tx(end);
            }
            assert!(
                !m.retry_unicast(0, frame.clone(), attempt, &mut rng),
                "attempt {} must exceed the limit",
                attempt + 1
            );
        }
    }

    #[test]
    fn retry_goes_to_front_of_queue() {
        for mut m in engines(2, PhyConfig::default()) {
            let mut rng = ScriptRng::new(vec![0]);
            m.enqueue(uc(0, 1, 10), &mut rng);
            m.enqueue(bc(0, 99), &mut rng); // queued behind
            let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
            let end = m.resolve(at, epoch).unwrap();
            let done = m.finish_tx(end);
            // Failed: retry must contend before the queued broadcast.
            assert!(m.retry_unicast(0, done[0].frame.clone(), done[0].attempt, &mut rng));
            let (at2, epoch2) = m.next_resolution(end).unwrap();
            let end2 = m.resolve(at2, epoch2).unwrap();
            let done2 = m.finish_tx(end2);
            assert_eq!(done2[0].attempt, 1);
            assert!(!done2[0].frame.is_broadcast());
        }
    }

    #[test]
    fn after_head_done_starts_next_frame() {
        for mut m in engines(2, PhyConfig::default()) {
            let mut rng = ScriptRng::new(vec![0]);
            m.enqueue(bc(0, 10), &mut rng);
            m.enqueue(bc(0, 20), &mut rng); // same node, queued
            let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
            let end = m.resolve(at, epoch).unwrap();
            let _ = m.finish_tx(end);
            assert!(
                m.next_resolution(end).is_none(),
                "no contender until after_head_done"
            );
            m.after_head_done(0, &mut rng);
            assert!(m.next_resolution(end).is_some());
            assert_eq!(m.queue_len(0), 1);
        }
    }

    #[test]
    #[should_panic(expected = "self-unicast")]
    fn self_unicast_rejected() {
        let mut m = Medium::new(2, PhyConfig::default());
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(uc(1, 1, 10), &mut rng);
    }

    #[test]
    fn tx_queue_tail_drops_when_full() {
        let phy = PhyConfig {
            tx_queue_cap: 2,
            ..PhyConfig::default()
        };
        for mut m in engines(2, phy) {
            let mut rng = ScriptRng::new(vec![0]);
            assert!(m.enqueue(bc(0, 10), &mut rng));
            assert!(m.enqueue(bc(0, 11), &mut rng));
            assert!(!m.enqueue(bc(0, 12), &mut rng), "third frame tail-drops");
            assert_eq!(m.queue_len(0), 2);
            // Another node's queue is independent.
            assert!(m.enqueue(bc(1, 13), &mut rng));
        }
    }

    #[test]
    fn clear_queue_discards_backlog_and_contention() {
        for mut m in engines(2, PhyConfig::default()) {
            let mut rng = ScriptRng::new(vec![0]);
            m.enqueue(bc(0, 10), &mut rng);
            m.enqueue(bc(0, 20), &mut rng);
            assert_eq!(m.clear_queue(0), 2);
            assert_eq!(m.queue_len(0), 0);
            assert!(m.next_resolution(SimTime::ZERO).is_none(), "no contender left");
            // An unaffected node keeps its queue.
            m.enqueue(bc(1, 10), &mut rng);
            assert_eq!(m.clear_queue(0), 0);
            assert_eq!(m.queue_len(1), 1);
        }
    }

    #[test]
    fn no_resolution_while_transmitting() {
        for mut m in engines(2, PhyConfig::default()) {
            let mut rng = ScriptRng::new(vec![0]);
            m.enqueue(bc(0, 10), &mut rng);
            let (at, epoch) = m.next_resolution(SimTime::ZERO).unwrap();
            let _ = m.resolve(at, epoch).unwrap();
            m.enqueue(bc(1, 10), &mut rng);
            assert!(m.next_resolution(at).is_none(), "channel is busy");
            assert!(m.transmitting());
        }
    }

    // ---- topology-aware behavior ------------------------------------

    fn spatial_line() -> Medium {
        // A(0) --- B(1) --- C(2): A and C hear B, cannot sense each
        // other.
        let topo = Disk::new(vec![(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)], 120.0, 150.0);
        Medium {
            engine: Engine::Topo(topo::TopoMedium::new(3, PhyConfig::default(), Box::new(topo))),
        }
    }

    #[test]
    fn hidden_terminals_transmit_concurrently_and_garble_the_middle() {
        let phy = PhyConfig::default();
        let mut m = spatial_line();
        let mut rng = ScriptRng::new(vec![0]);
        // A starts transmitting.
        m.enqueue(bc(0, 100), &mut rng);
        let (at_a, ep_a) = m.next_resolution(SimTime::ZERO).unwrap();
        let end_a = m.resolve(at_a, ep_a).unwrap();
        // C cannot sense A: it contends and starts while A is on air.
        m.enqueue(bc(2, 100), &mut rng);
        let (at_c, ep_c) = m.next_resolution(at_a).unwrap();
        assert!(at_c < end_a, "C must not defer to a hidden transmission");
        let end_c = m.resolve(at_c, ep_c).unwrap();
        assert!(end_c > end_a);
        // A's frame ends first: garbled at B by C's overlapping
        // transmission, and C is out of A's range anyway.
        let done_a = m.finish_tx(end_a);
        assert_eq!(done_a[0].node, 0);
        assert!(done_a[0].collision, "hidden-terminal garbling at B");
        assert_eq!(done_a[0].reception, Reception::Nobody);
        // C's frame was equally garbled at B.
        let done_c = m.finish_tx(end_c);
        assert_eq!(done_c[0].node, 2);
        assert!(done_c[0].collision);
        assert_eq!(done_c[0].reception, Reception::Nobody);
        let _ = phy;
    }

    #[test]
    fn out_of_range_receivers_are_excluded_not_collided() {
        let mut m = spatial_line();
        let mut rng = ScriptRng::new(vec![0]);
        // Only A transmits: B hears it, C is out of range. No garbling
        // anywhere, so this is not a collision.
        m.enqueue(bc(0, 50), &mut rng);
        let (at, ep) = m.next_resolution(SimTime::ZERO).unwrap();
        let end = m.resolve(at, ep).unwrap();
        let done = m.finish_tx(end);
        assert!(!done[0].collision);
        assert_eq!(done[0].reception, Reception::Subset(vec![1]));
    }

    #[test]
    fn partitioned_islands_transmit_concurrently_without_garbling() {
        let spec = TopologySpec::Partition(
            PartitionSchedule::new().split_at(SimTime::ZERO, vec![vec![0, 1], vec![2, 3]]),
        );
        let mut m = Medium::with_topology(4, PhyConfig::default(), &spec, 0);
        let mut rng = ScriptRng::new(vec![0]);
        m.enqueue(bc(0, 100), &mut rng);
        let (at0, ep0) = m.next_resolution(SimTime::ZERO).unwrap();
        let end0 = m.resolve(at0, ep0).unwrap();
        // Node 2 lives in the other island: same instant, no deferral.
        m.enqueue(bc(2, 100), &mut rng);
        let (at2, ep2) = m.next_resolution(at0).unwrap();
        assert!(at2 < end0);
        let end2 = m.resolve(at2, ep2).unwrap();
        let done0 = m.finish_tx(end0);
        assert!(!done0[0].collision, "islands do not interfere");
        assert_eq!(done0[0].reception, Reception::Subset(vec![1]));
        let done2 = m.finish_tx(end2);
        assert!(!done2[0].collision);
        assert_eq!(done2[0].reception, Reception::Subset(vec![3]));
    }

    #[test]
    fn connectivity_snapshot_matches_partition() {
        let spec = TopologySpec::Partition(
            PartitionSchedule::new()
                .split_at(SimTime::from_millis(1), vec![vec![0, 1, 2], vec![3]])
                .heal_at(SimTime::from_millis(9)),
        );
        let mut m = Medium::with_topology(4, PhyConfig::default(), &spec, 0);
        let mid = m.connectivity(SimTime::from_millis(5), 4);
        assert_eq!(mid.reachable, vec![2, 2, 2, 0]);
        assert_eq!(mid.component, vec![0, 0, 0, 3]);
        let healed = m.connectivity(SimTime::from_millis(9), 4);
        assert_eq!(healed.reachable, vec![3; 4]);
        assert_eq!(healed.component, vec![0; 4]);
        // The legacy engine reports full connectivity.
        let mut l = Medium::new_legacy(4, PhyConfig::default());
        assert_eq!(l.connectivity(SimTime::ZERO, 4), healed);
    }

    /// Randomized lockstep differential: both single-domain engines,
    /// driven by an identical operation script, must agree on every
    /// observable (resolution instants, epochs, receptions, RNG
    /// consumption) at every step.
    #[test]
    fn single_domain_engines_agree_on_random_scripts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..20u64 {
            let mut script = StdRng::seed_from_u64(seed);
            let n = 2 + (seed as usize % 4);
            let phy = PhyConfig::default();
            let mut a = Medium::new_legacy(n, phy);
            let mut b = Medium::with_topology(n, phy, &TopologySpec::SingleDomain, seed);
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xdead);
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0xdead);
            let mut now = SimTime::ZERO;
            for _ in 0..200 {
                match script.gen_range(0..5u8) {
                    0 | 1 => {
                        let src = script.gen_range(0..n);
                        let frame = if script.gen_bool(0.7) {
                            bc(src, script.gen_range(10..200))
                        } else {
                            let dst = (src + script.gen_range(1..n)) % n;
                            uc(src, dst, script.gen_range(10..200))
                        };
                        assert_eq!(
                            a.enqueue(frame.clone(), &mut rng_a),
                            b.enqueue(frame, &mut rng_b)
                        );
                    }
                    2 | 3 => {
                        let ra = a.next_resolution(now);
                        let rb = b.next_resolution(now);
                        assert_eq!(ra, rb, "seed {seed} diverged at {now}");
                        if let Some((at, epoch)) = ra {
                            let ea = a.resolve(at, epoch);
                            let eb = b.resolve(at, epoch);
                            assert_eq!(ea, eb);
                            if let Some(end) = ea {
                                now = end;
                                let da = a.finish_tx(end);
                                let db = b.finish_tx(end);
                                assert_eq!(da.len(), db.len());
                                for (ta, tb) in da.iter().zip(&db) {
                                    assert_eq!(ta.node, tb.node);
                                    assert_eq!(ta.collision, tb.collision);
                                    assert_eq!(ta.reception, tb.reception);
                                    assert_eq!(ta.attempt, tb.attempt);
                                }
                                for t in da {
                                    a.after_head_done(t.node, &mut rng_a);
                                    b.after_head_done(t.node, &mut rng_b);
                                }
                            }
                        }
                    }
                    _ => {
                        let node = script.gen_range(0..n);
                        assert_eq!(a.clear_queue(node), b.clear_queue(node));
                    }
                }
                assert_eq!(a.epoch(), b.epoch(), "epoch streams diverged");
            }
            // The backing RNGs must have been consumed identically.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }
}
