//! Simulated time.
//!
//! The simulator keeps virtual time as nanoseconds since the start of the
//! run. Instants are [`SimTime`]; durations are [`std::time::Duration`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in simulated time (nanoseconds since simulation start).
///
/// # Example
///
/// ```
/// use wireless_net::time::SimTime;
/// use std::time::Duration;
/// let t = SimTime::ZERO + Duration::from_micros(50);
/// assert_eq!(t.as_micros(), 50);
/// assert_eq!(t - SimTime::ZERO, Duration::from_micros(50));
/// ```
#[derive(Clone, Copy, Debug, Default, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds since simulation start.
    pub fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Constructs from microseconds since simulation start.
    pub fn from_micros(micros: u64) -> SimTime {
        SimTime(micros * 1_000)
    }

    /// Constructs from milliseconds since simulation start.
    pub fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference as a [`Duration`]; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        Duration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7000);
        assert_eq!(SimTime::from_nanos(1_500).as_micros(), 1);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_millis(1) + Duration::from_micros(500);
        assert_eq!(t.as_micros(), 1500);
        let mut u = SimTime::ZERO;
        u += Duration::from_nanos(42);
        assert_eq!(u.as_nanos(), 42);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(5) < SimTime::from_micros(6));
        assert_eq!(SimTime::ZERO, SimTime::from_nanos(0));
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a.saturating_since(b), Duration::from_micros(6));
        assert_eq!(b.saturating_since(a), Duration::ZERO);
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
