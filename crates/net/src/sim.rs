//! The discrete-event simulator: nodes, applications, event loop.
//!
//! A [`Simulator`] owns `n` nodes, each running one [`Application`]
//! (a protocol adapter), a shared [`Medium`], and an injected
//! [`FaultModel`]. Everything is deterministic given the seed.
//!
//! Applications are *sans-io callbacks*: they react to `on_start`,
//! `on_timer`, and `on_frame`, and issue commands through [`NodeCtx`]
//! (broadcast, unicast, timers, CPU charging, decisions). CPU charges
//! accumulate into a per-node virtual clock — a node whose CPU is busy
//! (e.g. verifying an RSA signature) receives later deliveries later,
//! exactly the effect the paper's cost argument rests on.

use crate::fault::{DeliveryCtx, FaultModel, NoFaults};
use crate::frame::{Addressing, Frame, NodeId, ReceivedFrame};
use crate::medium::Medium;
use crate::stats::NetStats;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// A protocol running on one simulated node.
///
/// Callbacks receive a [`NodeCtx`] for issuing commands. All methods are
/// invoked with the node's CPU considered free; any CPU charged via
/// [`NodeCtx::charge_cpu`] delays the node's subsequent events.
pub trait Application {
    /// Invoked once when the node starts (at its start-jitter offset).
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>);

    /// Invoked when a frame is delivered to this node.
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame);

    /// Invoked when a timer set via [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64);

    /// Invoked when the MAC gives up on a unicast frame after exhausting
    /// its retry limit. Default: ignore (UDP semantics).
    fn on_unicast_failed(&mut self, _ctx: &mut NodeCtx<'_>, _dst: NodeId, _payload: Bytes) {}

    /// Downcast hook for post-run inspection (`Simulator::app`). Return
    /// `self` to allow tests and experiment drivers to reach protocol
    /// internals.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// A no-op application: never sends, never reacts. Used for crashed
/// nodes (the fail-stop fault load) and as an internal placeholder.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashedApp;

impl Application for CrashedApp {
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
    fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
}

enum Command {
    Broadcast { payload: Bytes, overhead: usize },
    Unicast { dst: NodeId, payload: Bytes, overhead: usize },
    SetTimer { delay: Duration, id: u64 },
    Decide { value: bool },
}

/// Command interface handed to application callbacks.
pub struct NodeCtx<'a> {
    node: NodeId,
    now: SimTime,
    charged: Duration,
    commands: Vec<Command>,
    rng: &'a mut StdRng,
}

impl<'a> NodeCtx<'a> {
    /// This node's identifier.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulated time (when this callback logically runs).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-node random source.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut *self.rng
    }

    /// Flips an unbiased local coin — the `coin_i()` primitive of the
    /// paper's Algorithm 1.
    pub fn coin(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// Charges `cost` of CPU time to this node; effects of this callback
    /// (sends, timers, decisions) take place after the charge.
    pub fn charge_cpu(&mut self, cost: Duration) {
        self.charged += cost;
    }

    /// Broadcasts `payload` as a single link-layer broadcast frame with
    /// `overhead` bytes of transport headers (UDP broadcast: one frame
    /// reaches every node in range — the paper's key efficiency lever).
    ///
    /// The sender also receives its own broadcast via OS loopback,
    /// matching `broadcast(m)` delivering to every process *including
    /// itself* (paper §3).
    pub fn broadcast(&mut self, payload: Bytes, overhead: usize) {
        self.commands.push(Command::Broadcast { payload, overhead });
    }

    /// Sends `payload` to `dst` as a unicast frame (ACKed, retried by the
    /// MAC). Sends to self are looped back without touching the radio.
    pub fn unicast(&mut self, dst: NodeId, payload: Bytes, overhead: usize) {
        self.commands.push(Command::Unicast {
            dst,
            payload,
            overhead,
        });
    }

    /// Arms a one-shot timer that fires `delay` after this callback's
    /// effects apply, delivering `id` to [`Application::on_timer`].
    pub fn set_timer(&mut self, delay: Duration, id: u64) {
        self.commands.push(Command::SetTimer { delay, id });
    }

    /// Records this node's consensus decision. Only the first call per
    /// node is recorded (further decisions in the protocol are no-ops,
    /// per Algorithm 1's write-once `decision_i`).
    pub fn decide(&mut self, value: bool) {
        self.commands.push(Command::Decide { value });
    }
}

/// A recorded consensus decision.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Decision {
    /// When the node decided.
    pub time: SimTime,
    /// The decided binary value.
    pub value: bool,
}

#[derive(Debug)]
enum EventKind {
    Start(NodeId),
    Timer { node: NodeId, id: u64 },
    EnqueueTx(Frame),
    Deliver { node: NodeId, frame: ReceivedFrame },
    ContentionResolve { epoch: u64 },
    TxEnd,
    MacFailure { node: NodeId, dst: NodeId, payload: Bytes },
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// PHY/MAC parameters.
    pub phy: crate::config::PhyConfig,
    /// Master seed; all node RNGs and the MAC backoff RNG derive from it.
    pub seed: u64,
    /// Each node's `on_start` fires at a uniform offset in
    /// `[0, start_jitter]`, modelling the arrival spread of the signaling
    /// machine's trigger broadcast (paper §7.2).
    pub start_jitter: Duration,
    /// Number of events retained by the network trace (0 = tracing off,
    /// the default; see [`crate::trace`]).
    pub trace_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            phy: crate::config::PhyConfig::default(),
            seed: 0,
            start_jitter: Duration::from_micros(500),
            trace_capacity: 0,
        }
    }
}

/// Outcome of a bounded simulator run.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum RunStatus {
    /// The stop predicate was satisfied.
    Satisfied,
    /// The time limit was reached first.
    TimeLimit,
    /// The event queue drained (deadlock or natural quiescence).
    Quiescent,
}

/// The discrete-event simulator. See the module docs.
pub struct Simulator {
    cfg: SimConfig,
    time: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    apps: Vec<Box<dyn Application>>,
    node_rngs: Vec<StdRng>,
    busy_until: Vec<SimTime>,
    started: Vec<bool>,
    start_times: Vec<SimTime>,
    decisions: Vec<Option<Decision>>,
    medium: Medium,
    mac_rng: StdRng,
    fault: Box<dyn FaultModel>,
    stats: NetStats,
    trace: Trace,
    loopback_latency: Duration,
}

impl Simulator {
    /// Creates a simulator over `apps` (one application per node) with
    /// the given fault model.
    pub fn new(cfg: SimConfig, fault: Box<dyn FaultModel>, apps: Vec<Box<dyn Application>>) -> Self {
        let n = apps.len();
        assert!(n > 0, "at least one node required");
        let mut boot_rng = StdRng::seed_from_u64(cfg.seed ^ 0x0b00_7a11);
        let node_rngs = (0..n)
            .map(|_| StdRng::seed_from_u64(boot_rng.gen()))
            .collect();
        let mac_rng = StdRng::seed_from_u64(boot_rng.gen());
        let mut sim = Simulator {
            time: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            node_rngs,
            busy_until: vec![SimTime::ZERO; n],
            started: vec![false; n],
            start_times: vec![SimTime::ZERO; n],
            decisions: vec![None; n],
            medium: Medium::new(n, cfg.phy),
            mac_rng,
            fault,
            stats: NetStats::new(n),
            trace: Trace::new(cfg.trace_capacity),
            loopback_latency: Duration::from_micros(5),
            apps,
            cfg,
        };
        let jitter_ns = sim.cfg.start_jitter.as_nanos() as u64;
        for node in 0..n {
            let offset = if jitter_ns == 0 {
                0
            } else {
                boot_rng.gen_range(0..=jitter_ns)
            };
            let at = SimTime::from_nanos(offset);
            sim.start_times[node] = at;
            sim.push(at, EventKind::Start(node));
        }
        sim
    }

    /// Convenience constructor with no injected faults.
    pub fn without_faults(cfg: SimConfig, apps: Vec<Box<dyn Application>>) -> Self {
        Self::new(cfg, Box::new(NoFaults), apps)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.apps.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Per-node start instants (after jitter).
    pub fn start_times(&self) -> &[SimTime] {
        &self.start_times
    }

    /// Per-node recorded decisions.
    pub fn decisions(&self) -> &[Option<Decision>] {
        &self.decisions
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The network trace (empty unless `SimConfig::trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Immutable access to an application, for post-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn app(&self, node: NodeId) -> &dyn Application {
        self.apps[node].as_ref()
    }

    /// Number of nodes that have decided.
    pub fn decided_count(&self) -> usize {
        self.decisions.iter().flatten().count()
    }

    /// Processes a single event. Returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.time, "time must be monotonic");
        self.time = ev.at;
        match ev.kind {
            EventKind::Start(node) => {
                self.started[node] = true;
                self.dispatch(node, |app, ctx| app.on_start(ctx));
            }
            EventKind::Timer { node, id } => {
                self.dispatch_gated(node, ev.at, EventKind::Timer { node, id }, |app, ctx| {
                    app.on_timer(ctx, id)
                });
            }
            EventKind::Deliver { node, frame } => {
                // Defer to when the node's CPU is free.
                if self.busy_until[node] > ev.at {
                    let at = self.busy_until[node];
                    self.push(at, EventKind::Deliver { node, frame });
                } else {
                    self.stats.deliveries += 1;
                    self.stats.per_node_rx[node] += 1;
                    self.dispatch(node, move |app, ctx| app.on_frame(ctx, frame));
                }
            }
            EventKind::EnqueueTx(frame) => {
                let node = frame.src;
                if !self.medium.enqueue(frame, &mut self.mac_rng) {
                    self.stats.queue_drops += 1;
                    self.trace.record(self.time, TraceEvent::QueueDrop { node });
                }
                self.reschedule_contention();
            }
            EventKind::ContentionResolve { epoch } => {
                if let Some(end) = self.medium.resolve(ev.at, epoch) {
                    self.push(end, EventKind::TxEnd);
                }
                // Stale events need no rescheduling: whatever bumped the
                // epoch also rescheduled.
            }
            EventKind::TxEnd => {
                self.handle_tx_end(ev.at);
            }
            EventKind::MacFailure { node, dst, payload } => {
                self.dispatch(node, move |app, ctx| {
                    app.on_unicast_failed(ctx, dst, payload)
                });
            }
        }
        true
    }

    /// Runs until `pred(self)` holds, the time limit passes, or the event
    /// queue drains.
    pub fn run_until(
        &mut self,
        limit: SimTime,
        mut pred: impl FnMut(&Simulator) -> bool,
    ) -> RunStatus {
        loop {
            if pred(self) {
                return RunStatus::Satisfied;
            }
            match self.queue.peek() {
                None => return RunStatus::Quiescent,
                Some(Reverse(ev)) if ev.at > limit => return RunStatus::TimeLimit,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs until at least `k` nodes have decided (or limit/quiescence).
    pub fn run_until_k_decided(&mut self, k: usize, limit: SimTime) -> RunStatus {
        self.run_until(limit, |sim| sim.decided_count() >= k)
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    /// Dispatches a callback, deferring the whole event if the node's CPU
    /// is still busy (used for timers, whose `EventKind` can be cheaply
    /// re-queued).
    fn dispatch_gated(
        &mut self,
        node: NodeId,
        at: SimTime,
        requeue: EventKind,
        run: impl FnOnce(&mut dyn Application, &mut NodeCtx<'_>),
    ) {
        if self.busy_until[node] > at {
            let t = self.busy_until[node];
            self.push(t, requeue);
        } else {
            self.dispatch(node, run);
        }
    }

    fn dispatch(
        &mut self,
        node: NodeId,
        run: impl FnOnce(&mut dyn Application, &mut NodeCtx<'_>),
    ) {
        let start = self.time.max(self.busy_until[node]);
        let mut ctx = NodeCtx {
            node,
            now: start,
            charged: Duration::ZERO,
            commands: Vec::new(),
            rng: &mut self.node_rngs[node],
        };
        let mut app: Box<dyn Application> =
            std::mem::replace(&mut self.apps[node], Box::new(CrashedApp));
        run(app.as_mut(), &mut ctx);
        self.apps[node] = app;
        let done = start + ctx.charged;
        let commands = std::mem::take(&mut ctx.commands);
        drop(ctx);
        self.busy_until[node] = done;
        for cmd in commands {
            self.apply_command(node, done, cmd);
        }
    }

    fn apply_command(&mut self, node: NodeId, at: SimTime, cmd: Command) {
        match cmd {
            Command::Broadcast { payload, overhead } => {
                self.stats.broadcast_sends += 1;
                self.stats.payload_bytes_sent += payload.len() as u64;
                // OS loopback: the sender hears its own broadcast without
                // using the radio.
                let loopback = ReceivedFrame {
                    src: node,
                    addressing: Addressing::Broadcast,
                    payload: payload.clone(),
                };
                self.stats.loopback_deliveries += 1;
                self.push(
                    at + self.loopback_latency,
                    EventKind::Deliver {
                        node,
                        frame: loopback,
                    },
                );
                let frame = Frame {
                    src: node,
                    addressing: Addressing::Broadcast,
                    payload,
                    transport_overhead: overhead,
                };
                self.push(at, EventKind::EnqueueTx(frame));
            }
            Command::Unicast {
                dst,
                payload,
                overhead,
            } => {
                self.stats.unicast_sends += 1;
                self.stats.payload_bytes_sent += payload.len() as u64;
                if dst == node {
                    let frame = ReceivedFrame {
                        src: node,
                        addressing: Addressing::Unicast(node),
                        payload,
                    };
                    self.stats.loopback_deliveries += 1;
                    self.push(
                        at + self.loopback_latency,
                        EventKind::Deliver { node, frame },
                    );
                } else {
                    let frame = Frame {
                        src: node,
                        addressing: Addressing::Unicast(dst),
                        payload,
                        transport_overhead: overhead,
                    };
                    self.push(at, EventKind::EnqueueTx(frame));
                }
            }
            Command::SetTimer { delay, id } => {
                self.push(at + delay, EventKind::Timer { node, id });
            }
            Command::Decide { value } => {
                if self.decisions[node].is_none() {
                    self.decisions[node] = Some(Decision { time: at, value });
                    self.trace.record(at, TraceEvent::Decide { node, value });
                }
            }
        }
    }

    fn handle_tx_end(&mut self, now: SimTime) {
        let completed = self.medium.finish_tx(now);
        self.stats.channel_busy += self.medium.last_busy();
        if !self.trace.is_disabled() {
            if completed.len() > 1 {
                self.trace.record(
                    now,
                    TraceEvent::Collision {
                        nodes: completed.iter().map(|t| t.node).collect(),
                    },
                );
            }
            for tx in &completed {
                self.trace.record(
                    now,
                    TraceEvent::TxStart {
                        node: tx.node,
                        broadcast: tx.frame.is_broadcast(),
                        bytes: tx.frame.mac_payload_len(),
                    },
                );
            }
        }
        let prop = self.cfg.phy.propagation;
        for tx in completed {
            self.stats.per_node_tx[tx.node] += 1;
            match tx.frame.addressing {
                Addressing::Broadcast => {
                    self.stats.broadcast_frames_sent += 1;
                    if tx.collision {
                        self.stats.collisions += 1;
                        // Group-addressed frames are never retried.
                        self.medium.after_head_done(tx.node, &mut self.mac_rng);
                        continue;
                    }
                    for rx in 0..self.n() {
                        if rx == tx.node {
                            continue; // radio does not hear itself; loopback handled at send
                        }
                        let dctx = DeliveryCtx {
                            now,
                            src: tx.node,
                            dst: rx,
                            broadcast: true,
                        };
                        if self.fault.drops(&dctx) {
                            self.stats.fault_drops += 1;
                            self.trace
                                .record(now, TraceEvent::FaultDrop { src: tx.node, dst: rx });
                            continue;
                        }
                        let frame = ReceivedFrame {
                            src: tx.node,
                            addressing: Addressing::Broadcast,
                            payload: tx.frame.payload.clone(),
                        };
                        self.trace.record(
                            now,
                            TraceEvent::Deliver {
                                src: tx.node,
                                dst: rx,
                                bytes: frame.payload.len(),
                            },
                        );
                        self.push(now + prop, EventKind::Deliver { node: rx, frame });
                    }
                    self.medium.after_head_done(tx.node, &mut self.mac_rng);
                }
                Addressing::Unicast(dst) => {
                    self.stats.unicast_frames_sent += 1;
                    let delivered = if tx.collision {
                        self.stats.collisions += 1;
                        false
                    } else {
                        let dctx = DeliveryCtx {
                            now,
                            src: tx.node,
                            dst,
                            broadcast: false,
                        };
                        if self.fault.drops(&dctx) {
                            self.stats.fault_drops += 1;
                            false
                        } else {
                            true
                        }
                    };
                    if delivered {
                        let frame = ReceivedFrame {
                            src: tx.node,
                            addressing: Addressing::Unicast(dst),
                            payload: tx.frame.payload.clone(),
                        };
                        self.push(now + prop, EventKind::Deliver { node: dst, frame });
                        self.medium.after_head_done(tx.node, &mut self.mac_rng);
                    } else {
                        // No ACK: MAC retransmits with a doubled window,
                        // or gives up.
                        let payload = tx.frame.payload.clone();
                        if !self.medium.retry_unicast(
                            tx.node,
                            tx.frame,
                            tx.attempt,
                            &mut self.mac_rng,
                        ) {
                            self.stats.mac_failures += 1;
                            self.push(
                                now,
                                EventKind::MacFailure {
                                    node: tx.node,
                                    dst,
                                    payload,
                                },
                            );
                        }
                    }
                }
            }
        }
        self.reschedule_contention();
    }

    fn reschedule_contention(&mut self) {
        if let Some((at, epoch)) = self.medium.next_resolution(self.time) {
            self.push(at, EventKind::ContentionResolve { epoch });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{IidLoss, TargetedLoss};
    use parking_lot_free_cell::Shared;

    /// Minimal shared-state helper so tests can observe app internals
    /// after the run without `parking_lot` (keeps this crate's dep set
    /// small).
    mod parking_lot_free_cell {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        pub struct Shared<T>(pub Rc<RefCell<T>>);

        impl<T: Default> Shared<T> {
            pub fn new() -> Self {
                Shared(Rc::new(RefCell::new(T::default())))
            }
        }
    }

    /// Broadcasts one message at start; records everything it receives.
    struct Chatter {
        sent: bool,
        received: Shared<Vec<(NodeId, Vec<u8>)>>,
    }

    impl Application for Chatter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if !self.sent {
                self.sent = true;
                let msg = format!("hello from {}", ctx.node());
                ctx.broadcast(Bytes::from(msg.into_bytes()), 36);
            }
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
            self.received
                .0
                .borrow_mut()
                .push((frame.src, frame.payload.to_vec()));
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
    }

    fn chatter_sim(n: usize, seed: u64) -> (Simulator, Vec<Shared<Vec<(NodeId, Vec<u8>)>>>) {
        let cells: Vec<_> = (0..n).map(|_| Shared::<Vec<(NodeId, Vec<u8>)>>::new()).collect();
        let apps: Vec<Box<dyn Application>> = cells
            .iter()
            .map(|c| {
                Box::new(Chatter {
                    sent: false,
                    received: c.clone(),
                }) as Box<dyn Application>
            })
            .collect();
        let cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        (Simulator::without_faults(cfg, apps), cells)
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        // Seed chosen so CSMA backoffs separate the four simultaneous
        // broadcasts; colliding broadcasts are (correctly) lost.
        let (mut sim, cells) = chatter_sim(4, 2);
        let status = sim.run_until(SimTime::from_millis(100), |_| false);
        assert_eq!(status, RunStatus::Quiescent);
        for (i, cell) in cells.iter().enumerate() {
            let got = cell.0.borrow();
            assert_eq!(got.len(), 4, "node {i} should hear all 4 broadcasts");
            let mut sources: Vec<_> = got.iter().map(|(s, _)| *s).collect();
            sources.sort_unstable();
            assert_eq!(sources, vec![0, 1, 2, 3]);
        }
        assert_eq!(sim.stats().broadcast_frames_sent, 4);
        assert_eq!(sim.stats().loopback_deliveries, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut sim, cells) = chatter_sim(5, seed);
            sim.run_until(SimTime::from_millis(100), |_| false);
            let out: Vec<_> = cells.iter().map(|c| c.0.borrow().clone()).collect();
            (out, sim.now())
        };
        assert_eq!(run(7), run(7));
    }

    /// Sends a unicast to node 1 at start.
    struct UniSender;
    impl Application for UniSender {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if ctx.node() == 0 {
                ctx.unicast(1, Bytes::from_static(b"direct"), 48);
            }
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
    }

    #[test]
    fn unicast_retries_through_loss_then_delivers() {
        // 60% loss: MAC ARQ (7 retries) almost surely gets it through.
        let cfg = SimConfig {
            seed: 3,
            ..SimConfig::default()
        };
        let apps: Vec<Box<dyn Application>> =
            vec![Box::new(UniSender), Box::new(UniSender), Box::new(UniSender)];
        let mut sim = Simulator::new(cfg, Box::new(IidLoss::new(0.6, 5)), apps);
        sim.run_until(SimTime::from_millis(500), |_| false);
        assert!(sim.stats().unicast_frames_sent >= 1);
        assert_eq!(sim.stats().deliveries, 1, "exactly one app delivery");
        assert!(
            sim.stats().unicast_frames_sent > 1 || sim.stats().fault_drops == 0,
            "with drops there must be retransmissions"
        );
    }

    /// Counts MAC failures reported to the app.
    struct FailureCounter {
        failures: Shared<Vec<NodeId>>,
    }
    impl Application for FailureCounter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if ctx.node() == 0 {
                ctx.unicast(1, Bytes::from_static(b"doomed"), 48);
            }
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
        fn on_unicast_failed(&mut self, _ctx: &mut NodeCtx<'_>, dst: NodeId, _payload: Bytes) {
            self.failures.0.borrow_mut().push(dst);
        }
    }

    #[test]
    fn unicast_to_black_hole_reports_mac_failure() {
        let cell = Shared::<Vec<NodeId>>::new();
        let apps: Vec<Box<dyn Application>> = vec![
            Box::new(FailureCounter {
                failures: cell.clone(),
            }),
            Box::new(CrashedApp),
        ];
        let cfg = SimConfig {
            seed: 9,
            ..SimConfig::default()
        };
        // All deliveries to node 1 dropped.
        let fault = TargetedLoss::new(vec![], vec![1], 1.0, 2);
        let mut sim = Simulator::new(cfg, Box::new(fault), apps);
        sim.run_until(SimTime::from_millis(500), |_| false);
        assert_eq!(sim.stats().mac_failures, 1);
        assert_eq!(cell.0.borrow().as_slice(), &[1]);
        // 1 initial + retry_limit retransmissions.
        assert_eq!(sim.stats().unicast_frames_sent as u32, 1 + sim_retry_limit());
    }

    fn sim_retry_limit() -> u32 {
        crate::config::PhyConfig::default().retry_limit
    }

    /// Charges heavy CPU on its first frame; records delivery times.
    struct SlowCpu {
        times: Shared<Vec<u64>>,
    }
    impl Application for SlowCpu {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if ctx.node() == 1 {
                // Two back-to-back broadcasts arrive close together.
                ctx.broadcast(Bytes::from_static(b"one"), 36);
                ctx.broadcast(Bytes::from_static(b"two"), 36);
            }
        }
        fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {
            self.times.0.borrow_mut().push(ctx.now().as_micros());
            ctx.charge_cpu(Duration::from_millis(10));
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
    }

    #[test]
    fn cpu_charge_delays_subsequent_deliveries() {
        let cell = Shared::<Vec<u64>>::new();
        let apps: Vec<Box<dyn Application>> = vec![
            Box::new(SlowCpu {
                times: cell.clone(),
            }),
            Box::new(SlowCpu {
                times: Shared::<Vec<u64>>::new(),
            }),
        ];
        let cfg = SimConfig {
            seed: 4,
            start_jitter: Duration::ZERO,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        sim.run_until(SimTime::from_millis(200), |_| false);
        let times = cell.0.borrow();
        assert_eq!(times.len(), 2, "node 0 hears both broadcasts");
        // Second delivery waits out the 10 ms CPU charge.
        assert!(
            times[1] >= times[0] + 10_000,
            "second delivery at {} must be ≥ first {} + 10ms",
            times[1],
            times[0]
        );
    }

    /// Decides at start.
    struct Decider(bool);
    impl Application for Decider {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.decide(self.0);
            ctx.decide(!self.0); // write-once: must be ignored
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
    }

    #[test]
    fn decisions_recorded_write_once() {
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Decider(true)), Box::new(Decider(false))];
        let mut sim = Simulator::without_faults(SimConfig::default(), apps);
        let status = sim.run_until_k_decided(2, SimTime::from_millis(10));
        assert_eq!(status, RunStatus::Satisfied);
        assert_eq!(sim.decisions()[0].map(|d| d.value), Some(true));
        assert_eq!(sim.decisions()[1].map(|d| d.value), Some(false));
    }

    /// Re-arming periodic timer.
    struct Ticker {
        fired: Shared<Vec<u64>>,
    }
    impl Application for Ticker {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration::from_millis(10), 1);
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
            assert_eq!(timer, 1);
            self.fired.0.borrow_mut().push(ctx.now().as_millis());
            if self.fired.0.borrow().len() < 3 {
                ctx.set_timer(Duration::from_millis(10), 1);
            }
        }
    }

    #[test]
    fn timers_fire_and_rearm() {
        let cell = Shared::<Vec<u64>>::new();
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Ticker {
            fired: cell.clone(),
        })];
        let cfg = SimConfig {
            start_jitter: Duration::ZERO,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        let status = sim.run_until(SimTime::from_millis(1000), |_| false);
        assert_eq!(status, RunStatus::Quiescent);
        assert_eq!(cell.0.borrow().as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn time_limit_status() {
        let cell = Shared::<Vec<u64>>::new();
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Ticker {
            fired: cell.clone(),
        })];
        let cfg = SimConfig {
            start_jitter: Duration::ZERO,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        let status = sim.run_until(SimTime::from_millis(15), |_| false);
        assert_eq!(status, RunStatus::TimeLimit);
        assert_eq!(cell.0.borrow().as_slice(), &[10]);
    }

    #[test]
    fn trace_captures_network_events() {
        let (cells, apps): (Vec<_>, Vec<Box<dyn Application>>) = (0..2)
            .map(|_| {
                let cell = Shared::<Vec<(NodeId, Vec<u8>)>>::new();
                let app = Box::new(Chatter {
                    sent: false,
                    received: cell.clone(),
                }) as Box<dyn Application>;
                (cell, app)
            })
            .unzip();
        drop(cells);
        let cfg = SimConfig {
            seed: 1,
            trace_capacity: 64,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        sim.run_until(SimTime::from_millis(100), |_| false);
        assert!(!sim.trace().is_empty());
        let log = sim.trace().render();
        assert!(log.contains("tx-start"), "{log}");
        assert!(log.contains("deliver"), "{log}");
    }

    #[test]
    fn trace_disabled_by_default() {
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Chatter {
            sent: false,
            received: Shared::<Vec<(NodeId, Vec<u8>)>>::new(),
        })];
        let mut sim = Simulator::without_faults(SimConfig::default(), apps);
        sim.run_until(SimTime::from_millis(50), |_| false);
        assert!(sim.trace().is_empty());
    }

    #[test]
    fn self_unicast_loops_back() {
        struct SelfSender {
            got: Shared<Vec<u8>>,
        }
        impl Application for SelfSender {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.unicast(ctx.node(), Bytes::from_static(b"me"), 48);
            }
            fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
                self.got.0.borrow_mut().extend_from_slice(&frame.payload);
            }
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
        }
        let cell = Shared::<Vec<u8>>::new();
        let apps: Vec<Box<dyn Application>> = vec![Box::new(SelfSender { got: cell.clone() })];
        let mut sim = Simulator::without_faults(SimConfig::default(), apps);
        sim.run_until(SimTime::from_millis(10), |_| false);
        assert_eq!(cell.0.borrow().as_slice(), b"me");
        assert_eq!(sim.stats().unicast_frames_sent, 0, "radio untouched");
    }
}
