//! The discrete-event simulator: nodes, applications, event loop.
//!
//! A [`Simulator`] owns `n` nodes, each running one [`Application`]
//! (a protocol adapter), a shared [`Medium`], and an injected
//! [`FaultModel`]. Everything is deterministic given the seed.
//!
//! Applications are *sans-io callbacks*: they react to `on_start`,
//! `on_timer`, and `on_frame`, and issue commands through [`NodeCtx`]
//! (broadcast, unicast, timers, CPU charging, decisions). CPU charges
//! accumulate into a per-node virtual clock — a node whose CPU is busy
//! (e.g. verifying an RSA signature) receives later deliveries later,
//! exactly the effect the paper's cost argument rests on.

use crate::fault::{CrashSchedule, CrashSpec, CrashTrigger, DeliveryCtx, FaultModel, NoFaults};
use crate::frame::{Addressing, Frame, NodeId, ReceivedFrame};
use crate::medium::{CompletedTx, Medium};
use crate::queue::EventQueue;
use crate::stats::NetStats;
use crate::supervise::{AppProgress, NodeProgress, StallReport};
use crate::time::SimTime;
use crate::topology::TopologySpec;
use crate::trace::{Trace, TraceEvent};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::Duration;

/// A protocol running on one simulated node.
///
/// Callbacks receive a [`NodeCtx`] for issuing commands. All methods are
/// invoked with the node's CPU considered free; any CPU charged via
/// [`NodeCtx::charge_cpu`] delays the node's subsequent events.
pub trait Application {
    /// Invoked once when the node starts (at its start-jitter offset).
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>);

    /// Invoked when a frame is delivered to this node.
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: ReceivedFrame);

    /// Invoked when a timer set via [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64);

    /// Invoked when the MAC gives up on a unicast frame after exhausting
    /// its retry limit. Default: ignore (UDP semantics).
    fn on_unicast_failed(&mut self, _ctx: &mut NodeCtx<'_>, _dst: NodeId, _payload: Bytes) {}

    /// Downcast hook for post-run inspection (`Simulator::app`). Return
    /// `self` to allow tests and experiment drivers to reach protocol
    /// internals.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Progress probe for stall diagnostics: the protocol phase/round
    /// and whether the engine decided. Applications that implement this
    /// show up with real numbers in [`StallReport`]s and drive the
    /// simulator's last-global-progress clock; the default (`None`)
    /// renders as unknown. Must be cheap — the simulator polls it after
    /// every callback.
    fn progress(&self) -> Option<AppProgress> {
        None
    }

    /// Resets the application to its initial state — invoked when a
    /// [`CrashSchedule`] rejoins the node, modelling a process restart
    /// with fresh in-memory state (`on_start` follows immediately).
    /// The default keeps the old state, i.e. a rejoin behaves like a
    /// long partition rather than a restart.
    fn reset(&mut self) {}
}

/// A no-op application: never sends, never reacts. Used for crashed
/// nodes (the fail-stop fault load) and as an internal placeholder.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashedApp;

impl Application for CrashedApp {
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
    fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
}

enum Command {
    Broadcast { payload: Bytes, overhead: usize },
    Unicast { dst: NodeId, payload: Bytes, overhead: usize },
    SetTimer { delay: Duration, id: u64 },
    Decide { value: bool },
}

/// Command interface handed to application callbacks.
pub struct NodeCtx<'a> {
    node: NodeId,
    now: SimTime,
    charged: Duration,
    commands: Vec<Command>,
    rng: &'a mut StdRng,
}

impl<'a> NodeCtx<'a> {
    /// This node's identifier.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulated time (when this callback logically runs).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-node random source.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut *self.rng
    }

    /// Flips an unbiased local coin — the `coin_i()` primitive of the
    /// paper's Algorithm 1.
    pub fn coin(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// Charges `cost` of CPU time to this node; effects of this callback
    /// (sends, timers, decisions) take place after the charge.
    pub fn charge_cpu(&mut self, cost: Duration) {
        self.charged += cost;
    }

    /// Broadcasts `payload` as a single link-layer broadcast frame with
    /// `overhead` bytes of transport headers (UDP broadcast: one frame
    /// reaches every node in range — the paper's key efficiency lever).
    ///
    /// The sender also receives its own broadcast via OS loopback,
    /// matching `broadcast(m)` delivering to every process *including
    /// itself* (paper §3).
    pub fn broadcast(&mut self, payload: Bytes, overhead: usize) {
        self.commands.push(Command::Broadcast { payload, overhead });
    }

    /// Sends `payload` to `dst` as a unicast frame (ACKed, retried by the
    /// MAC). Sends to self are looped back without touching the radio.
    pub fn unicast(&mut self, dst: NodeId, payload: Bytes, overhead: usize) {
        self.commands.push(Command::Unicast {
            dst,
            payload,
            overhead,
        });
    }

    /// Arms a one-shot timer that fires `delay` after this callback's
    /// effects apply, delivering `id` to [`Application::on_timer`].
    pub fn set_timer(&mut self, delay: Duration, id: u64) {
        self.commands.push(Command::SetTimer { delay, id });
    }

    /// Records this node's consensus decision. Only the first call per
    /// node is recorded (further decisions in the protocol are no-ops,
    /// per Algorithm 1's write-once `decision_i`).
    pub fn decide(&mut self, value: bool) {
        self.commands.push(Command::Decide { value });
    }
}

/// A recorded consensus decision.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Decision {
    /// When the node decided.
    pub time: SimTime,
    /// The decided binary value.
    pub value: bool,
}

#[derive(Debug)]
enum EventKind {
    Start(NodeId),
    /// `epoch` is the node's crash epoch at arming time: timers armed
    /// before a crash must never fire after it (or after a rejoin).
    Timer { node: NodeId, id: u64, epoch: u64 },
    EnqueueTx(Frame),
    Deliver { node: NodeId, frame: ReceivedFrame },
    ContentionResolve { epoch: u64 },
    TxEnd,
    MacFailure { node: NodeId, dst: NodeId, payload: Bytes },
    Crash(NodeId),
    Rejoin(NodeId),
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// PHY/MAC parameters.
    pub phy: crate::config::PhyConfig,
    /// Master seed; all node RNGs and the MAC backoff RNG derive from it.
    pub seed: u64,
    /// Each node's `on_start` fires at a uniform offset in
    /// `[0, start_jitter]`, modelling the arrival spread of the signaling
    /// machine's trigger broadcast (paper §7.2).
    pub start_jitter: Duration,
    /// Number of events retained by the network trace (0 = tracing off,
    /// the default; see [`crate::trace`]).
    pub trace_capacity: usize,
    /// Radio topology (who hears/senses whom); the default is the
    /// paper's single one-hop broadcast domain. Instantiated from
    /// `seed` by [`crate::topology::TopologySpec::build`].
    pub topology: TopologySpec,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            phy: crate::config::PhyConfig::default(),
            seed: 0,
            start_jitter: Duration::from_micros(500),
            trace_capacity: 0,
            topology: TopologySpec::SingleDomain,
        }
    }
}

/// Outcome of a bounded simulator run.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum RunStatus {
    /// The stop predicate was satisfied.
    Satisfied,
    /// The time limit was reached first.
    TimeLimit,
    /// The event queue drained (deadlock or natural quiescence).
    Quiescent,
}

/// The discrete-event simulator. See the module docs.
pub struct Simulator {
    cfg: SimConfig,
    time: SimTime,
    /// Pending events, ordered by `(at, seq)`; sequence numbers are
    /// assigned by the queue in push order (see [`crate::queue`]).
    queue: EventQueue<EventKind>,
    /// Recycled command buffer handed to each [`NodeCtx`], so steady-state
    /// dispatch allocates nothing.
    cmd_pool: Vec<Command>,
    /// Recycled buffer for [`Medium::finish_tx_into`].
    tx_buf: Vec<CompletedTx>,
    apps: Vec<Box<dyn Application>>,
    node_rngs: Vec<StdRng>,
    busy_until: Vec<SimTime>,
    started: Vec<bool>,
    start_times: Vec<SimTime>,
    decisions: Vec<Option<Decision>>,
    medium: Medium,
    mac_rng: StdRng,
    fault: Box<dyn FaultModel>,
    stats: NetStats,
    trace: Trace,
    loopback_latency: Duration,
    /// Crash/recovery state (all vectors are per-node).
    crash_down: Vec<bool>,
    crash_epoch: Vec<u64>,
    /// Specs not yet fired (phase triggers wait here; time triggers are
    /// parked here between scheduling and their `Crash` event).
    crash_pending: Vec<Option<CrashSpec>>,
    crash_describe: String,
    /// Simtime of the last global progress: any node's phase advance
    /// (per [`Application::progress`]) or any decision.
    last_progress: SimTime,
    last_phase: Vec<Option<u32>>,
    /// Count of `Some` entries in `decisions`, maintained incrementally
    /// so the `run_until_k_decided` predicate — evaluated before every
    /// event — is O(1) instead of an O(n) re-scan. Decisions are
    /// write-once and survive rejoins, so the counter only grows.
    decided: usize,
    /// Per-node high-water mark of [`AppProgress::store_bytes`],
    /// sampled in `poll_progress` after every callback.
    peak_store: Vec<usize>,
}

impl Simulator {
    /// Creates a simulator over `apps` (one application per node) with
    /// the given fault model.
    pub fn new(cfg: SimConfig, fault: Box<dyn FaultModel>, apps: Vec<Box<dyn Application>>) -> Self {
        let n = apps.len();
        assert!(n > 0, "at least one node required");
        let mut boot_rng = StdRng::seed_from_u64(cfg.seed ^ 0x0b00_7a11);
        let node_rngs = (0..n)
            .map(|_| StdRng::seed_from_u64(boot_rng.gen()))
            .collect();
        let mac_rng = StdRng::seed_from_u64(boot_rng.gen());
        let mut sim = Simulator {
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            cmd_pool: Vec::new(),
            tx_buf: Vec::new(),
            node_rngs,
            busy_until: vec![SimTime::ZERO; n],
            started: vec![false; n],
            start_times: vec![SimTime::ZERO; n],
            decisions: vec![None; n],
            medium: Medium::with_topology(n, cfg.phy, &cfg.topology, cfg.seed),
            mac_rng,
            fault,
            stats: NetStats::new(n),
            trace: Trace::new(cfg.trace_capacity),
            loopback_latency: Duration::from_micros(5),
            crash_down: vec![false; n],
            crash_epoch: vec![0; n],
            crash_pending: vec![None; n],
            crash_describe: "no crashes".into(),
            last_progress: SimTime::ZERO,
            last_phase: vec![None; n],
            decided: 0,
            peak_store: vec![0; n],
            apps,
            cfg,
        };
        let jitter_ns = sim.cfg.start_jitter.as_nanos() as u64;
        for node in 0..n {
            let offset = if jitter_ns == 0 {
                0
            } else {
                boot_rng.gen_range(0..=jitter_ns)
            };
            let at = SimTime::from_nanos(offset);
            sim.start_times[node] = at;
            sim.push(at, EventKind::Start(node));
        }
        sim
    }

    /// Convenience constructor with no injected faults.
    pub fn without_faults(cfg: SimConfig, apps: Vec<Box<dyn Application>>) -> Self {
        Self::new(cfg, Box::new(NoFaults), apps)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.apps.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Per-node start instants (after jitter).
    pub fn start_times(&self) -> &[SimTime] {
        &self.start_times
    }

    /// Per-node recorded decisions.
    pub fn decisions(&self) -> &[Option<Decision>] {
        &self.decisions
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The network trace (empty unless `SimConfig::trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Immutable access to an application, for post-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn app(&self, node: NodeId) -> &dyn Application {
        self.apps[node].as_ref()
    }

    /// Number of nodes that have decided. O(1): maintained
    /// incrementally by the `Decide` command (the retired per-event
    /// re-scan of `decisions` stays on as the debug oracle).
    pub fn decided_count(&self) -> usize {
        debug_assert_eq!(
            self.decided,
            self.decisions.iter().flatten().count(),
            "incremental decided counter diverged from the decisions vector"
        );
        self.decided
    }

    /// Per-node high-water marks of the applications' store-bytes
    /// probe ([`AppProgress::store_bytes`]); 0 for applications
    /// without a probe.
    pub fn peak_store_bytes(&self) -> &[usize] {
        &self.peak_store
    }

    /// Processes a single event. Returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at_nanos, kind)) = self.queue.pop() else {
            return false;
        };
        let at = SimTime::from_nanos(at_nanos);
        debug_assert!(at >= self.time, "time must be monotonic");
        self.time = at;
        self.stats.events_processed += 1;
        match kind {
            EventKind::Start(node) => {
                if self.crash_down[node] {
                    // Crashed before its jittered start; a rejoin will
                    // run `on_start`.
                    return true;
                }
                self.started[node] = true;
                self.dispatch(node, |app, ctx| app.on_start(ctx));
            }
            EventKind::Timer { node, id, epoch } => {
                if epoch != self.crash_epoch[node] {
                    // Armed before a crash: the restarted process never
                    // sees it.
                    return true;
                }
                self.dispatch_gated(
                    node,
                    at,
                    EventKind::Timer { node, id, epoch },
                    |app, ctx| app.on_timer(ctx, id),
                );
            }
            EventKind::Deliver { node, frame } => {
                if self.crash_down[node] {
                    self.stats.crash_drops += 1;
                } else if self.busy_until[node] > at {
                    // Defer to when the node's CPU is free.
                    let at = self.busy_until[node];
                    self.push(at, EventKind::Deliver { node, frame });
                } else {
                    self.stats.deliveries += 1;
                    self.stats.per_node_rx[node] += 1;
                    self.dispatch(node, move |app, ctx| app.on_frame(ctx, frame));
                }
            }
            EventKind::EnqueueTx(frame) => {
                let node = frame.src;
                if self.crash_down[node] {
                    // Effects computed before the crash committed after
                    // it: the dead NIC sends nothing.
                    self.stats.crash_drops += 1;
                } else if !self.medium.enqueue(frame, &mut self.mac_rng) {
                    self.stats.queue_drops += 1;
                    self.stats.per_node_queue_drops[node] += 1;
                    self.trace.record(self.time, TraceEvent::QueueDrop { node });
                }
                self.reschedule_contention();
            }
            EventKind::ContentionResolve { epoch } => {
                if let Some(end) = self.medium.resolve(at, epoch) {
                    self.push(end, EventKind::TxEnd);
                    // Under a partial topology, contenders out of the
                    // winners' sensing range keep contending while the
                    // new group is on the air (spatial reuse). In a
                    // single domain everyone is blocked and this is a
                    // no-op.
                    self.reschedule_contention();
                }
                // Stale events need no rescheduling: whatever bumped the
                // epoch also rescheduled.
            }
            EventKind::TxEnd => {
                self.handle_tx_end(at);
            }
            EventKind::MacFailure { node, dst, payload } => {
                if !self.crash_down[node] {
                    self.dispatch(node, move |app, ctx| {
                        app.on_unicast_failed(ctx, dst, payload)
                    });
                }
            }
            EventKind::Crash(node) => {
                self.crash_node(node);
            }
            EventKind::Rejoin(node) => {
                self.rejoin_node(node);
            }
        }
        true
    }

    /// Runs until `pred(self)` holds, the time limit passes, or the event
    /// queue drains.
    pub fn run_until(
        &mut self,
        limit: SimTime,
        mut pred: impl FnMut(&Simulator) -> bool,
    ) -> RunStatus {
        loop {
            if pred(self) {
                return RunStatus::Satisfied;
            }
            match self.queue.peek_at() {
                None => return RunStatus::Quiescent,
                Some(at) if SimTime::from_nanos(at) > limit => return RunStatus::TimeLimit,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs until at least `k` nodes have decided (or limit/quiescence).
    pub fn run_until_k_decided(&mut self, k: usize, limit: SimTime) -> RunStatus {
        self.run_until(limit, |sim| sim.decided_count() >= k)
    }

    /// [`Simulator::run_until`] with stall diagnostics: when the run
    /// stops without satisfying the predicate, the returned
    /// [`StallReport`] captures per-node progress, queue pressure, and
    /// fault-injector state at the moment the budget ran out.
    pub fn run_until_supervised(
        &mut self,
        limit: SimTime,
        pred: impl FnMut(&Simulator) -> bool,
    ) -> (RunStatus, Option<StallReport>) {
        let status = self.run_until(limit, pred);
        let report =
            (status != RunStatus::Satisfied).then(|| self.stall_report(limit, status, None));
        (status, report)
    }

    /// [`Simulator::run_until_k_decided`] with stall diagnostics.
    pub fn run_until_k_decided_supervised(
        &mut self,
        k: usize,
        limit: SimTime,
    ) -> (RunStatus, Option<StallReport>) {
        let status = self.run_until_k_decided(k, limit);
        let report =
            (status != RunStatus::Satisfied).then(|| self.stall_report(limit, status, Some(k)));
        (status, report)
    }

    /// Snapshots the diagnostic state of the run — what a supervised
    /// run attaches to a stall. Callable at any time (takes `&mut self`
    /// only to query the topology's reachability snapshot).
    pub fn stall_report(
        &mut self,
        limit: SimTime,
        status: RunStatus,
        target: Option<usize>,
    ) -> StallReport {
        let connectivity = self.medium.connectivity(self.time, self.n());
        let nodes = (0..self.n())
            .map(|node| NodeProgress {
                node,
                progress: self.apps[node].progress(),
                decided: self.decisions[node].is_some(),
                crashed: self.crash_down[node],
                tx_queue_depth: self.medium.queue_len(node),
                queue_drops: self.stats.per_node_queue_drops[node],
                deliveries: self.stats.per_node_rx[node],
                peak_store_bytes: self.peak_store[node],
                reachable_peers: connectivity.reachable[node],
                component: connectivity.component[node],
            })
            .collect();
        StallReport {
            status,
            now: self.time,
            limit,
            decided: self.decided_count(),
            target,
            last_progress: self.last_progress,
            fault: self.fault.describe(),
            crashes: self.crash_describe.clone(),
            topology: self.medium.topology_describe(),
            queue_drops: self.stats.queue_drops,
            nodes,
        }
    }

    /// Simulated time of the last global progress: any node's phase
    /// advance (per [`Application::progress`]) or any decision.
    pub fn last_progress(&self) -> SimTime {
        self.last_progress
    }

    /// Installs a crash/recovery schedule. Call before running.
    ///
    /// Time-triggered crashes are scheduled as events; phase-triggered
    /// crashes fire as soon as the node's [`Application::progress`]
    /// probe reports the phase (a node without a probe never reaches a
    /// phase trigger). A crashing node stops transmitting, receiving,
    /// and ticking; its transmit-queue backlog and any frame it has on
    /// the air are lost, and effects its application computed but had
    /// not yet committed (CPU-charge in flight) are discarded. On
    /// rejoin the application is [`Application::reset`] and restarted
    /// through `on_start` with a clear CPU.
    ///
    /// # Panics
    ///
    /// Panics if a time trigger lies in the simulated past or a node id
    /// is out of range.
    pub fn set_crash_schedule(&mut self, schedule: CrashSchedule) {
        self.crash_describe = schedule.describe();
        for spec in schedule.specs() {
            assert!(spec.node < self.n(), "crash node {} out of range", spec.node);
            assert!(
                self.crash_pending[spec.node].is_none(),
                "node {} already has a crash scheduled",
                spec.node
            );
            self.crash_pending[spec.node] = Some(*spec);
            if let CrashTrigger::At(at) = spec.trigger {
                assert!(at >= self.time, "crash at {at} lies in the past");
                self.push(at, EventKind::Crash(spec.node));
            }
        }
    }

    /// `true` while `node` is crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.crash_down[node]
    }

    fn crash_node(&mut self, node: NodeId) {
        if self.crash_down[node] {
            return;
        }
        let spec = self.crash_pending[node].take();
        self.crash_down[node] = true;
        // Timers armed up to now must never fire again.
        self.crash_epoch[node] += 1;
        // The dead NIC loses its backlog; contention restarts without
        // this node (the epoch bump staled any scheduled resolution).
        self.medium.clear_queue(node);
        self.reschedule_contention();
        self.trace.record(self.time, TraceEvent::Crash { node });
        if let Some(delay) = spec.and_then(|s| s.rejoin_after) {
            self.push(self.time + delay, EventKind::Rejoin(node));
        }
    }

    fn rejoin_node(&mut self, node: NodeId) {
        debug_assert!(self.crash_down[node], "rejoin of a live node");
        self.crash_down[node] = false;
        // A reboot clears the CPU backlog and the restarted process
        // starts from scratch.
        self.busy_until[node] = self.time;
        self.last_phase[node] = None;
        self.apps[node].reset();
        self.trace.record(self.time, TraceEvent::Rejoin { node });
        self.started[node] = true;
        self.dispatch(node, |app, ctx| app.on_start(ctx));
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        self.queue.push(at.as_nanos(), kind);
    }

    /// Dispatches a callback, deferring the whole event if the node's CPU
    /// is still busy (used for timers, whose `EventKind` can be cheaply
    /// re-queued).
    fn dispatch_gated(
        &mut self,
        node: NodeId,
        at: SimTime,
        requeue: EventKind,
        run: impl FnOnce(&mut dyn Application, &mut NodeCtx<'_>),
    ) {
        if self.busy_until[node] > at {
            let t = self.busy_until[node];
            self.push(t, requeue);
        } else {
            self.dispatch(node, run);
        }
    }

    fn dispatch(
        &mut self,
        node: NodeId,
        run: impl FnOnce(&mut dyn Application, &mut NodeCtx<'_>),
    ) {
        let start = self.time.max(self.busy_until[node]);
        let mut ctx = NodeCtx {
            node,
            now: start,
            charged: Duration::ZERO,
            commands: std::mem::take(&mut self.cmd_pool),
            rng: &mut self.node_rngs[node],
        };
        let mut app: Box<dyn Application> =
            std::mem::replace(&mut self.apps[node], Box::new(CrashedApp));
        run(app.as_mut(), &mut ctx);
        self.apps[node] = app;
        let done = start + ctx.charged;
        let mut commands = std::mem::take(&mut ctx.commands);
        drop(ctx);
        self.busy_until[node] = done;
        for cmd in commands.drain(..) {
            self.apply_command(node, done, cmd);
        }
        // Return the (now empty) buffer so the next dispatch reuses its
        // capacity. `apply_command` never dispatches recursively, so the
        // pool is always free here.
        self.cmd_pool = commands;
        self.poll_progress(node);
    }

    /// Polls the node's progress probe after a callback: advances the
    /// last-global-progress clock on phase changes and fires any
    /// phase-triggered crash.
    fn poll_progress(&mut self, node: NodeId) {
        let Some(p) = self.apps[node].progress() else {
            return;
        };
        if self.last_phase[node] != Some(p.phase) {
            self.last_phase[node] = Some(p.phase);
            self.last_progress = self.last_progress.max(self.time);
        }
        if p.store_bytes > self.peak_store[node] {
            self.peak_store[node] = p.store_bytes;
        }
        if let Some(spec) = self.crash_pending[node] {
            if let CrashTrigger::AtPhase(phase) = spec.trigger {
                if p.phase >= phase {
                    self.crash_node(node);
                }
            }
        }
    }

    fn apply_command(&mut self, node: NodeId, at: SimTime, cmd: Command) {
        if self.crash_down[node] {
            // A crashed node's effects never commit (defensive: the
            // event-level guards normally catch these first).
            return;
        }
        match cmd {
            Command::Broadcast { payload, overhead } => {
                self.stats.broadcast_sends += 1;
                self.stats.payload_bytes_sent += payload.len() as u64;
                // OS loopback: the sender hears its own broadcast without
                // using the radio.
                let loopback = ReceivedFrame {
                    src: node,
                    addressing: Addressing::Broadcast,
                    payload: payload.clone(),
                };
                self.stats.loopback_deliveries += 1;
                self.push(
                    at + self.loopback_latency,
                    EventKind::Deliver {
                        node,
                        frame: loopback,
                    },
                );
                let frame = Frame {
                    src: node,
                    addressing: Addressing::Broadcast,
                    payload,
                    transport_overhead: overhead,
                };
                self.push(at, EventKind::EnqueueTx(frame));
            }
            Command::Unicast {
                dst,
                payload,
                overhead,
            } => {
                self.stats.unicast_sends += 1;
                self.stats.payload_bytes_sent += payload.len() as u64;
                if dst == node {
                    let frame = ReceivedFrame {
                        src: node,
                        addressing: Addressing::Unicast(node),
                        payload,
                    };
                    self.stats.loopback_deliveries += 1;
                    self.push(
                        at + self.loopback_latency,
                        EventKind::Deliver { node, frame },
                    );
                } else {
                    let frame = Frame {
                        src: node,
                        addressing: Addressing::Unicast(dst),
                        payload,
                        transport_overhead: overhead,
                    };
                    self.push(at, EventKind::EnqueueTx(frame));
                }
            }
            Command::SetTimer { delay, id } => {
                let epoch = self.crash_epoch[node];
                self.push(at + delay, EventKind::Timer { node, id, epoch });
            }
            Command::Decide { value } => {
                if self.decisions[node].is_none() {
                    self.decisions[node] = Some(Decision { time: at, value });
                    self.decided += 1;
                    self.last_progress = self.last_progress.max(at);
                    self.trace.record(at, TraceEvent::Decide { node, value });
                }
            }
        }
    }

    fn handle_tx_end(&mut self, now: SimTime) {
        // Reuse the completed-transmission buffer across TxEnd events;
        // `finish_tx_into` clears it before filling.
        let mut completed = std::mem::take(&mut self.tx_buf);
        self.medium.finish_tx_into(now, &mut completed);
        self.stats.channel_busy += self.medium.last_busy();
        if !self.trace.is_disabled() {
            if completed.len() > 1 {
                self.trace.record(
                    now,
                    TraceEvent::Collision {
                        nodes: completed.iter().map(|t| t.node).collect(),
                    },
                );
            }
            for tx in &completed {
                self.trace.record(
                    now,
                    TraceEvent::TxStart {
                        node: tx.node,
                        broadcast: tx.frame.is_broadcast(),
                        bytes: tx.frame.mac_payload_len(),
                    },
                );
            }
        }
        let prop = self.cfg.phy.propagation;
        for tx in completed.drain(..) {
            if self.crash_down[tx.node] {
                // The transmitter died mid-frame: nothing intelligible
                // reaches any receiver (its queue is already empty, so
                // no `after_head_done` either).
                self.stats.crash_drops += 1;
                continue;
            }
            self.stats.per_node_tx[tx.node] += 1;
            match tx.frame.addressing {
                Addressing::Broadcast => {
                    self.stats.broadcast_frames_sent += 1;
                    if tx.collision {
                        self.stats.collisions += 1;
                    }
                    // Group-addressed frames are never retried; whoever
                    // the reception excludes (collision victims,
                    // out-of-range or partitioned receivers) simply
                    // misses the frame.
                    for rx in 0..self.n() {
                        if rx == tx.node {
                            continue; // radio does not hear itself; loopback handled at send
                        }
                        if !tx.reception.hears(rx) {
                            continue;
                        }
                        let dctx = DeliveryCtx {
                            now,
                            src: tx.node,
                            dst: rx,
                            broadcast: true,
                        };
                        if self.fault.drops(&dctx) {
                            self.stats.fault_drops += 1;
                            self.trace
                                .record(now, TraceEvent::FaultDrop { src: tx.node, dst: rx });
                            continue;
                        }
                        let frame = ReceivedFrame {
                            src: tx.node,
                            addressing: Addressing::Broadcast,
                            payload: tx.frame.payload.clone(),
                        };
                        self.trace.record(
                            now,
                            TraceEvent::Deliver {
                                src: tx.node,
                                dst: rx,
                                bytes: frame.payload.len(),
                            },
                        );
                        self.push(now + prop, EventKind::Deliver { node: rx, frame });
                    }
                    self.medium.after_head_done(tx.node, &mut self.mac_rng);
                }
                Addressing::Unicast(dst) => {
                    self.stats.unicast_frames_sent += 1;
                    if tx.collision {
                        self.stats.collisions += 1;
                    }
                    let delivered = tx.reception.hears(dst) && {
                        let dctx = DeliveryCtx {
                            now,
                            src: tx.node,
                            dst,
                            broadcast: false,
                        };
                        if self.fault.drops(&dctx) {
                            self.stats.fault_drops += 1;
                            false
                        } else {
                            true
                        }
                    };
                    if delivered {
                        let frame = ReceivedFrame {
                            src: tx.node,
                            addressing: Addressing::Unicast(dst),
                            payload: tx.frame.payload.clone(),
                        };
                        self.push(now + prop, EventKind::Deliver { node: dst, frame });
                        self.medium.after_head_done(tx.node, &mut self.mac_rng);
                    } else {
                        // No ACK: MAC retransmits with a doubled window,
                        // or gives up.
                        let payload = tx.frame.payload.clone();
                        if !self.medium.retry_unicast(
                            tx.node,
                            tx.frame,
                            tx.attempt,
                            &mut self.mac_rng,
                        ) {
                            self.stats.mac_failures += 1;
                            self.push(
                                now,
                                EventKind::MacFailure {
                                    node: tx.node,
                                    dst,
                                    payload,
                                },
                            );
                        }
                    }
                }
            }
        }
        self.tx_buf = completed;
        self.reschedule_contention();
    }

    fn reschedule_contention(&mut self) {
        if let Some((at, epoch)) = self.medium.next_resolution(self.time) {
            self.push(at, EventKind::ContentionResolve { epoch });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{IidLoss, TargetedLoss};
    use parking_lot_free_cell::Shared;

    /// Minimal shared-state helper so tests can observe app internals
    /// after the run without `parking_lot` (keeps this crate's dep set
    /// small).
    mod parking_lot_free_cell {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        pub struct Shared<T>(pub Rc<RefCell<T>>);

        impl<T: Default> Shared<T> {
            pub fn new() -> Self {
                Shared(Rc::new(RefCell::new(T::default())))
            }
        }
    }

    /// Broadcasts one message at start; records everything it receives.
    struct Chatter {
        sent: bool,
        received: Shared<Vec<(NodeId, Bytes)>>,
    }

    impl Application for Chatter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if !self.sent {
                self.sent = true;
                let msg = format!("hello from {}", ctx.node());
                ctx.broadcast(Bytes::from(msg.into_bytes()), 36);
            }
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
            self.received
                .0
                .borrow_mut()
                .push((frame.src, frame.payload.clone()));
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
    }

    fn chatter_sim(n: usize, seed: u64) -> (Simulator, Vec<Shared<Vec<(NodeId, Bytes)>>>) {
        let cells: Vec<_> = (0..n).map(|_| Shared::<Vec<(NodeId, Bytes)>>::new()).collect();
        let apps: Vec<Box<dyn Application>> = cells
            .iter()
            .map(|c| {
                Box::new(Chatter {
                    sent: false,
                    received: c.clone(),
                }) as Box<dyn Application>
            })
            .collect();
        let cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        (Simulator::without_faults(cfg, apps), cells)
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        // Seed chosen so CSMA backoffs separate the four simultaneous
        // broadcasts; colliding broadcasts are (correctly) lost.
        let (mut sim, cells) = chatter_sim(4, 2);
        let status = sim.run_until(SimTime::from_millis(100), |_| false);
        assert_eq!(status, RunStatus::Quiescent);
        for (i, cell) in cells.iter().enumerate() {
            let got = cell.0.borrow();
            assert_eq!(got.len(), 4, "node {i} should hear all 4 broadcasts");
            let mut sources: Vec<_> = got.iter().map(|(s, _)| *s).collect();
            sources.sort_unstable();
            assert_eq!(sources, vec![0, 1, 2, 3]);
        }
        assert_eq!(sim.stats().broadcast_frames_sent, 4);
        assert_eq!(sim.stats().loopback_deliveries, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut sim, cells) = chatter_sim(5, seed);
            sim.run_until(SimTime::from_millis(100), |_| false);
            let out: Vec<_> = cells.iter().map(|c| c.0.borrow().clone()).collect();
            (out, sim.now())
        };
        assert_eq!(run(7), run(7));
    }

    /// Sends a unicast to node 1 at start.
    struct UniSender;
    impl Application for UniSender {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if ctx.node() == 0 {
                ctx.unicast(1, Bytes::from_static(b"direct"), 48);
            }
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
    }

    #[test]
    fn unicast_retries_through_loss_then_delivers() {
        // 60% loss: MAC ARQ (7 retries) almost surely gets it through.
        let cfg = SimConfig {
            seed: 3,
            ..SimConfig::default()
        };
        let apps: Vec<Box<dyn Application>> =
            vec![Box::new(UniSender), Box::new(UniSender), Box::new(UniSender)];
        let mut sim = Simulator::new(cfg, Box::new(IidLoss::new(0.6, 5)), apps);
        sim.run_until(SimTime::from_millis(500), |_| false);
        assert!(sim.stats().unicast_frames_sent >= 1);
        assert_eq!(sim.stats().deliveries, 1, "exactly one app delivery");
        assert!(
            sim.stats().unicast_frames_sent > 1 || sim.stats().fault_drops == 0,
            "with drops there must be retransmissions"
        );
    }

    /// Counts MAC failures reported to the app.
    struct FailureCounter {
        failures: Shared<Vec<NodeId>>,
    }
    impl Application for FailureCounter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if ctx.node() == 0 {
                ctx.unicast(1, Bytes::from_static(b"doomed"), 48);
            }
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
        fn on_unicast_failed(&mut self, _ctx: &mut NodeCtx<'_>, dst: NodeId, _payload: Bytes) {
            self.failures.0.borrow_mut().push(dst);
        }
    }

    #[test]
    fn unicast_to_black_hole_reports_mac_failure() {
        let cell = Shared::<Vec<NodeId>>::new();
        let apps: Vec<Box<dyn Application>> = vec![
            Box::new(FailureCounter {
                failures: cell.clone(),
            }),
            Box::new(CrashedApp),
        ];
        let cfg = SimConfig {
            seed: 9,
            ..SimConfig::default()
        };
        // All deliveries to node 1 dropped.
        let fault = TargetedLoss::new(vec![], vec![1], 1.0, 2);
        let mut sim = Simulator::new(cfg, Box::new(fault), apps);
        sim.run_until(SimTime::from_millis(500), |_| false);
        assert_eq!(sim.stats().mac_failures, 1);
        assert_eq!(cell.0.borrow().as_slice(), &[1]);
        // 1 initial + retry_limit retransmissions.
        assert_eq!(sim.stats().unicast_frames_sent as u32, 1 + sim_retry_limit());
    }

    fn sim_retry_limit() -> u32 {
        crate::config::PhyConfig::default().retry_limit
    }

    /// Charges heavy CPU on its first frame; records delivery times.
    struct SlowCpu {
        times: Shared<Vec<u64>>,
    }
    impl Application for SlowCpu {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if ctx.node() == 1 {
                // Two back-to-back broadcasts arrive close together.
                ctx.broadcast(Bytes::from_static(b"one"), 36);
                ctx.broadcast(Bytes::from_static(b"two"), 36);
            }
        }
        fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {
            self.times.0.borrow_mut().push(ctx.now().as_micros());
            ctx.charge_cpu(Duration::from_millis(10));
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
    }

    #[test]
    fn cpu_charge_delays_subsequent_deliveries() {
        let cell = Shared::<Vec<u64>>::new();
        let apps: Vec<Box<dyn Application>> = vec![
            Box::new(SlowCpu {
                times: cell.clone(),
            }),
            Box::new(SlowCpu {
                times: Shared::<Vec<u64>>::new(),
            }),
        ];
        let cfg = SimConfig {
            seed: 4,
            start_jitter: Duration::ZERO,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        sim.run_until(SimTime::from_millis(200), |_| false);
        let times = cell.0.borrow();
        assert_eq!(times.len(), 2, "node 0 hears both broadcasts");
        // Second delivery waits out the 10 ms CPU charge.
        assert!(
            times[1] >= times[0] + 10_000,
            "second delivery at {} must be ≥ first {} + 10ms",
            times[1],
            times[0]
        );
    }

    /// Decides at start.
    struct Decider(bool);
    impl Application for Decider {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.decide(self.0);
            ctx.decide(!self.0); // write-once: must be ignored
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
    }

    #[test]
    fn decisions_recorded_write_once() {
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Decider(true)), Box::new(Decider(false))];
        let mut sim = Simulator::without_faults(SimConfig::default(), apps);
        let status = sim.run_until_k_decided(2, SimTime::from_millis(10));
        assert_eq!(status, RunStatus::Satisfied);
        assert_eq!(sim.decisions()[0].map(|d| d.value), Some(true));
        assert_eq!(sim.decisions()[1].map(|d| d.value), Some(false));
    }

    /// Re-arming periodic timer.
    struct Ticker {
        fired: Shared<Vec<u64>>,
    }
    impl Application for Ticker {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration::from_millis(10), 1);
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: u64) {
            assert_eq!(timer, 1);
            self.fired.0.borrow_mut().push(ctx.now().as_millis());
            if self.fired.0.borrow().len() < 3 {
                ctx.set_timer(Duration::from_millis(10), 1);
            }
        }
    }

    #[test]
    fn timers_fire_and_rearm() {
        let cell = Shared::<Vec<u64>>::new();
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Ticker {
            fired: cell.clone(),
        })];
        let cfg = SimConfig {
            start_jitter: Duration::ZERO,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        let status = sim.run_until(SimTime::from_millis(1000), |_| false);
        assert_eq!(status, RunStatus::Quiescent);
        assert_eq!(cell.0.borrow().as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn time_limit_status() {
        let cell = Shared::<Vec<u64>>::new();
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Ticker {
            fired: cell.clone(),
        })];
        let cfg = SimConfig {
            start_jitter: Duration::ZERO,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        let status = sim.run_until(SimTime::from_millis(15), |_| false);
        assert_eq!(status, RunStatus::TimeLimit);
        assert_eq!(cell.0.borrow().as_slice(), &[10]);
    }

    #[test]
    fn trace_captures_network_events() {
        let (cells, apps): (Vec<_>, Vec<Box<dyn Application>>) = (0..2)
            .map(|_| {
                let cell = Shared::<Vec<(NodeId, Bytes)>>::new();
                let app = Box::new(Chatter {
                    sent: false,
                    received: cell.clone(),
                }) as Box<dyn Application>;
                (cell, app)
            })
            .unzip();
        drop(cells);
        let cfg = SimConfig {
            seed: 1,
            trace_capacity: 64,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        sim.run_until(SimTime::from_millis(100), |_| false);
        assert!(!sim.trace().is_empty());
        let log = sim.trace().render();
        assert!(log.contains("tx-start"), "{log}");
        assert!(log.contains("deliver"), "{log}");
    }

    #[test]
    fn trace_disabled_by_default() {
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Chatter {
            sent: false,
            received: Shared::<Vec<(NodeId, Bytes)>>::new(),
        })];
        let mut sim = Simulator::without_faults(SimConfig::default(), apps);
        sim.run_until(SimTime::from_millis(50), |_| false);
        assert!(sim.trace().is_empty());
    }

    /// Periodically re-broadcasts and reports phase = ticks elapsed;
    /// exercises the progress probe, reset, and crash machinery.
    struct PhaseTicker {
        phase: u32,
        resets: Shared<Vec<u32>>,
    }
    impl Application for PhaseTicker {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration::from_millis(5), 0);
        }
        fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: u64) {
            self.phase += 1;
            ctx.broadcast(Bytes::from_static(b"tick"), 36);
            ctx.set_timer(Duration::from_millis(5), 0);
        }
        fn progress(&self) -> Option<AppProgress> {
            Some(AppProgress {
                phase: self.phase,
                decided: false,
                store_bytes: 16 * self.phase as usize,
            })
        }
        fn reset(&mut self) {
            self.resets.0.borrow_mut().push(self.phase);
            self.phase = 0;
        }
    }

    fn ticker_sim(n: usize) -> (Simulator, Shared<Vec<u32>>) {
        let resets = Shared::<Vec<u32>>::new();
        let apps: Vec<Box<dyn Application>> = (0..n)
            .map(|_| {
                Box::new(PhaseTicker {
                    phase: 0,
                    resets: resets.clone(),
                }) as Box<dyn Application>
            })
            .collect();
        let cfg = SimConfig {
            seed: 11,
            start_jitter: Duration::ZERO,
            ..SimConfig::default()
        };
        (Simulator::without_faults(cfg, apps), resets)
    }

    #[test]
    fn crash_silences_node_and_drops_backlog() {
        let (mut sim, _resets) = ticker_sim(2);
        sim.set_crash_schedule(CrashSchedule::new().crash_at(0, SimTime::from_millis(50)));
        sim.run_until(SimTime::from_millis(200), |_| false);
        assert!(sim.is_down(0));
        assert!(!sim.is_down(1));
        // The crashed node stopped ticking: far fewer transmissions than
        // its live sibling, and suppressed effects were counted.
        assert!(
            sim.stats().per_node_tx[0] < sim.stats().per_node_tx[1] / 2,
            "crashed node kept transmitting: {:?}",
            sim.stats().per_node_tx
        );
        assert!(sim.stats().crash_drops > 0, "deliveries to the dead node count");
    }

    #[test]
    fn rejoin_resets_app_and_restarts() {
        let (mut sim, resets) = ticker_sim(2);
        sim.set_crash_schedule(
            CrashSchedule::new()
                .crash_at(0, SimTime::from_millis(50))
                .rejoin_after(Duration::from_millis(30)),
        );
        sim.run_until(SimTime::from_millis(200), |_| false);
        assert!(!sim.is_down(0), "node 0 rejoined");
        // reset() saw the pre-crash phase (~9 ticks at 5 ms), then the
        // probe restarted from zero and advanced again.
        let resets = resets.0.borrow();
        assert_eq!(resets.len(), 1, "exactly one restart");
        assert!(resets[0] >= 5, "pre-crash phase was {}", resets[0]);
        let p = sim.app(0).progress().expect("probe available");
        assert!(
            (5..25).contains(&p.phase),
            "post-rejoin phase restarted from zero, got {}",
            p.phase
        );
    }

    #[test]
    fn phase_triggered_crash_fires() {
        let (mut sim, _resets) = ticker_sim(2);
        sim.set_crash_schedule(CrashSchedule::new().crash_at_phase(1, 3));
        sim.run_until(SimTime::from_millis(200), |_| false);
        assert!(sim.is_down(1));
        let p = sim.app(1).progress().expect("probe available");
        assert_eq!(p.phase, 3, "crashed exactly at the trigger phase");
    }

    #[test]
    fn pre_crash_timers_never_fire_after_rejoin() {
        // A rejoining PhaseTicker re-arms its own timer via on_start; if
        // the pre-crash timer leaked through, ticks would double up.
        let (mut sim, _resets) = ticker_sim(1);
        sim.set_crash_schedule(
            CrashSchedule::new()
                .crash_at(0, SimTime::from_millis(52))
                .rejoin_after(Duration::from_millis(8)),
        );
        sim.run_until(SimTime::from_millis(100), |_| false);
        let p = sim.app(0).progress().expect("probe available");
        // 60..100 ms at one tick per 5 ms = 8 ticks; doubled timers
        // would give ~16.
        assert_eq!(p.phase, 8, "exactly one timer chain after rejoin");
    }

    #[test]
    fn supervised_run_reports_stall_with_progress_rows() {
        let (mut sim, _resets) = ticker_sim(3);
        let (status, report) =
            sim.run_until_k_decided_supervised(3, SimTime::from_millis(40));
        assert_ne!(status, RunStatus::Satisfied, "nobody ever decides");
        let report = report.expect("non-satisfied run carries a report");
        assert_eq!(report.decided, 0);
        assert_eq!(report.target, Some(3));
        assert_eq!(report.nodes.len(), 3);
        for np in &report.nodes {
            let p = np.progress.expect("PhaseTicker has a probe");
            assert!(p.phase >= 5, "node {} stuck at phase {}", np.node, p.phase);
            assert!(!np.crashed);
            // PhaseTicker reports 16 bytes per phase; the high-water
            // mark tracks the probe.
            assert_eq!(np.peak_store_bytes, 16 * p.phase as usize);
        }
        // Ticks kept arriving, so the progress clock is recent.
        assert!(report.last_progress >= SimTime::from_millis(35));
        assert!(!report.zero_progress());
        let text = report.to_string();
        assert!(text.contains("0/3 decided"), "{text}");
        assert!(text.contains("no injected faults"), "{text}");
    }

    #[test]
    fn supervised_run_satisfied_has_no_report() {
        let apps: Vec<Box<dyn Application>> = vec![Box::new(Decider(true))];
        let mut sim = Simulator::without_faults(SimConfig::default(), apps);
        let (status, report) = sim.run_until_k_decided_supervised(1, SimTime::from_millis(10));
        assert_eq!(status, RunStatus::Satisfied);
        assert!(report.is_none());
    }

    #[test]
    fn crash_events_show_in_trace() {
        let resets = Shared::<Vec<u32>>::new();
        let apps: Vec<Box<dyn Application>> = vec![Box::new(PhaseTicker {
            phase: 0,
            resets: resets.clone(),
        })];
        let cfg = SimConfig {
            seed: 11,
            start_jitter: Duration::ZERO,
            trace_capacity: 512,
            ..SimConfig::default()
        };
        let mut sim = Simulator::without_faults(cfg, apps);
        sim.set_crash_schedule(
            CrashSchedule::new()
                .crash_at(0, SimTime::from_millis(20))
                .rejoin_after(Duration::from_millis(10)),
        );
        sim.run_until(SimTime::from_millis(50), |_| false);
        let log = sim.trace().render();
        assert!(log.contains("crash     n0"), "{log}");
        assert!(log.contains("rejoin    n0"), "{log}");
    }

    #[test]
    fn self_unicast_loops_back() {
        struct SelfSender {
            got: Shared<Vec<u8>>,
        }
        impl Application for SelfSender {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.unicast(ctx.node(), Bytes::from_static(b"me"), 48);
            }
            fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, frame: ReceivedFrame) {
                self.got.0.borrow_mut().extend_from_slice(&frame.payload);
            }
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: u64) {}
        }
        let cell = Shared::<Vec<u8>>::new();
        let apps: Vec<Box<dyn Application>> = vec![Box::new(SelfSender { got: cell.clone() })];
        let mut sim = Simulator::without_faults(SimConfig::default(), apps);
        sim.run_until(SimTime::from_millis(10), |_| false);
        assert_eq!(cell.0.borrow().as_slice(), b"me");
        assert_eq!(sim.stats().unicast_frames_sent, 0, "radio untouched");
    }
}
