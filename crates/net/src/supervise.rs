//! Stall diagnostics: the structured report a supervised run emits when
//! it exhausts its simulated-time budget.
//!
//! The paper's liveness claim (§5's σ bound) makes *stalls* the
//! interesting failure mode: a run that neither decides nor crashes.
//! [`StallReport`] captures everything needed to tell a slow divergent
//! run from a genuinely stuck one without ad hoc printf: per-node
//! protocol progress (via [`crate::sim::Application::progress`]),
//! per-node transmit-queue depth and cumulative tail-drop counts (the
//! known congestion sharp edge), the injected fault state, and the
//! simulated time of the last global progress (phase advance or
//! decision).
//!
//! Reports are plain data — `Clone + Send` — so the harness's worker
//! pool can carry them across threads like any other job result.

use crate::frame::NodeId;
use crate::sim::RunStatus;
use crate::time::SimTime;
use std::fmt;

/// A progress snapshot reported by an application, for stall
/// diagnostics.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct AppProgress {
    /// Protocol phase (Turquois) or round (the baselines).
    pub phase: u32,
    /// Whether the protocol engine has decided.
    pub decided: bool,
    /// Approximate resident bytes of the engine's message stores right
    /// now. Must be O(1) to compute (the simulator polls the probe
    /// after every callback) and a function of store *contents* only —
    /// never of the storage layout — so supervised output stays
    /// byte-identical under `TURQUOIS_LEGACY_STORE=1`.
    pub store_bytes: usize,
}

/// One node's diagnostic row in a [`StallReport`].
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct NodeProgress {
    /// The node.
    pub node: NodeId,
    /// The application's progress probe (`None` when the application
    /// does not implement [`crate::sim::Application::progress`]).
    pub progress: Option<AppProgress>,
    /// Whether the simulator recorded a decision for this node.
    pub decided: bool,
    /// Whether the node is currently crashed (see
    /// [`crate::fault::CrashSchedule`]).
    pub crashed: bool,
    /// Frames sitting in the node's transmit queue right now.
    pub tx_queue_depth: usize,
    /// Cumulative transmit-queue tail drops at this node.
    pub queue_drops: u64,
    /// Frames delivered to this node's application.
    pub deliveries: u64,
    /// High-water mark of [`AppProgress::store_bytes`] over the run
    /// (0 for applications without a probe).
    pub peak_store_bytes: usize,
    /// Direct neighbors this node hears at the snapshot instant
    /// (`n − 1` in a single broadcast domain).
    pub reachable_peers: usize,
    /// Connected-component id of this node in the reachability graph
    /// (the smallest node index in the component; everyone is 0 when
    /// the network is whole).
    pub component: usize,
}

/// A structured diagnosis of a run that stopped without satisfying its
/// goal — emitted by [`crate::sim::Simulator::run_until_supervised`]
/// and friends instead of a bare [`RunStatus`].
#[derive(Clone, Debug, PartialEq)]
pub struct StallReport {
    /// How the run ended ([`RunStatus::TimeLimit`] or
    /// [`RunStatus::Quiescent`]).
    pub status: RunStatus,
    /// Simulated time when the run stopped.
    pub now: SimTime,
    /// The simulated-time budget the run was given.
    pub limit: SimTime,
    /// Nodes that decided before the stall.
    pub decided: usize,
    /// The decision target `k`, when the run had one.
    pub target: Option<usize>,
    /// Simulated time of the last global progress (a phase advance or
    /// a decision anywhere in the group).
    pub last_progress: SimTime,
    /// The injected delivery fault model, per
    /// [`crate::fault::FaultModel::describe`].
    pub fault: String,
    /// The installed crash schedule, per
    /// [`crate::fault::CrashSchedule::describe`].
    pub crashes: String,
    /// The active radio topology, per
    /// [`crate::topology::Topology::describe`].
    pub topology: String,
    /// Total transmit-queue tail drops across the group.
    pub queue_drops: u64,
    /// Per-node diagnostics.
    pub nodes: Vec<NodeProgress>,
}

impl StallReport {
    /// `true` when nothing made progress at all: no node ever advanced
    /// past its initial phase and nobody decided.
    pub fn zero_progress(&self) -> bool {
        self.decided == 0 && self.last_progress == SimTime::ZERO
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = match self.status {
            RunStatus::Satisfied => "satisfied",
            RunStatus::TimeLimit => "time-limit",
            RunStatus::Quiescent => "quiescent",
        };
        let target = match self.target {
            Some(k) => format!("{}/{k}", self.decided),
            None => format!("{}", self.decided),
        };
        writeln!(
            f,
            "stall[{status}] at {} (budget {}): {target} decided, \
             last progress {}, {} queue drops",
            self.now, self.limit, self.last_progress, self.queue_drops
        )?;
        writeln!(f, "  faults: {}; crashes: {}", self.fault, self.crashes)?;
        writeln!(f, "  topology: {}", self.topology)?;
        for np in &self.nodes {
            let phase = match np.progress {
                Some(p) => format!("phase {:>4}", p.phase),
                None => "phase    ?".to_string(),
            };
            writeln!(
                f,
                "  n{:<3} {phase}  {}  {}  txq {:>2}  qdrops {:>4}  rx {:>6}  \
                 peak-store {:>8}B  reach {:>3}  comp {:>3}",
                np.node,
                if np.decided { "decided " } else { "undecided" },
                if np.crashed { "CRASHED" } else { "up     " },
                np.tx_queue_depth,
                np.queue_drops,
                np.deliveries,
                np.peak_store_bytes,
                np.reachable_peers,
                np.component,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StallReport {
        StallReport {
            status: RunStatus::TimeLimit,
            now: SimTime::from_millis(30_000),
            limit: SimTime::from_millis(30_000),
            decided: 1,
            target: Some(7),
            last_progress: SimTime::from_millis(1_204),
            fault: "budgeted omission 160 per 10ms".into(),
            crashes: "no crashes".into(),
            topology: "split@5ms 4|3, heal@1s".into(),
            queue_drops: 12,
            nodes: vec![
                NodeProgress {
                    node: 0,
                    progress: Some(AppProgress {
                        phase: 41,
                        decided: true,
                        store_bytes: 1_024,
                    }),
                    decided: true,
                    crashed: false,
                    tx_queue_depth: 0,
                    queue_drops: 0,
                    deliveries: 1293,
                    peak_store_bytes: 2_208,
                    reachable_peers: 3,
                    component: 0,
                },
                NodeProgress {
                    node: 1,
                    progress: None,
                    decided: false,
                    crashed: true,
                    tx_queue_depth: 4,
                    queue_drops: 12,
                    deliveries: 1101,
                    peak_store_bytes: 0,
                    reachable_peers: 2,
                    component: 4,
                },
            ],
        }
    }

    #[test]
    fn display_names_phases_and_drops() {
        let text = report().to_string();
        assert!(text.contains("stall[time-limit]"), "{text}");
        assert!(text.contains("1/7 decided"), "{text}");
        assert!(text.contains("phase   41"), "{text}");
        assert!(text.contains("CRASHED"), "{text}");
        assert!(text.contains("12 queue drops"), "{text}");
        assert!(text.contains("budgeted omission"), "{text}");
        assert!(text.contains("peak-store     2208B"), "{text}");
        assert!(text.contains("topology: split@5ms 4|3, heal@1s"), "{text}");
        assert!(text.contains("reach   3  comp   0"), "{text}");
        assert!(text.contains("reach   2  comp   4"), "{text}");
    }

    #[test]
    fn zero_progress_detection() {
        let mut r = report();
        assert!(!r.zero_progress(), "progress was made");
        r.decided = 0;
        r.last_progress = SimTime::ZERO;
        assert!(r.zero_progress());
    }
}
