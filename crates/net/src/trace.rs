//! Bounded event tracing for simulation debugging.
//!
//! The simulator can record a ring buffer of network-level events
//! (transmissions, collisions, drops, deliveries, decisions). Tracing is
//! off by default — experiments run with zero overhead — and is enabled
//! per run via [`crate::sim::SimConfig::trace_capacity`]. The captured
//! trace reads like a radio log:
//!
//! ```text
//! 0.001643s  tx-start  n0 broadcast 78B
//! 0.002113s  collision n2,n3
//! 0.002113s  deliver   n0→n1 78B
//! 0.009731s  decide    n1 = 1
//! ```

use crate::frame::NodeId;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One traced event.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum TraceEvent {
    /// A transmission started.
    TxStart {
        /// Transmitting node.
        node: NodeId,
        /// `true` for link-layer broadcast.
        broadcast: bool,
        /// MAC payload bytes.
        bytes: usize,
    },
    /// Two or more transmissions collided.
    Collision {
        /// The colliding transmitters.
        nodes: Vec<NodeId>,
    },
    /// The fault model suppressed a delivery.
    FaultDrop {
        /// Transmitter.
        src: NodeId,
        /// Intended receiver.
        dst: NodeId,
    },
    /// A node's transmit queue tail-dropped a frame.
    QueueDrop {
        /// The saturated node.
        node: NodeId,
    },
    /// A frame reached an application.
    Deliver {
        /// Transmitter.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Payload bytes.
        bytes: usize,
    },
    /// A node recorded its consensus decision.
    Decide {
        /// The deciding node.
        node: NodeId,
        /// The decided value.
        value: bool,
    },
    /// A [`crate::fault::CrashSchedule`] took a node down.
    Crash {
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node rejoined (restarted with fresh state).
    Rejoin {
        /// The rejoining node.
        node: NodeId,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxStart {
                node,
                broadcast,
                bytes,
            } => write!(
                f,
                "tx-start  n{node} {} {bytes}B",
                if *broadcast { "broadcast" } else { "unicast" }
            ),
            TraceEvent::Collision { nodes } => {
                write!(f, "collision ")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "n{n}")?;
                }
                Ok(())
            }
            TraceEvent::FaultDrop { src, dst } => write!(f, "fault-drop n{src}→n{dst}"),
            TraceEvent::QueueDrop { node } => write!(f, "queue-drop n{node}"),
            TraceEvent::Deliver { src, dst, bytes } => {
                write!(f, "deliver   n{src}→n{dst} {bytes}B")
            }
            TraceEvent::Decide { node, value } => write!(f, "decide    n{node} = {}", *value as u8),
            TraceEvent::Crash { node } => write!(f, "crash     n{node}"),
            TraceEvent::Rejoin { node } => write!(f, "rejoin    n{node}"),
        }
    }
}

/// A bounded ring of timestamped events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    capacity: usize,
    events: VecDeque<(SimTime, TraceEvent)>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` events (0 disables).
    pub fn new(capacity: usize) -> Trace {
        Trace {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// `true` when tracing is disabled.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Records an event (oldest events fall off when full).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the trace as a log, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (at, ev) in &self.events {
            out.push_str(&format!("{at}  {ev}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(0);
        t.record(SimTime::ZERO, TraceEvent::QueueDrop { node: 1 });
        assert!(t.is_empty());
        assert!(t.is_disabled());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(2);
        for node in 0..3 {
            t.record(SimTime::from_micros(node as u64), TraceEvent::QueueDrop { node });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let first = t.events().next().expect("non-empty");
        assert_eq!(first.1, TraceEvent::QueueDrop { node: 1 });
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new(8);
        t.record(
            SimTime::from_millis(1),
            TraceEvent::TxStart {
                node: 0,
                broadcast: true,
                bytes: 78,
            },
        );
        t.record(
            SimTime::from_millis(2),
            TraceEvent::Collision { nodes: vec![2, 3] },
        );
        t.record(
            SimTime::from_millis(3),
            TraceEvent::Deliver {
                src: 0,
                dst: 1,
                bytes: 78,
            },
        );
        t.record(SimTime::from_millis(4), TraceEvent::Decide { node: 1, value: true });
        t.record(SimTime::from_millis(5), TraceEvent::FaultDrop { src: 0, dst: 2 });
        let log = t.render();
        assert_eq!(log.lines().count(), 5);
        assert!(log.contains("tx-start  n0 broadcast 78B"));
        assert!(log.contains("collision n2,n3"));
        assert!(log.contains("deliver   n0→n1 78B"));
        assert!(log.contains("decide    n1 = 1"));
        assert!(log.contains("fault-drop n0→n2"));
    }
}
