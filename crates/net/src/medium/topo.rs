//! The topology-aware medium: per-node carrier sense, concurrent
//! transmission groups (spatial reuse), partial receptions, and
//! hidden-terminal garbling.
//!
//! Generalizes the legacy single-domain arbiter along three axes,
//! reducing to it **exactly** — same RNG draws, same event times, same
//! epochs — when the topology is [`crate::topology::SingleDomain`]
//! (`crates/harness/tests/topology_differential.rs` and the
//! differential unit tests in [`crate::medium`] hold it to bytes):
//!
//! * `free_at` is per node: a node's NAV/EIFS hold-off tracks only
//!   transmissions it could actually sense.
//! * More than one transmission group may be in flight at once, as
//!   long as their contenders could not sense each other when they
//!   started (hidden terminals, healed-partition islands).
//! * Reception is per receiver: a frame is decodable at `dst` when the
//!   topology says `hears(src, dst)`, no co-group transmitter and no
//!   overlapping foreign transmitter interferes at `dst`, and `dst` is
//!   not itself transmitting.
//!
//! Interference marks are computed when a group *starts* (against
//! every group then in flight, both directions); any two overlapping
//! groups meet this way because one of them starts while the other is
//! on the air. Decodability is evaluated when the group *ends*. Both
//! instants are deterministic, so mobility keeps runs reproducible.

use super::{CompletedTx, Epoch, PendingTx, Reception};
use crate::config::PhyConfig;
use crate::frame::{Addressing, Frame, NodeId};
use crate::time::SimTime;
use crate::topology::Topology;
use rand::RngCore;
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// One in-flight transmission group: the contenders that resolved
/// together at one instant within one carrier-sense neighborhood.
struct Group {
    txs: Vec<(NodeId, PendingTx)>,
    end: SimTime,
    /// Airtime of this group (for the channel-busy stat).
    busy: Duration,
    /// Receivers garbled by an overlapping foreign group (marked when
    /// either group starts).
    garbled: Vec<bool>,
}

/// The topology-aware shared-medium arbiter.
pub(super) struct TopoMedium {
    phy: PhyConfig,
    topology: Box<dyn Topology>,
    /// Per-node channel-free time: when the last transmission this
    /// node could sense ends.
    free_at: Vec<SimTime>,
    groups: Vec<Group>,
    queues: Vec<VecDeque<PendingTx>>,
    backoffs: Vec<Option<u32>>,
    epoch: Epoch,
    last_busy: Duration,
    /// `now` of the last [`TopoMedium::next_resolution`] call; `resolve`
    /// re-derives the same winner set from it. Valid because every
    /// mutation bumps the epoch, which stales the scheduled event.
    sched_base: SimTime,
}

impl fmt::Debug for TopoMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TopoMedium")
            .field("topology", &self.topology.describe())
            .field("groups", &self.groups.len())
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl TopoMedium {
    pub(super) fn new(n: usize, phy: PhyConfig, topology: Box<dyn Topology>) -> Self {
        TopoMedium {
            phy,
            topology,
            free_at: vec![SimTime::ZERO; n],
            groups: Vec::new(),
            queues: vec![VecDeque::new(); n],
            backoffs: vec![None; n],
            epoch: 0,
            last_busy: Duration::ZERO,
            sched_base: SimTime::ZERO,
        }
    }

    fn n(&self) -> usize {
        self.queues.len()
    }

    pub(super) fn phy(&self) -> &PhyConfig {
        &self.phy
    }

    pub(super) fn epoch(&self) -> Epoch {
        self.epoch
    }

    pub(super) fn transmitting(&self) -> bool {
        !self.groups.is_empty()
    }

    pub(super) fn topology_mut(&mut self) -> &mut dyn Topology {
        self.topology.as_mut()
    }

    pub(super) fn topology_describe(&self) -> String {
        self.topology.describe()
    }

    /// Identical to the legacy `enqueue` (same RNG draw pattern).
    pub(super) fn enqueue(&mut self, frame: Frame, rng: &mut dyn RngCore) -> bool {
        if let Addressing::Unicast(dst) = frame.addressing {
            assert_ne!(dst, frame.src, "self-unicast must not reach the medium");
        }
        let node = frame.src;
        if self.queues[node].len() >= self.phy.tx_queue_cap {
            self.epoch += 1;
            return false;
        }
        self.queues[node].push_back(PendingTx { frame, attempt: 0 });
        if self.backoffs[node].is_none() && self.queues[node].len() == 1 {
            self.backoffs[node] = Some(self.draw_backoff(0, rng));
        }
        self.epoch += 1;
        true
    }

    /// Carrier sense: `node` defers while any in-flight transmitter is
    /// within its interference range at `at`.
    fn blocked(&mut self, at: SimTime, node: NodeId) -> bool {
        for g in 0..self.groups.len() {
            for t in 0..self.groups[g].txs.len() {
                let src = self.groups[g].txs[t].0;
                if self.topology.interferes(at, src, node) {
                    return true;
                }
            }
        }
        false
    }

    /// Fire instant of contender `node` holding backoff `b`, counting
    /// from schedule instant `base`.
    fn fire_at(&self, base: SimTime, node: NodeId, b: u32) -> SimTime {
        base.max(self.free_at[node]) + self.phy.difs + self.phy.slot * b
    }

    pub(super) fn next_resolution(&mut self, now: SimTime) -> Option<(SimTime, Epoch)> {
        self.sched_base = now;
        let mut best: Option<SimTime> = None;
        for node in 0..self.n() {
            let Some(b) = self.backoffs[node] else {
                continue;
            };
            if self.blocked(now, node) {
                continue;
            }
            let at = self.fire_at(now, node, b);
            best = Some(best.map_or(at, |cur: SimTime| cur.min(at)));
        }
        best.map(|at| (at, self.epoch))
    }

    pub(super) fn resolve(&mut self, now: SimTime, epoch: Epoch) -> Option<SimTime> {
        if epoch != self.epoch {
            return None;
        }
        // Re-derive the winner set from the schedule instant. The
        // epoch match guarantees no medium mutation intervened, and
        // topology queries are pure functions of the query time, so
        // this reproduces the `next_resolution` computation exactly.
        let base = self.sched_base;
        let mut eligible: Vec<(NodeId, u32, SimTime)> = Vec::new();
        for node in 0..self.n() {
            let Some(b) = self.backoffs[node] else {
                continue;
            };
            if self.blocked(base, node) {
                continue; // frozen: still senses a foreign transmission
            }
            eligible.push((node, b, self.fire_at(base, node, b)));
        }
        if !eligible.iter().any(|&(_, _, fire)| fire == now) {
            return None; // defensive: no contender fires at this instant
        }
        let mut txs = Vec::new();
        for (node, b, fire) in eligible {
            if fire == now {
                let pending = self.queues[node]
                    .pop_front()
                    .expect("contending node has a head frame");
                self.backoffs[node] = None;
                txs.push((node, pending));
            } else {
                debug_assert!(fire > now, "missed a resolution instant");
                // Freeze rule: slots elapsed since this node's own
                // DIFS expiry are consumed.
                let difs_end = base.max(self.free_at[node]) + self.phy.difs;
                let consumed = if now > difs_end {
                    (now.as_nanos() - difs_end.as_nanos()) / self.phy.slot.as_nanos() as u64
                } else {
                    0
                };
                self.backoffs[node] = Some(b - (consumed as u32).min(b));
            }
        }
        let airtime = txs
            .iter()
            .map(|(_, p)| self.airtime_of(&p.frame))
            .max()
            .expect("at least one transmission");
        let end = now + airtime;

        // Mark mutual garbling against every group already in flight,
        // and hold off everyone who can sense a new transmitter.
        let n = self.n();
        let mut garbled = vec![false; n];
        for &(src, _) in &txs {
            for g in 0..self.groups.len() {
                for j in 0..n {
                    if self.topology.interferes(now, src, j) {
                        self.groups[g].garbled[j] = true;
                    }
                }
            }
            for j in 0..n {
                if self.topology.interferes(now, src, j) {
                    self.free_at[j] = self.free_at[j].max(end);
                }
            }
        }
        for g in 0..self.groups.len() {
            for t in 0..self.groups[g].txs.len() {
                let src = self.groups[g].txs[t].0;
                for (j, flag) in garbled.iter_mut().enumerate() {
                    if self.topology.interferes(now, src, j) {
                        *flag = true;
                    }
                }
            }
        }

        self.groups.push(Group {
            txs,
            end,
            busy: airtime,
            garbled,
        });
        self.epoch += 1;
        Some(end)
    }

    pub(super) fn finish_tx_into(&mut self, now: SimTime, done: &mut Vec<CompletedTx>) {
        // One TxEnd event exists per group; pop the earliest-ending one
        // (FIFO among equals, matching event-queue push order).
        let idx = self
            .groups
            .iter()
            .enumerate()
            .min_by_key(|(i, g)| (g.end, *i))
            .map(|(i, _)| i)
            .expect("finish_tx with no tx in flight");
        let group = self.groups.remove(idx);
        debug_assert_eq!(now, group.end, "TxEnd event at the wrong time");
        self.last_busy = group.busy;
        let n = self.n();
        let sources: Vec<NodeId> = group.txs.iter().map(|(s, _)| *s).collect();
        done.clear();
        done.reserve(group.txs.len());
        for (node, pending) in group.txs {
            let mut heard: Vec<NodeId> = Vec::new();
            let mut all = true;
            let mut garbled_any = false;
            for rx in 0..n {
                if rx == node {
                    continue;
                }
                if sources.contains(&rx) {
                    all = false; // half-duplex: a co-group transmitter hears nothing
                    continue;
                }
                if !self.topology.hears(now, node, rx) {
                    // Out of decode range: the frame simply never
                    // reaches `rx` — interference there is irrelevant.
                    all = false;
                    continue;
                }
                let mut garbled = group.garbled[rx];
                if !garbled {
                    // A co-group transmitter in range garbles this
                    // frame at `rx` (the legacy collision, localized).
                    for &other in &sources {
                        if other != node && self.topology.interferes(now, other, rx) {
                            garbled = true;
                            break;
                        }
                    }
                }
                if garbled {
                    garbled_any = true;
                    all = false;
                    continue;
                }
                heard.push(rx);
            }
            // A simultaneous co-group transmitter within carrier-sense
            // range is a collision even when no third station observed
            // it (n = 2): the channel event happened, which keeps the
            // collision count identical to the legacy arbiter's.
            let collision = garbled_any
                || sources
                    .iter()
                    .any(|&other| other != node && self.topology.interferes(now, other, node));
            let reception = if all {
                Reception::Everyone
            } else if heard.is_empty() {
                Reception::Nobody
            } else {
                Reception::Subset(heard)
            };
            done.push(CompletedTx {
                node,
                frame: pending.frame,
                attempt: pending.attempt,
                collision,
                reception,
            });
        }
        self.epoch += 1;
    }

    pub(super) fn last_busy(&self) -> Duration {
        self.last_busy
    }

    /// Identical to the legacy `retry_unicast` (same RNG draw pattern).
    pub(super) fn retry_unicast(
        &mut self,
        node: NodeId,
        frame: Frame,
        attempt: u32,
        rng: &mut dyn RngCore,
    ) -> bool {
        self.epoch += 1;
        let next_attempt = attempt + 1;
        if next_attempt > self.phy.retry_limit {
            self.after_head_done(node, rng);
            return false;
        }
        self.queues[node].push_front(PendingTx {
            frame,
            attempt: next_attempt,
        });
        self.backoffs[node] = Some(self.draw_backoff(next_attempt, rng));
        true
    }

    /// Identical to the legacy `after_head_done` (same RNG draw
    /// pattern).
    pub(super) fn after_head_done(&mut self, node: NodeId, rng: &mut dyn RngCore) {
        self.epoch += 1;
        if let Some(head) = self.queues[node].front() {
            let attempt = head.attempt;
            self.backoffs[node] = Some(self.draw_backoff(attempt, rng));
        } else {
            self.backoffs[node] = None;
        }
    }

    pub(super) fn queue_len(&self, node: NodeId) -> usize {
        self.queues[node].len()
    }

    pub(super) fn clear_queue(&mut self, node: NodeId) -> usize {
        self.epoch += 1;
        self.backoffs[node] = None;
        let dropped = self.queues[node].len();
        self.queues[node].clear();
        dropped
    }

    fn airtime_of(&self, frame: &Frame) -> Duration {
        match frame.addressing {
            Addressing::Broadcast => self.phy.broadcast_airtime(frame.mac_payload_len()),
            Addressing::Unicast(_) => self.phy.unicast_exchange_airtime(frame.mac_payload_len()),
        }
    }

    fn draw_backoff(&self, attempt: u32, rng: &mut dyn RngCore) -> u32 {
        let cw = self.phy.contention_window(attempt);
        rng.next_u32() % (cw + 1)
    }
}
