//! The original single-broadcast-domain arbiter, preserved verbatim
//! behind `TURQUOIS_LEGACY_MEDIUM=1` as the byte-identity oracle for
//! the topology-aware engine (same discipline as the legacy event
//! queue and the legacy message stores; see DESIGN.md §11).
//!
//! Everything here models exactly one collision domain: a single
//! channel-free time, at most one in-flight transmission group, and
//! every receiver hearing every non-collided frame.

use super::{CompletedTx, Epoch, PendingTx, Reception};
use crate::config::PhyConfig;
use crate::frame::{Addressing, Frame, NodeId};
use crate::time::SimTime;
use rand::RngCore;
use std::collections::VecDeque;
use std::time::Duration;

#[derive(Debug)]
struct InFlight {
    txs: Vec<(NodeId, PendingTx)>,
    end: SimTime,
}

/// The single-domain shared-medium arbiter (see the crate-level model
/// description in [`crate::medium`]).
#[derive(Debug)]
pub(super) struct LegacyMedium {
    phy: PhyConfig,
    free_at: SimTime,
    in_flight: Option<InFlight>,
    queues: Vec<VecDeque<PendingTx>>,
    /// Remaining backoff slots of each node's head frame; `None` when the
    /// node has nothing to contend with.
    backoffs: Vec<Option<u32>>,
    epoch: Epoch,
    /// Duration of the transmission that just finished (for stats).
    last_busy: Duration,
}

impl LegacyMedium {
    pub(super) fn new(n: usize, phy: PhyConfig) -> Self {
        LegacyMedium {
            phy,
            free_at: SimTime::ZERO,
            in_flight: None,
            queues: vec![VecDeque::new(); n],
            backoffs: vec![None; n],
            epoch: 0,
            last_busy: Duration::ZERO,
        }
    }

    pub(super) fn phy(&self) -> &PhyConfig {
        &self.phy
    }

    pub(super) fn epoch(&self) -> Epoch {
        self.epoch
    }

    pub(super) fn transmitting(&self) -> bool {
        self.in_flight.is_some()
    }

    pub(super) fn enqueue(&mut self, frame: Frame, rng: &mut dyn RngCore) -> bool {
        if let Addressing::Unicast(dst) = frame.addressing {
            assert_ne!(dst, frame.src, "self-unicast must not reach the medium");
        }
        let node = frame.src;
        if self.queues[node].len() >= self.phy.tx_queue_cap {
            self.epoch += 1;
            return false;
        }
        self.queues[node].push_back(PendingTx { frame, attempt: 0 });
        if self.backoffs[node].is_none() && self.queues[node].len() == 1 {
            self.backoffs[node] = Some(self.draw_backoff(0, rng));
        }
        self.epoch += 1;
        true
    }

    pub(super) fn next_resolution(&self, now: SimTime) -> Option<(SimTime, Epoch)> {
        if self.in_flight.is_some() {
            return None;
        }
        let min = self.backoffs.iter().flatten().min()?;
        let base = now.max(self.free_at);
        let at = base + self.phy.difs + self.phy.slot * *min;
        Some((at, self.epoch))
    }

    pub(super) fn resolve(&mut self, now: SimTime, epoch: Epoch) -> Option<SimTime> {
        if epoch != self.epoch || self.in_flight.is_some() {
            return None;
        }
        let min = *self.backoffs.iter().flatten().min()?;
        let mut txs = Vec::new();
        for node in 0..self.backoffs.len() {
            match self.backoffs[node] {
                Some(b) if b == min => {
                    let pending = self.queues[node]
                        .pop_front()
                        .expect("contending node has a head frame");
                    self.backoffs[node] = None;
                    txs.push((node, pending));
                }
                Some(b) => {
                    // Freeze rule: the elapsed slots are consumed.
                    self.backoffs[node] = Some(b - min);
                }
                None => {}
            }
        }
        debug_assert!(!txs.is_empty());
        let airtime = txs
            .iter()
            .map(|(_, p)| self.airtime_of(&p.frame))
            .max()
            .expect("at least one transmission");
        let end = now + airtime;
        self.last_busy = airtime;
        self.in_flight = Some(InFlight { txs, end });
        self.epoch += 1;
        Some(end)
    }

    pub(super) fn finish_tx_into(&mut self, now: SimTime, done: &mut Vec<CompletedTx>) {
        let fl = self.in_flight.take().expect("finish_tx with no tx in flight");
        debug_assert_eq!(now, fl.end, "TxEnd event at the wrong time");
        self.free_at = fl.end;
        let collision = fl.txs.len() > 1;
        done.clear();
        done.reserve(fl.txs.len());
        for (node, pending) in fl.txs {
            done.push(CompletedTx {
                node,
                frame: pending.frame,
                attempt: pending.attempt,
                collision,
                reception: if collision {
                    Reception::Nobody
                } else {
                    Reception::Everyone
                },
            });
        }
        self.epoch += 1;
    }

    pub(super) fn last_busy(&self) -> Duration {
        self.last_busy
    }

    pub(super) fn retry_unicast(
        &mut self,
        node: NodeId,
        frame: Frame,
        attempt: u32,
        rng: &mut dyn RngCore,
    ) -> bool {
        self.epoch += 1;
        let next_attempt = attempt + 1;
        if next_attempt > self.phy.retry_limit {
            self.after_head_done(node, rng);
            return false;
        }
        self.queues[node].push_front(PendingTx {
            frame,
            attempt: next_attempt,
        });
        self.backoffs[node] = Some(self.draw_backoff(next_attempt, rng));
        true
    }

    pub(super) fn after_head_done(&mut self, node: NodeId, rng: &mut dyn RngCore) {
        self.epoch += 1;
        if let Some(head) = self.queues[node].front() {
            let attempt = head.attempt;
            self.backoffs[node] = Some(self.draw_backoff(attempt, rng));
        } else {
            self.backoffs[node] = None;
        }
    }

    pub(super) fn queue_len(&self, node: NodeId) -> usize {
        self.queues[node].len()
    }

    pub(super) fn clear_queue(&mut self, node: NodeId) -> usize {
        self.epoch += 1;
        self.backoffs[node] = None;
        let dropped = self.queues[node].len();
        self.queues[node].clear();
        dropped
    }

    fn airtime_of(&self, frame: &Frame) -> Duration {
        match frame.addressing {
            Addressing::Broadcast => self.phy.broadcast_airtime(frame.mac_payload_len()),
            Addressing::Unicast(_) => {
                // Data + SIFS + ACK (or the equivalent ACK-timeout wait).
                self.phy.unicast_exchange_airtime(frame.mac_payload_len())
            }
        }
    }

    fn draw_backoff(&self, attempt: u32, rng: &mut dyn RngCore) -> u32 {
        let cw = self.phy.contention_window(attempt);
        // cw + 1 is a power of two for 802.11 windows, so the modulo is
        // exactly uniform (and trivially scriptable from tests).
        rng.next_u32() % (cw + 1)
    }
}
