//! Frames: the unit of transmission on the simulated medium.

use bytes::Bytes;
use std::fmt;

/// Identifier of a node in the simulated network (index into the node
/// table).
pub type NodeId = usize;

/// How a frame is addressed.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum Addressing {
    /// Link-layer broadcast: every node in range receives the frame; the
    /// MAC sends it once at the basic rate with **no acknowledgement or
    /// retransmission** (802.11 group-addressed frames).
    Broadcast,
    /// Unicast to one node; the MAC uses the full data rate and the
    /// ACK/retransmission machinery of the DCF.
    Unicast(NodeId),
}

/// A link-layer frame as handed to the medium.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Destination.
    pub addressing: Addressing,
    /// Application payload carried by the frame (what the receiver's
    /// `on_frame` sees).
    pub payload: Bytes,
    /// Bytes of protocol overhead *above* the MAC layer (UDP/IP or TCP/IP
    /// headers) that occupy airtime but are not part of `payload`.
    pub transport_overhead: usize,
}

impl Frame {
    /// Total bytes the MAC payload occupies on the air (application
    /// payload plus transport overhead).
    pub fn mac_payload_len(&self) -> usize {
        self.payload.len() + self.transport_overhead
    }

    /// Whether this frame is link-layer broadcast.
    pub fn is_broadcast(&self) -> bool {
        self.addressing == Addressing::Broadcast
    }
}

/// A frame as seen by the receiving application.
#[derive(Clone)]
pub struct ReceivedFrame {
    /// Sending node (as reported by the link layer — trustworthy in the
    /// simulation; protocols must still *authenticate* contents).
    pub src: NodeId,
    /// How the frame was addressed.
    pub addressing: Addressing,
    /// Application payload.
    pub payload: Bytes,
}

impl fmt::Debug for ReceivedFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReceivedFrame")
            .field("src", &self.src)
            .field("addressing", &self.addressing)
            .field("payload_len", &self.payload.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_payload_includes_overhead() {
        let f = Frame {
            src: 0,
            addressing: Addressing::Broadcast,
            payload: Bytes::from_static(b"0123456789"),
            transport_overhead: 28,
        };
        assert_eq!(f.mac_payload_len(), 38);
        assert!(f.is_broadcast());
    }

    #[test]
    fn unicast_is_not_broadcast() {
        let f = Frame {
            src: 1,
            addressing: Addressing::Unicast(2),
            payload: Bytes::new(),
            transport_overhead: 40,
        };
        assert!(!f.is_broadcast());
    }

    #[test]
    fn received_frame_debug_shows_len() {
        let r = ReceivedFrame {
            src: 3,
            addressing: Addressing::Broadcast,
            payload: Bytes::from_static(b"abc"),
        };
        let s = format!("{r:?}");
        assert!(s.contains("payload_len: 3"), "{s}");
    }
}
