//! Physical- and MAC-layer configuration of the simulated 802.11b
//! network.

use std::time::Duration;

/// 802.11b DCF timing and rate parameters.
///
/// Defaults model the paper's testbed: 802.11b with long PLCP preamble,
/// broadcast (group-addressed) frames at the 2 Mb/s basic rate, unicast
/// data at 11 Mb/s, control responses at 2 Mb/s.
///
/// # Example
///
/// ```
/// use wireless_net::config::PhyConfig;
/// let phy = PhyConfig::default();
/// // A 100-byte broadcast frame takes PLCP preamble + payload airtime.
/// let t = phy.broadcast_airtime(100);
/// assert!(t > phy.plcp_overhead());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhyConfig {
    /// Backoff slot time.
    pub slot: Duration,
    /// Short inter-frame space (precedes ACKs).
    pub sifs: Duration,
    /// DCF inter-frame space (precedes contention).
    pub difs: Duration,
    /// PLCP preamble + header time (long preamble: 192 µs).
    pub plcp: Duration,
    /// Rate for group-addressed (broadcast) data frames, bits per µs.
    pub broadcast_rate_mbps: f64,
    /// Rate for unicast data frames, bits per µs.
    pub unicast_rate_mbps: f64,
    /// Rate for control (ACK) frames, bits per µs.
    pub control_rate_mbps: f64,
    /// MAC header + FCS bytes added to every data frame.
    pub mac_overhead_bytes: usize,
    /// Bytes of an ACK control frame.
    pub ack_bytes: usize,
    /// Minimum contention window (slots − 1); 802.11b: 31.
    pub cw_min: u32,
    /// Maximum contention window; 802.11b: 1023.
    pub cw_max: u32,
    /// MAC retransmission limit for unicast frames.
    pub retry_limit: u32,
    /// One-way propagation + radio turnaround, effectively negligible at
    /// single-hop range but kept for completeness.
    pub propagation: Duration,
    /// Per-node transmit-queue capacity (device + socket buffer). When
    /// the channel saturates, further sends are tail-dropped — UDP
    /// datagrams silently vanish, exactly as a real socket buffer
    /// behaves; reliable transports recover through retransmission. The
    /// default is shallow: protocols whose state goes stale in
    /// milliseconds are better served by fresh frames than deep buffers
    /// (bufferbloat), and the loss-sweep ablation covers deeper queues.
    pub tx_queue_cap: usize,
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig {
            slot: Duration::from_micros(20),
            sifs: Duration::from_micros(10),
            difs: Duration::from_micros(50),
            plcp: Duration::from_micros(192),
            broadcast_rate_mbps: 2.0,
            unicast_rate_mbps: 11.0,
            control_rate_mbps: 2.0,
            mac_overhead_bytes: 34,
            ack_bytes: 14,
            cw_min: 31,
            cw_max: 1023,
            retry_limit: 7,
            propagation: Duration::from_nanos(500),
            tx_queue_cap: 4,
        }
    }
}

impl PhyConfig {
    /// PLCP preamble + header duration.
    pub fn plcp_overhead(&self) -> Duration {
        self.plcp
    }

    /// Airtime of a broadcast data frame carrying `mac_payload` bytes
    /// above the MAC layer.
    pub fn broadcast_airtime(&self, mac_payload: usize) -> Duration {
        self.data_airtime(mac_payload, self.broadcast_rate_mbps)
    }

    /// Airtime of a unicast data frame carrying `mac_payload` bytes above
    /// the MAC layer (data only, excluding SIFS + ACK).
    pub fn unicast_airtime(&self, mac_payload: usize) -> Duration {
        self.data_airtime(mac_payload, self.unicast_rate_mbps)
    }

    /// Airtime of an ACK control frame, including its PLCP overhead.
    pub fn ack_airtime(&self) -> Duration {
        self.plcp + bits_duration(self.ack_bytes * 8, self.control_rate_mbps)
    }

    /// Full cost of a successful unicast exchange: data, SIFS, ACK.
    pub fn unicast_exchange_airtime(&self, mac_payload: usize) -> Duration {
        self.unicast_airtime(mac_payload) + self.sifs + self.ack_airtime()
    }

    /// Contention window for transmission `attempt` (0-based):
    /// `min(cw_max, (cw_min + 1) << attempt) - 1` slots, per the 802.11
    /// binary exponential backoff.
    pub fn contention_window(&self, attempt: u32) -> u32 {
        let scaled = (self.cw_min as u64 + 1) << attempt.min(10);
        (scaled.min(self.cw_max as u64 + 1) - 1) as u32
    }

    fn data_airtime(&self, mac_payload: usize, rate_mbps: f64) -> Duration {
        let bits = (mac_payload + self.mac_overhead_bytes) * 8;
        self.plcp + bits_duration(bits, rate_mbps)
    }
}

fn bits_duration(bits: usize, rate_mbps: f64) -> Duration {
    // rate in bits per microsecond == Mb/s.
    Duration::from_nanos((bits as f64 * 1_000.0 / rate_mbps).round() as u64)
}

/// Transport-layer overhead constants (bytes on the wire above the MAC).
pub mod overhead {
    /// LLC/SNAP + IP + UDP headers on an 802.11 frame.
    pub const UDP: usize = 8 + 20 + 8;
    /// LLC/SNAP + IP + TCP headers on an 802.11 frame.
    pub const TCP: usize = 8 + 20 + 20;
    /// A bare TCP ACK segment (no payload).
    pub const TCP_ACK_SEGMENT: usize = TCP;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_formula_broadcast() {
        let phy = PhyConfig::default();
        // 100 B payload + 34 B MAC = 134 B = 1072 bits at 2 Mb/s = 536 µs,
        // plus 192 µs PLCP.
        assert_eq!(
            phy.broadcast_airtime(100),
            Duration::from_micros(192 + 536)
        );
    }

    #[test]
    fn airtime_formula_unicast_faster_than_broadcast() {
        let phy = PhyConfig::default();
        assert!(phy.unicast_airtime(100) < phy.broadcast_airtime(100));
    }

    #[test]
    fn ack_airtime() {
        let phy = PhyConfig::default();
        // 14 B * 8 = 112 bits at 2 Mb/s = 56 µs + 192 µs PLCP.
        assert_eq!(phy.ack_airtime(), Duration::from_micros(248));
    }

    #[test]
    fn unicast_exchange_includes_ack() {
        let phy = PhyConfig::default();
        let exchange = phy.unicast_exchange_airtime(100);
        assert_eq!(
            exchange,
            phy.unicast_airtime(100) + phy.sifs + phy.ack_airtime()
        );
    }

    #[test]
    fn contention_window_doubles_and_caps() {
        let phy = PhyConfig::default();
        assert_eq!(phy.contention_window(0), 31);
        assert_eq!(phy.contention_window(1), 63);
        assert_eq!(phy.contention_window(2), 127);
        assert_eq!(phy.contention_window(5), 1023);
        assert_eq!(phy.contention_window(9), 1023);
        assert_eq!(phy.contention_window(63), 1023); // no overflow
    }

    #[test]
    fn overhead_constants() {
        assert_eq!(overhead::UDP, 36);
        assert_eq!(overhead::TCP, 48);
    }
}
