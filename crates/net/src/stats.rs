//! Network-level counters collected during a simulation run.

use std::time::Duration;

/// Aggregate statistics for one simulation run.
///
/// Message-complexity experiments (paper §7, O(n)/O(n²)/O(n³) discussion)
/// read these counters directly.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Broadcast data frames put on the air (including collided ones).
    pub broadcast_frames_sent: u64,
    /// Unicast data frame transmissions put on the air, **including MAC
    /// retransmissions**.
    pub unicast_frames_sent: u64,
    /// Unicast application sends accepted (before MAC retransmissions).
    pub unicast_sends: u64,
    /// Broadcast application sends accepted.
    pub broadcast_sends: u64,
    /// Transmissions that ended in a collision.
    pub collisions: u64,
    /// Deliveries suppressed by the injected fault model.
    pub fault_drops: u64,
    /// Unicast frames abandoned after exhausting the MAC retry limit.
    pub mac_failures: u64,
    /// Frames tail-dropped because a node's transmit queue was full
    /// (channel saturation).
    pub queue_drops: u64,
    /// Deliveries and transmissions suppressed because the target node
    /// was crashed by a [`crate::fault::CrashSchedule`].
    pub crash_drops: u64,
    /// Frames delivered to an application (per-receiver count).
    pub deliveries: u64,
    /// Events processed by the simulator loop ([`crate::sim::Simulator::step`]).
    /// A pure host-side throughput counter: identical across event-queue
    /// engines (`TURQUOIS_LEGACY_QUEUE`), which `simcore_bench` asserts.
    pub events_processed: u64,
    /// Loopback (self) deliveries, which bypass the radio.
    pub loopback_deliveries: u64,
    /// Total time the channel was busy with transmissions.
    pub channel_busy: Duration,
    /// Total application-payload bytes put on the air.
    pub payload_bytes_sent: u64,
    /// Per-node count of data-frame transmissions.
    pub per_node_tx: Vec<u64>,
    /// Per-node count of application deliveries.
    pub per_node_rx: Vec<u64>,
    /// Per-node count of transmit-queue tail drops (sums to
    /// [`NetStats::queue_drops`]); the congestion fingerprint a
    /// [`crate::supervise::StallReport`] points at.
    pub per_node_queue_drops: Vec<u64>,
}

impl NetStats {
    /// Creates zeroed statistics for `n` nodes.
    pub fn new(n: usize) -> Self {
        NetStats {
            per_node_tx: vec![0; n],
            per_node_rx: vec![0; n],
            per_node_queue_drops: vec![0; n],
            ..NetStats::default()
        }
    }

    /// Total data-frame transmissions (broadcast + unicast, including
    /// retransmissions).
    pub fn frames_sent(&self) -> u64 {
        self.broadcast_frames_sent + self.unicast_frames_sent
    }

    /// Fraction of transmissions lost to collisions, in `[0, 1]`.
    pub fn collision_rate(&self) -> f64 {
        let sent = self.frames_sent();
        if sent == 0 {
            0.0
        } else {
            self.collisions as f64 / sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sizes_per_node_vectors() {
        let s = NetStats::new(5);
        assert_eq!(s.per_node_tx.len(), 5);
        assert_eq!(s.per_node_rx.len(), 5);
        assert_eq!(s.per_node_queue_drops.len(), 5);
    }

    #[test]
    fn frames_sent_sums_kinds() {
        let s = NetStats {
            broadcast_frames_sent: 3,
            unicast_frames_sent: 4,
            ..NetStats::new(1)
        };
        assert_eq!(s.frames_sent(), 7);
    }

    #[test]
    fn collision_rate_handles_zero() {
        assert_eq!(NetStats::new(1).collision_rate(), 0.0);
        let s = NetStats {
            broadcast_frames_sent: 10,
            collisions: 5,
            ..NetStats::new(1)
        };
        assert!((s.collision_rate() - 0.5).abs() < 1e-12);
    }
}
