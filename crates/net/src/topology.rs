//! Radio topology: who hears whom, and who interferes with whom.
//!
//! The paper's evaluation lives in a single one-hop broadcast domain,
//! but Turquois targets *dynamic* ad hoc networks — partitions that
//! form and heal, nodes that drift out of range, hidden terminals. The
//! [`Topology`] trait is the seam: the medium asks it, per query
//! instant, whether a transmission from `src` is **decodable** at `dst`
//! ([`Topology::hears`], the communication range) and whether it is
//! **detectable** at `dst` ([`Topology::interferes`], the carrier-sense
//! / interference range — always at least the communication range).
//! Everything else (CSMA/CA, queues, retries) stays in
//! [`crate::medium`].
//!
//! Three regimes beyond the default single domain, all deterministic
//! functions of the run seed and the query time — no OS entropy, no
//! wall clocks:
//!
//! * [`PartitionSchedule`] — split the node set into groups at a
//!   simtime, heal at a simtime. Group membership *is* the topology:
//!   cross-group transmissions are neither heard nor sensed.
//! * [`TopologySpec::Spatial`] — static seeded positions in a square,
//!   disk communication/interference ranges. Nodes outside each
//!   other's interference range cannot carrier-sense each other, which
//!   is what produces hidden-terminal collisions at the MAC.
//! * [`TopologySpec::Waypoint`] — random-waypoint mobility; positions
//!   are re-evaluated on a configurable clock tick (queries between
//!   ticks see the last tick's geometry), so reachability changes at
//!   discrete, reproducible instants.
//!
//! Implementations must be symmetric (`hears(a, b) == hears(b, a)`)
//! and reflexive for interference (`interferes(x, x)` is `true`: a
//! transmitting radio always senses — and deafens — itself).

use crate::frame::NodeId;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Answers reachability and interference queries for one simulation.
///
/// Methods take `&mut self` so mobile topologies can advance their
/// internal state lazily; query times are non-decreasing over a run
/// (the simulator's clock is monotonic).
pub trait Topology {
    /// `true` when a frame transmitted by `src` at `now` is decodable
    /// at `dst` (absent collisions and injected faults).
    fn hears(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> bool;

    /// `true` when energy transmitted by `src` at `now` is detectable
    /// at `dst` — carrier sense blocks `dst` from starting its own
    /// transmission, and a foreign detectable transmission garbles any
    /// frame `dst` is currently decoding. Must imply nothing about
    /// decodability, must contain the `hears` relation, and must be
    /// `true` for `src == dst`.
    fn interferes(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> bool;

    /// One-line human description for reports and stall diagnostics.
    fn describe(&self) -> String;
}

/// Plain-data topology selector, carried by
/// [`crate::sim::SimConfig`]; [`TopologySpec::build`] instantiates the
/// actual [`Topology`] from the run seed.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum TopologySpec {
    /// Every node hears (and senses) every other node — the paper's
    /// one-hop broadcast domain and the default.
    #[default]
    SingleDomain,
    /// Scheduled partition: groups split at a simtime and heal at a
    /// simtime ([`PartitionSchedule`]).
    Partition(PartitionSchedule),
    /// Static seeded positions in a `side_m × side_m` square with disk
    /// communication/interference ranges (meters).
    Spatial {
        /// Side of the deployment square, meters.
        side_m: f64,
        /// Communication (decode) range, meters.
        comm_range_m: f64,
        /// Interference (carrier-sense) range, meters; must be ≥ the
        /// communication range.
        interference_range_m: f64,
    },
    /// Random-waypoint mobility over the same disk model: each node
    /// walks to seeded waypoints at `speed_mps`, pausing `pause`
    /// between legs; geometry is re-evaluated every `tick`.
    Waypoint {
        /// Side of the deployment square, meters.
        side_m: f64,
        /// Communication (decode) range, meters.
        comm_range_m: f64,
        /// Interference (carrier-sense) range, meters; must be ≥ the
        /// communication range.
        interference_range_m: f64,
        /// Walking speed, meters per second (> 0).
        speed_mps: f64,
        /// Pause at each waypoint.
        pause: Duration,
        /// Reachability re-evaluation interval (> 0).
        tick: Duration,
    },
}

impl TopologySpec {
    /// `true` for the default one-hop broadcast domain.
    pub fn is_single_domain(&self) -> bool {
        matches!(self, TopologySpec::SingleDomain)
    }

    /// Instantiates the topology for `n` nodes. All randomness derives
    /// from `seed` (never from the simulator's boot RNG, so adding a
    /// topology does not disturb node/MAC RNG streams).
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters: a partition schedule that does
    /// not cover `0..n` exactly, interference range below
    /// communication range, or non-positive speed/tick.
    pub fn build(&self, n: usize, seed: u64) -> Box<dyn Topology> {
        match self {
            TopologySpec::SingleDomain => Box::new(SingleDomain),
            TopologySpec::Partition(schedule) => Box::new(schedule.build(n)),
            TopologySpec::Spatial {
                side_m,
                comm_range_m,
                interference_range_m,
            } => {
                let mut rng = StdRng::seed_from_u64(seed ^ SPATIAL_SALT);
                let pos = (0..n)
                    .map(|_| (rng.gen_range(0.0..*side_m), rng.gen_range(0.0..*side_m)))
                    .collect();
                Box::new(Disk::new(pos, *comm_range_m, *interference_range_m))
            }
            TopologySpec::Waypoint {
                side_m,
                comm_range_m,
                interference_range_m,
                speed_mps,
                pause,
                tick,
            } => Box::new(Waypoint::new(
                n,
                seed,
                *side_m,
                *comm_range_m,
                *interference_range_m,
                *speed_mps,
                *pause,
                *tick,
            )),
        }
    }
}

/// Seed salt for static spatial placement.
const SPATIAL_SALT: u64 = 0x0d15_7a6c_e5a1;
/// Seed salt for waypoint mobility streams.
const WAYPOINT_SALT: u64 = 0x00a0_b11e_5a17;

/// The default topology: one broadcast domain, everyone in range.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleDomain;

impl Topology for SingleDomain {
    fn hears(&mut self, _now: SimTime, _src: NodeId, _dst: NodeId) -> bool {
        true
    }
    fn interferes(&mut self, _now: SimTime, _src: NodeId, _dst: NodeId) -> bool {
        true
    }
    fn describe(&self) -> String {
        "single broadcast domain".into()
    }
}

/// A scheduled network partition: the node set splits into groups at
/// one simtime and heals (or re-splits) at another. Composable with
/// the loss/jamming fault models and [`crate::fault::CrashSchedule`]
/// — the topology decides who *can* hear, the fault model then drops
/// among those who would.
///
/// Built like [`crate::fault::CrashSchedule`]: chain
/// [`PartitionSchedule::split_at`] / [`PartitionSchedule::heal_at`],
/// hand the schedule to [`TopologySpec::Partition`]. Each `split_at`
/// must list every node exactly once; validation happens in
/// [`TopologySpec::build`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionSchedule {
    /// `(at, grouping)`; `None` = fully connected (healed).
    transitions: Vec<(SimTime, Option<Vec<Vec<NodeId>>>)>,
}

impl PartitionSchedule {
    /// An empty schedule (fully connected forever).
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits the network into `groups` at simtime `at`. Nodes in
    /// different groups neither hear nor sense each other from `at`
    /// until the next transition.
    pub fn split_at(mut self, at: SimTime, groups: Vec<Vec<NodeId>>) -> Self {
        self.transitions.push((at, Some(groups)));
        self
    }

    /// Restores full connectivity at simtime `at`.
    pub fn heal_at(mut self, at: SimTime) -> Self {
        self.transitions.push((at, None));
        self
    }

    /// `true` when no transition is scheduled.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// One-line description, e.g. `split@5ms 11|5, heal@1s`.
    pub fn describe(&self) -> String {
        if self.transitions.is_empty() {
            return "no partition".into();
        }
        let mut sorted = self.transitions.clone();
        sorted.sort_by_key(|(at, _)| *at);
        sorted
            .iter()
            .map(|(at, grouping)| match grouping {
                Some(groups) => {
                    let shape = groups
                        .iter()
                        .map(|g| g.len().to_string())
                        .collect::<Vec<_>>()
                        .join("|");
                    format!("split@{at} {shape}")
                }
                None => format!("heal@{at}"),
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Compiles the schedule for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics when a split does not cover `0..n` exactly once.
    fn build(&self, n: usize) -> Partitioned {
        let mut changes: Vec<(SimTime, Option<Vec<usize>>)> = self
            .transitions
            .iter()
            .map(|(at, grouping)| {
                let compiled = grouping.as_ref().map(|groups| {
                    let mut of = vec![usize::MAX; n];
                    for (gid, members) in groups.iter().enumerate() {
                        for &node in members {
                            assert!(node < n, "partition group member {node} out of range");
                            assert_eq!(
                                of[node],
                                usize::MAX,
                                "node {node} appears in more than one partition group"
                            );
                            of[node] = gid;
                        }
                    }
                    assert!(
                        of.iter().all(|&g| g != usize::MAX),
                        "a partition split must cover every node: {of:?}"
                    );
                    of
                });
                (*at, compiled)
            })
            .collect();
        changes.sort_by_key(|(at, _)| *at);
        Partitioned {
            describe: self.describe(),
            changes,
        }
    }
}

/// Compiled [`PartitionSchedule`]: group id per node per epoch.
#[derive(Clone, Debug)]
struct Partitioned {
    describe: String,
    /// Sorted transitions; the entry active at `now` is the last one
    /// with `at <= now` (fully connected before the first).
    changes: Vec<(SimTime, Option<Vec<usize>>)>,
}

impl Partitioned {
    fn connected(&self, now: SimTime, a: NodeId, b: NodeId) -> bool {
        let idx = self.changes.partition_point(|(at, _)| *at <= now);
        match idx.checked_sub(1).and_then(|i| self.changes[i].1.as_ref()) {
            None => true,
            Some(of) => of[a] == of[b],
        }
    }
}

impl Topology for Partitioned {
    fn hears(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        self.connected(now, src, dst)
    }
    fn interferes(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.connected(now, src, dst)
    }
    fn describe(&self) -> String {
        self.describe.clone()
    }
}

/// Static disk model over fixed positions (meters).
#[derive(Clone, Debug)]
pub struct Disk {
    pos: Vec<(f64, f64)>,
    comm2: f64,
    intf2: f64,
}

impl Disk {
    /// Builds a disk topology over explicit positions — the
    /// constructor tests and hand-crafted geometries (e.g. a
    /// hidden-terminal line) use.
    ///
    /// # Panics
    ///
    /// Panics when the interference range is below the communication
    /// range.
    pub fn new(pos: Vec<(f64, f64)>, comm_range_m: f64, interference_range_m: f64) -> Disk {
        assert!(
            interference_range_m >= comm_range_m,
            "interference range must contain the communication range"
        );
        Disk {
            pos,
            comm2: comm_range_m * comm_range_m,
            intf2: interference_range_m * interference_range_m,
        }
    }

    fn dist2(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.pos[a];
        let (bx, by) = self.pos[b];
        let (dx, dy) = (ax - bx, ay - by);
        dx * dx + dy * dy
    }
}

impl Topology for Disk {
    fn hears(&mut self, _now: SimTime, src: NodeId, dst: NodeId) -> bool {
        self.dist2(src, dst) <= self.comm2
    }
    fn interferes(&mut self, _now: SimTime, src: NodeId, dst: NodeId) -> bool {
        self.dist2(src, dst) <= self.intf2
    }
    fn describe(&self) -> String {
        format!(
            "static disk (n={}, comm {:.0}m, intf {:.0}m)",
            self.pos.len(),
            self.comm2.sqrt(),
            self.intf2.sqrt()
        )
    }
}

/// One node's current random-waypoint leg.
#[derive(Clone, Debug)]
struct Leg {
    rng: StdRng,
    /// Leg origin and target, meters.
    from: (f64, f64),
    to: (f64, f64),
    /// Walking starts at `depart` and arrives at `arrive`; the node
    /// then pauses until `depart` of the next leg.
    depart: SimTime,
    arrive: SimTime,
}

/// Random-waypoint mobility with disk ranges, quantized to a clock
/// tick: all queries inside one tick see the tick-start geometry.
#[derive(Clone, Debug)]
pub struct Waypoint {
    legs: Vec<Leg>,
    side: f64,
    comm2: f64,
    intf2: f64,
    speed: f64,
    pause: Duration,
    tick: Duration,
}

impl Waypoint {
    #[allow(clippy::too_many_arguments)]
    fn new(
        n: usize,
        seed: u64,
        side: f64,
        comm: f64,
        intf: f64,
        speed: f64,
        pause: Duration,
        tick: Duration,
    ) -> Waypoint {
        assert!(intf >= comm, "interference range must contain the communication range");
        assert!(speed > 0.0, "waypoint speed must be positive");
        assert!(tick > Duration::ZERO, "waypoint tick must be positive");
        let legs = (0..n)
            .map(|node| {
                // Golden-ratio stride decorrelates the per-node streams
                // while staying a pure function of (seed, node).
                let mut rng = StdRng::seed_from_u64(
                    seed ^ WAYPOINT_SALT
                        ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(node as u64 + 1),
                );
                let from = (rng.gen_range(0.0..side), rng.gen_range(0.0..side));
                let mut leg = Leg {
                    rng,
                    from,
                    to: from,
                    depart: SimTime::ZERO,
                    arrive: SimTime::ZERO,
                };
                Self::next_leg(&mut leg, side, speed, SimTime::ZERO);
                leg
            })
            .collect();
        Waypoint {
            legs,
            side,
            comm2: comm * comm,
            intf2: intf * intf,
            speed,
            pause,
            tick,
        }
    }

    /// Starts a new leg from the current arrival point, departing at
    /// `depart`.
    fn next_leg(leg: &mut Leg, side: f64, speed: f64, depart: SimTime) {
        leg.from = leg.to;
        leg.to = (leg.rng.gen_range(0.0..side), leg.rng.gen_range(0.0..side));
        let (dx, dy) = (leg.to.0 - leg.from.0, leg.to.1 - leg.from.1);
        let dist = (dx * dx + dy * dy).sqrt();
        leg.depart = depart;
        leg.arrive = depart + Duration::from_secs_f64(dist / speed);
    }

    /// Quantizes `now` to the reachability tick.
    fn quantize(&self, now: SimTime) -> SimTime {
        let t = self.tick.as_nanos() as u64;
        SimTime::from_nanos(now.as_nanos() / t * t)
    }

    /// Advances node `node` to (quantized) time `q` and returns its
    /// position. Pure in `q` once the leg containing `q` is reached;
    /// queries never go backwards past a leg boundary because the
    /// simulator clock is monotonic.
    fn position(&mut self, node: NodeId, q: SimTime) -> (f64, f64) {
        let (side, speed, pause) = (self.side, self.speed, self.pause);
        let leg = &mut self.legs[node];
        while q >= leg.arrive + pause {
            let depart = leg.arrive + pause;
            Self::next_leg(leg, side, speed, depart);
        }
        if q <= leg.depart {
            leg.from
        } else if q >= leg.arrive {
            leg.to
        } else {
            let total = leg.arrive.saturating_since(leg.depart).as_secs_f64();
            let done = q.saturating_since(leg.depart).as_secs_f64();
            let frac = if total > 0.0 { done / total } else { 1.0 };
            (
                leg.from.0 + (leg.to.0 - leg.from.0) * frac,
                leg.from.1 + (leg.to.1 - leg.from.1) * frac,
            )
        }
    }

    fn dist2(&mut self, now: SimTime, a: NodeId, b: NodeId) -> f64 {
        let q = self.quantize(now);
        let (ax, ay) = self.position(a, q);
        let (bx, by) = self.position(b, q);
        let (dx, dy) = (ax - bx, ay - by);
        dx * dx + dy * dy
    }
}

impl Topology for Waypoint {
    fn hears(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        self.dist2(now, src, dst) <= self.comm2
    }
    fn interferes(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.dist2(now, src, dst) <= self.intf2
    }
    fn describe(&self) -> String {
        format!(
            "random waypoint (n={}, comm {:.0}m, intf {:.0}m, {:.1} m/s, tick {:?})",
            self.legs.len(),
            self.comm2.sqrt(),
            self.intf2.sqrt(),
            self.speed,
            self.tick
        )
    }
}

/// Snapshot of the reachability graph at one instant: per-node direct
/// neighbor count and connected-component id (smallest member index),
/// for stall diagnostics.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Connectivity {
    /// Direct neighbors each node hears.
    pub reachable: Vec<usize>,
    /// Connected-component id of each node (the smallest node index in
    /// the component, so ids are stable across runs).
    pub component: Vec<usize>,
}

/// Computes the reachability snapshot over `hears` at `now` (treated
/// as symmetric).
pub fn connectivity(topo: &mut dyn Topology, now: SimTime, n: usize) -> Connectivity {
    let mut reachable = vec![0usize; n];
    let mut component: Vec<usize> = (0..n).collect();
    for a in 0..n {
        for b in a + 1..n {
            if topo.hears(now, a, b) {
                reachable[a] += 1;
                reachable[b] += 1;
                // Union by relabeling: n is small and this runs only in
                // diagnostics paths.
                let (ra, rb) = (component[a], component[b]);
                if ra != rb {
                    let (keep, drop) = (ra.min(rb), ra.max(rb));
                    for c in component.iter_mut() {
                        if *c == drop {
                            *c = keep;
                        }
                    }
                }
            }
        }
    }
    Connectivity {
        reachable,
        component,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_domain_hears_everyone() {
        let mut t = SingleDomain;
        assert!(t.hears(SimTime::ZERO, 0, 5));
        assert!(t.interferes(SimTime::from_millis(10), 3, 3));
    }

    #[test]
    fn partition_splits_and_heals_on_schedule() {
        let spec = TopologySpec::Partition(
            PartitionSchedule::new()
                .split_at(SimTime::from_millis(10), vec![vec![0, 1], vec![2, 3]])
                .heal_at(SimTime::from_millis(50)),
        );
        let mut t = spec.build(4, 7);
        // Before the split: connected.
        assert!(t.hears(SimTime::from_millis(9), 0, 3));
        // During: only same-group.
        assert!(t.hears(SimTime::from_millis(10), 0, 1));
        assert!(!t.hears(SimTime::from_millis(10), 0, 2));
        assert!(!t.interferes(SimTime::from_millis(30), 1, 3));
        assert!(t.interferes(SimTime::from_millis(30), 3, 3), "self-sense");
        // After the heal: connected again.
        assert!(t.hears(SimTime::from_millis(50), 0, 2));
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn partition_split_must_cover_all_nodes() {
        let spec = TopologySpec::Partition(
            PartitionSchedule::new().split_at(SimTime::ZERO, vec![vec![0, 1]]),
        );
        let _ = spec.build(4, 0);
    }

    #[test]
    fn partition_describe_shows_shape_and_times() {
        let s = PartitionSchedule::new()
            .split_at(SimTime::from_millis(5), vec![vec![0, 1, 2], vec![3]])
            .heal_at(SimTime::from_millis(20));
        let d = s.describe();
        assert!(d.contains("split@"), "{d}");
        assert!(d.contains("3|1"), "{d}");
        assert!(d.contains("heal@"), "{d}");
        assert_eq!(PartitionSchedule::new().describe(), "no partition");
    }

    #[test]
    fn disk_hidden_terminal_line() {
        // A --- B --- C: A and C each hear B but not each other, and —
        // crucially — cannot carrier-sense each other either.
        let mut t = Disk::new(vec![(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)], 120.0, 150.0);
        assert!(t.hears(SimTime::ZERO, 0, 1));
        assert!(t.hears(SimTime::ZERO, 1, 2));
        assert!(!t.hears(SimTime::ZERO, 0, 2));
        assert!(!t.interferes(SimTime::ZERO, 0, 2), "hidden from each other");
        assert!(t.interferes(SimTime::ZERO, 0, 1));
    }

    #[test]
    fn spatial_positions_are_seed_deterministic() {
        let spec = TopologySpec::Spatial {
            side_m: 300.0,
            comm_range_m: 120.0,
            interference_range_m: 200.0,
        };
        let mut a = spec.build(8, 42);
        let mut b = spec.build(8, 42);
        let mut c = spec.build(8, 43);
        let snap = |t: &mut Box<dyn Topology>| {
            let mut v = Vec::new();
            for i in 0..8 {
                for j in 0..8 {
                    v.push(t.hears(SimTime::ZERO, i, j));
                }
            }
            v
        };
        assert_eq!(snap(&mut a), snap(&mut b), "same seed, same geometry");
        // A different seed must at least be *allowed* to differ; with 8
        // nodes in a 300 m square at 120 m range the graphs essentially
        // always do.
        assert_ne!(snap(&mut a), snap(&mut c), "seed changes the geometry");
    }

    #[test]
    fn waypoint_is_deterministic_and_moves() {
        let spec = TopologySpec::Waypoint {
            side_m: 500.0,
            comm_range_m: 150.0,
            interference_range_m: 200.0,
            speed_mps: 20.0,
            pause: Duration::from_millis(100),
            tick: Duration::from_millis(100),
        };
        let mut a = spec.build(6, 9);
        let mut b = spec.build(6, 9);
        let mut changed = false;
        let mut last: Option<Vec<bool>> = None;
        for step in 0..200u64 {
            let now = SimTime::from_millis(step * 100);
            let mut edges = Vec::new();
            for i in 0..6 {
                for j in 0..6 {
                    let h = a.hears(now, i, j);
                    assert_eq!(h, b.hears(now, i, j), "replica diverged at {now}");
                    edges.push(h);
                }
            }
            if let Some(prev) = &last {
                changed |= *prev != edges;
            }
            last = Some(edges);
        }
        assert!(changed, "20 m/s for 20 s must change some link");
    }

    #[test]
    fn waypoint_queries_within_a_tick_are_stable() {
        let spec = TopologySpec::Waypoint {
            side_m: 400.0,
            comm_range_m: 100.0,
            interference_range_m: 150.0,
            speed_mps: 50.0,
            pause: Duration::ZERO,
            tick: Duration::from_millis(250),
        };
        let mut t = spec.build(4, 3);
        let early = SimTime::from_nanos(250_000_000);
        let late = SimTime::from_nanos(499_999_999);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(t.hears(early, i, j), t.hears(late, i, j));
            }
        }
    }

    #[test]
    fn connectivity_reports_components_and_degrees() {
        let spec = TopologySpec::Partition(
            PartitionSchedule::new().split_at(SimTime::ZERO, vec![vec![0, 2], vec![1], vec![3, 4]]),
        );
        let mut t = spec.build(5, 0);
        let c = connectivity(t.as_mut(), SimTime::ZERO, 5);
        assert_eq!(c.reachable, vec![1, 0, 1, 1, 1]);
        assert_eq!(c.component, vec![0, 1, 0, 3, 3]);
        let mut full = SingleDomain;
        let all = connectivity(&mut full, SimTime::ZERO, 4);
        assert_eq!(all.reachable, vec![3; 4]);
        assert_eq!(all.component, vec![0; 4]);
    }
}
