//! Pluggable event-queue engines for the discrete-event simulator.
//!
//! The simulator orders every pending event by the total order
//! `(at, seq)`: primary key is the simulated firing time in
//! nanoseconds, ties break by insertion sequence number so that
//! same-tick events drain in the exact order they were scheduled. Two
//! engines implement that contract:
//!
//! * **Legacy** — the original global `BinaryHeap<Reverse<Entry>>`
//!   with `O(log E)` push/pop. Selected with `TURQUOIS_LEGACY_QUEUE=1`
//!   (any non-empty value) or [`set_legacy_queue`].
//! * **Wheel** (default) — a hierarchical timer wheel (`TimerWheel`)
//!   whose near horizon is a small binary heap, giving amortised `O(1)`
//!   scheduling for the dense short-horizon traffic (backoff slots,
//!   SIFS/DIFS gaps, frame airtimes) that dominates a run.
//!
//! Both engines produce the **same pop sequence for the same push
//! sequence** — the wheel is a pure data-structure swap, invisible to
//! simulated time. `crates/harness/tests/queue_differential.rs` and the
//! oracle tests below guard this; DESIGN.md §9 has the proof sketch.
//!
//! # Wheel geometry
//!
//! Level-0 slots span `2^12` ns = 4.096 µs — finer than every 802.11b
//! MAC quantum in [`crate::config::PhyConfig`] (SIFS 10 µs, slot time
//! 20 µs, DIFS 50 µs), so consecutive MAC events land in distinct or
//! adjacent slots, while the sub-slot events of one exchange
//! (propagation 500 ns) collapse into the near heap, which orders them
//! exactly. Six levels of 64 slots cover `2^48` ns ≈ 3.26 simulated
//! days; anything later (long crash/rejoin schedules) parks in a
//! `BTreeMap` overflow and migrates into the wheel when the cursor
//! reaches its window.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// Environment variable selecting the legacy binary-heap engine.
///
/// Set to any non-empty value to bypass the timer wheel. Results must
/// be byte-identical either way; the variable exists as a differential
/// guard and an escape hatch, mirroring `TURQUOIS_NO_MEMO`.
pub const LEGACY_QUEUE_ENV: &str = "TURQUOIS_LEGACY_QUEUE";

static LEGACY_QUEUE: AtomicBool = AtomicBool::new(false);
static LEGACY_QUEUE_INIT: Once = Once::new();

/// Returns whether new simulators use the legacy binary-heap engine.
///
/// The first call reads [`LEGACY_QUEUE_ENV`]; later calls reuse the
/// cached value unless [`set_legacy_queue`] overrides it.
pub fn legacy_queue_enabled() -> bool {
    LEGACY_QUEUE_INIT.call_once(|| {
        if std::env::var_os(LEGACY_QUEUE_ENV).is_some_and(|v| !v.is_empty()) {
            LEGACY_QUEUE.store(true, Ordering::Relaxed);
        }
    });
    LEGACY_QUEUE.load(Ordering::Relaxed)
}

/// Programmatically selects the queue engine for simulators built
/// afterwards, overriding the environment (used by `simcore_bench` to
/// run both engines in one process).
pub fn set_legacy_queue(enabled: bool) {
    // Make sure the env lookup never races in after us and clobbers
    // the explicit choice.
    LEGACY_QUEUE_INIT.call_once(|| {});
    LEGACY_QUEUE.store(enabled, Ordering::Relaxed);
}

/// One scheduled item: fires at `at` ns, ties broken by `seq`.
#[derive(Debug)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Bits per wheel level: 64 slots.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Level-0 slot granularity: `2^12` ns = 4.096 µs (see module docs).
const SHIFT0: u32 = 12;
/// Number of wheel levels above the near heap.
const LEVELS: usize = 6;

/// Bit position where level `k`'s slot index starts.
#[inline]
fn level_shift(level: usize) -> u32 {
    SHIFT0 + SLOT_BITS * level as u32
}

/// One wheel level: 64 slot buckets plus an occupancy bitmap (bit `s`
/// set ⇔ `slots[s]` non-empty). Slot `Vec`s keep their capacity across
/// drain/refill cycles, so the steady state allocates nothing.
#[derive(Debug)]
struct Level<T> {
    slots: Vec<Vec<Entry<T>>>,
    occupied: u64,
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }
}

/// Hierarchical timer wheel preserving exact `(at, seq)` order.
///
/// Invariants (see DESIGN.md §9 for the ordering argument):
///
/// * `near` holds every pending entry in the cursor's level-0 slot
///   (plus any defensively accepted `at <= cur` entry), ordered by
///   `(at, seq)` — its minimum is the global minimum.
/// * A level-`k` slot `s` is occupied only for `s` strictly ahead of
///   the cursor's level-`k` index within the cursor's level-`(k+1)`
///   slot, so bitmap scans never wrap.
/// * `overflow` holds entries beyond the top level's `2^48` ns window;
///   all of them fire after every in-wheel entry.
#[derive(Debug)]
struct TimerWheel<T> {
    /// Cursor: the start (or an interior point) of the level-0 slot
    /// currently draining through `near`. Monotone non-decreasing.
    cur: u64,
    near: BinaryHeap<Reverse<Entry<T>>>,
    levels: Vec<Level<T>>,
    overflow: BTreeMap<(u64, u64), T>,
    len: usize,
}

impl<T> TimerWheel<T> {
    fn new() -> Self {
        TimerWheel {
            cur: 0,
            near: BinaryHeap::new(),
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BTreeMap::new(),
            len: 0,
        }
    }

    fn push(&mut self, entry: Entry<T>) {
        self.len += 1;
        self.insert(entry);
    }

    /// Routes an entry to the near heap, a wheel slot, or overflow.
    /// Does not touch `len` (also used for refill re-insertion).
    fn insert(&mut self, entry: Entry<T>) {
        let diff = entry.at ^ self.cur;
        if entry.at <= self.cur || diff >> SHIFT0 == 0 {
            // Past/current times or the cursor's own slot: the heap
            // orders them exactly.
            self.near.push(Reverse(entry));
            return;
        }
        for level in 0..LEVELS {
            if diff >> level_shift(level + 1) == 0 {
                let slot = ((entry.at >> level_shift(level)) & (SLOTS as u64 - 1)) as usize;
                let lvl = &mut self.levels[level];
                lvl.slots[slot].push(entry);
                lvl.occupied |= 1u64 << slot;
                return;
            }
        }
        self.overflow.insert((entry.at, entry.seq), entry.item);
    }

    /// Advances the cursor until `near` holds the global minimum.
    /// No-op when `near` is already non-empty or the wheel is empty.
    fn refill(&mut self) {
        loop {
            if !self.near.is_empty() {
                return;
            }
            if let Some(level) = (0..LEVELS).find(|&k| self.levels[k].occupied != 0) {
                // All lower levels and the near heap are empty, so the
                // earliest pending time lives in this level's first
                // occupied slot. Advance the cursor to that slot's
                // start and cascade its entries downwards.
                let slot = self.levels[level].occupied.trailing_zeros() as u64;
                let above = level_shift(level + 1);
                debug_assert!(above < 64);
                self.cur = (self.cur & (!0u64 << above)) | (slot << level_shift(level));
                let mut batch = std::mem::take(&mut self.levels[level].slots[slot as usize]);
                self.levels[level].occupied &= !(1u64 << slot);
                for entry in batch.drain(..) {
                    self.insert(entry);
                }
                // Cascaded entries always land strictly below `level`
                // (their high bits now match the cursor), so the slot
                // is still empty: hand its capacity back.
                debug_assert!(self.levels[level].slots[slot as usize].is_empty());
                std::mem::swap(&mut self.levels[level].slots[slot as usize], &mut batch);
                continue;
            }
            // Wheel empty: jump the cursor to the first overflow entry
            // and migrate everything inside its top-level window.
            let Some((&(at, _), _)) = self.overflow.first_key_value() else {
                return;
            };
            self.cur = at;
            let window_end = ((at >> level_shift(LEVELS)) + 1) << level_shift(LEVELS);
            let later = self.overflow.split_off(&(window_end, 0));
            let in_window = std::mem::replace(&mut self.overflow, later);
            for ((at, seq), item) in in_window {
                self.insert(Entry { at, seq, item });
            }
        }
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        if self.len == 0 {
            return None;
        }
        self.refill();
        let Reverse(entry) = self.near.pop()?;
        self.len -= 1;
        Some(entry)
    }

    /// Firing time of the earliest pending entry. `&mut` because it
    /// may advance the cursor to surface that entry in `near`.
    fn peek_at(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.refill();
        self.near.peek().map(|Reverse(e)| e.at)
    }
}

/// The simulator's pending-event set: a total order over `(at, seq)`
/// with engine selected by [`legacy_queue_enabled`] at construction.
///
/// Sequence numbers are assigned internally in push order, so ties on
/// `at` always drain first-scheduled-first — identically in both
/// engines.
#[derive(Debug)]
pub struct EventQueue<T> {
    seq: u64,
    engine: Engine<T>,
}

#[derive(Debug)]
enum Engine<T> {
    Legacy(BinaryHeap<Reverse<Entry<T>>>),
    Wheel(TimerWheel<T>),
}

impl<T> EventQueue<T> {
    /// Creates an empty queue using the engine selected by
    /// [`legacy_queue_enabled`].
    pub fn new() -> Self {
        EventQueue::with_legacy(legacy_queue_enabled())
    }

    /// Creates an empty queue with an explicit engine choice.
    pub fn with_legacy(legacy: bool) -> Self {
        EventQueue {
            seq: 0,
            engine: if legacy {
                Engine::Legacy(BinaryHeap::new())
            } else {
                Engine::Wheel(TimerWheel::new())
            },
        }
    }

    /// Schedules `item` at `at_nanos`, after everything already
    /// scheduled for the same time.
    pub fn push(&mut self, at_nanos: u64, item: T) {
        let entry = Entry {
            at: at_nanos,
            seq: self.seq,
            item,
        };
        self.seq += 1;
        match &mut self.engine {
            Engine::Legacy(heap) => heap.push(Reverse(entry)),
            Engine::Wheel(wheel) => wheel.push(entry),
        }
    }

    /// Removes and returns the earliest `(at, item)`, or `None` when
    /// empty.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        match &mut self.engine {
            Engine::Legacy(heap) => heap.pop().map(|Reverse(e)| (e.at, e.item)),
            Engine::Wheel(wheel) => wheel.pop().map(|e| (e.at, e.item)),
        }
    }

    /// Firing time of the earliest pending item, or `None` when empty.
    ///
    /// Takes `&mut self`: the wheel may advance its cursor to answer.
    pub fn peek_at(&mut self) -> Option<u64> {
        match &mut self.engine {
            Engine::Legacy(heap) => heap.peek().map(|Reverse(e)| e.at),
            Engine::Wheel(wheel) => wheel.peek_at(),
        }
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        match &self.engine {
            Engine::Legacy(heap) => heap.len(),
            Engine::Wheel(wheel) => wheel.len,
        }
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this queue runs on the legacy binary-heap engine.
    pub fn is_legacy(&self) -> bool {
        matches!(self.engine, Engine::Legacy(_))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Drives both engines through the same push/pop interleaving and
    /// asserts every popped `(at, item)` pair matches. Pushes are
    /// monotone w.r.t. the last popped time, as in the simulator.
    fn differential(seed: u64, ops: usize, max_delay: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut legacy = EventQueue::with_legacy(true);
        let mut wheel = EventQueue::with_legacy(false);
        let mut now = 0u64;
        let mut next_id = 0u32;
        for _ in 0..ops {
            if rng.gen_bool(0.6) || legacy.is_empty() {
                let burst = rng.gen_range(1..4usize);
                for _ in 0..burst {
                    let at = now + rng.gen_range(0..max_delay);
                    legacy.push(at, next_id);
                    wheel.push(at, next_id);
                    next_id += 1;
                }
            } else {
                let a = legacy.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "engines diverged at now={now}");
                assert_eq!(legacy.peek_at(), wheel.peek_at());
                now = a.expect("non-empty").0;
            }
        }
        while let Some(a) = legacy.pop() {
            assert_eq!(Some(a), wheel.pop());
            now = a.0;
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.len(), 0);
        let _ = now;
    }

    #[test]
    fn wheel_matches_heap_short_horizon() {
        // Sub-slot to a few MAC slots: exercises the near heap.
        differential(1, 4000, 30_000);
    }

    #[test]
    fn wheel_matches_heap_mixed_horizon() {
        // Microseconds to tens of milliseconds: exercises levels 0–3.
        differential(2, 4000, 40_000_000);
    }

    #[test]
    fn wheel_matches_heap_long_horizon() {
        // Up to ~18 minutes: exercises the upper levels.
        differential(3, 2000, 1_000_000_000_000);
    }

    #[test]
    fn wheel_matches_heap_overflow_horizon() {
        // Past the 2^48 ns top window: exercises the overflow map.
        differential(4, 1500, 1 << 52);
    }

    #[test]
    fn same_tick_drains_in_push_order() {
        for legacy in [true, false] {
            let mut q = EventQueue::with_legacy(legacy);
            // Two ticks interleaved out of order.
            q.push(500, 'a');
            q.push(100, 'b');
            q.push(500, 'c');
            q.push(100, 'd');
            q.push(500, 'e');
            let drained: Vec<(u64, char)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(
                drained,
                vec![(100, 'b'), (100, 'd'), (500, 'a'), (500, 'c'), (500, 'e')],
                "legacy={legacy}"
            );
        }
    }

    #[test]
    fn slot_granularity_is_below_mac_quanta() {
        // The wheel only orders-by-heap within one level-0 slot; the
        // 802.11b MAC quanta must each span at least one full slot so
        // that per-slot heaps stay small.
        let phy = crate::config::PhyConfig::default();
        let slot_ns = 1u64 << SHIFT0;
        assert!(slot_ns <= phy.sifs.as_nanos() as u64);
        assert!(slot_ns <= phy.slot.as_nanos() as u64);
        assert!(slot_ns <= phy.difs.as_nanos() as u64);
    }

    #[test]
    fn env_toggle_round_trips() {
        // Touch the cached switch; leave it in the default state.
        let initial = legacy_queue_enabled();
        set_legacy_queue(true);
        assert!(EventQueue::<u8>::new().is_legacy());
        set_legacy_queue(false);
        assert!(!EventQueue::<u8>::new().is_legacy());
        set_legacy_queue(initial);
    }

    #[test]
    fn far_future_then_near_past_ordering() {
        let mut q = EventQueue::with_legacy(false);
        q.push(1 << 50, 'f');
        q.push(10, 'a');
        assert_eq!(q.pop(), Some((10, 'a')));
        // Cursor has advanced to 10; a same-time push must still pop.
        q.push(10, 'b');
        assert_eq!(q.pop(), Some((10, 'b')));
        assert_eq!(q.pop(), Some((1 << 50, 'f')));
        assert_eq!(q.pop(), None);
    }
}
