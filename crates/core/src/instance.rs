//! The `Turquois` protocol instance: the complete per-process engine.
//!
//! This type glues together the pieces of the protocol — the
//! [`ProcessState`] of Algorithm 1, the authenticity validation of §6.1
//! ([`KeyRing`]), and the semantic validation of §6.2 — behind a sans-io
//! interface:
//!
//! * [`Turquois::on_tick`] implements task T1: it produces the broadcast
//!   for the current state. Following the paper's implementation, the
//!   *first* broadcast of a state is bare (implicit validation,
//!   optimistic); if the next tick still broadcasts the same state, the
//!   justification messages are attached (explicit validation).
//! * [`Turquois::on_message`] implements task T2: decode, authenticate,
//!   semantically validate, insert into `V_i`, and advance the state
//!   machine to fixpoint.
//!
//! The caller (simulator adapter, live UDP runtime, or a test harness)
//! owns the clock and the network: the instance never blocks and never
//! talks to a socket.
//!
//! # Two stores
//!
//! The paper leaves the interaction of explicit justifications with
//! stragglers underspecified (validating attachments recursively would
//! require unbounded evidence chains). The reproduction keeps two
//! sender-deduplicated stores (see `DESIGN.md` §5):
//!
//! * **evidence** — every *authentic* message seen, including
//!   justification attachments. Semantic-validation thresholds count this
//!   store. Since every threshold minimum exceeds `f`, Byzantine-only
//!   fabrications can never satisfy a check.
//! * **valid (`V_i`)** — messages that passed both validations; the only
//!   store protocol transitions count.

use crate::config::Config;
use crate::keyring::KeyRing;
use crate::message::{legacy_codec_enabled, DecodeError, Envelope, Message, MessageView, Status};
use crate::state::{Advance, ProcessState};
use crate::store::MessageStore;
use crate::validation::{semantic_check, EvidenceView, RejectReason};
use bytes::arena::EncodeArena;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use turquois_crypto::memo::MemoCache;
use turquois_crypto::otss::{OneTimeSignature, SignError, Value};
use turquois_crypto::sha256::multilane::sha256_many;
use turquois_crypto::sha256::Digest;

/// How many phases of evidence to retain behind the current phase.
const GC_WINDOW: u32 = 8;

/// Memo-cache key for one verification: every byte
/// [`KeyRing::verify`] reads — `(phase, sender, value, signature)` —
/// so equal keys denote the same computation. Phase leads so GC can
/// prune with a range predicate.
type VerifyKey = (u32, usize, u8, [u8; 32]);

/// Bound on memoized verification outcomes. Honest traffic inside the
/// GC window needs well under `n × (GC_WINDOW + 1) × 3` entries; the
/// headroom absorbs Byzantine signature floods, whose overflow merely
/// evicts (and re-verifies) — never mis-answers.
const VERIFY_CACHE_CAP: usize = 4096;

/// Outcome classification for a processed incoming message.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum MessageOutcome {
    /// Valid and new: inserted into `V_i`.
    Accepted,
    /// Valid but an exact duplicate of a stored message.
    Duplicate,
    /// Undecodable bytes.
    DecodeFailed(DecodeError),
    /// The one-time signature did not verify.
    AuthFailed,
    /// Semantic validation rejected the message.
    SemanticFailed(RejectReason),
}

/// Result of [`Turquois::on_message`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Receipt {
    /// What happened to the message.
    pub outcome: MessageOutcome,
    /// One-time signature verifications performed (for CPU cost
    /// accounting: each is one hash).
    pub sig_verifications: usize,
    /// Whether `φ_i` changed (the adapter should broadcast immediately,
    /// per the clock-tick rule of §7.1).
    pub phase_advanced: bool,
    /// Set when this message caused the process to decide.
    pub newly_decided: Option<bool>,
}

/// A broadcast produced by [`Turquois::on_tick`].
#[derive(Clone, Debug)]
pub struct Outbound {
    /// Encoded wire bytes for the transport.
    pub bytes: Bytes,
    /// The structured message (for tests and adversaries).
    pub message: Message,
}

/// Errors producing an outbound message.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum OutboundError {
    /// The one-time key material does not cover the current phase; a new
    /// key-exchange epoch must be installed (see
    /// [`KeyRing::begin_epoch`]).
    KeysExhausted(SignError),
}

impl std::fmt::Display for OutboundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutboundError::KeysExhausted(e) => write!(f, "one-time keys exhausted: {e}"),
        }
    }
}

impl std::error::Error for OutboundError {}

/// A Turquois *k*-consensus instance for one process.
///
/// # Example
///
/// ```
/// use turquois_core::config::Config;
/// use turquois_core::keyring::KeyRing;
/// use turquois_core::instance::Turquois;
///
/// let cfg = Config::evaluation(4)?;
/// let mut rings = KeyRing::trusted_setup(4, 30, 42);
/// rings.reverse();
/// let mut procs: Vec<Turquois> = (0..4)
///     .map(|i| Turquois::new(cfg, i, true, rings.pop().expect("one per process"), i as u64))
///     .collect();
///
/// // A perfect synchronous round: everyone broadcasts, everyone hears.
/// loop {
///     let msgs: Vec<_> = procs
///         .iter_mut()
///         .map(|p| p.on_tick().expect("keys cover phase").bytes)
///         .collect();
///     for p in procs.iter_mut() {
///         for m in &msgs {
///             p.on_message(m);
///         }
///     }
///     if procs.iter().all(|p| p.decision().is_some()) {
///         break;
///     }
/// }
/// assert!(procs.iter().all(|p| p.decision() == Some(true)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Turquois {
    cfg: Config,
    keyring: KeyRing,
    state: ProcessState,
    evidence: MessageStore,
    valid: MessageStore,
    last_broadcast: Option<Envelope>,
    decided_evidence: Vec<(Envelope, OneTimeSignature)>,
    /// Memoized [`KeyRing::verify`] outcomes (positive *and* negative).
    /// Pure host-time optimization: simulated CPU is still charged per
    /// logical verification via [`Receipt::sig_verifications`].
    verify_cache: MemoCache<VerifyKey>,
    /// [`KeyRing::epoch_stamp`] at the last cache use; installing new
    /// key epochs can turn a cached `false` stale, so a stamp change
    /// clears the cache.
    cache_stamp: u64,
    /// Last broadcast's encoded form: a re-broadcast of an identical
    /// message reuses the wire bytes instead of re-serializing.
    last_wire: Option<(Message, Bytes)>,
    /// Pooled encode scratch for outbound wire bytes (flat-arena
    /// codec, DESIGN.md §13). Host-only: produces the same bytes the
    /// legacy per-message builder would.
    arena: EncodeArena,
    /// Recycled buffer for the authentic justification entries of the
    /// message currently being processed; cleared per message so the
    /// steady state performs no allocation.
    extras_scratch: Vec<(Envelope, OneTimeSignature)>,
    rng: StdRng,
}

/// The justification entries of an incoming message, independent of
/// which codec produced them: a materialized slice (legacy) or a
/// borrowed [`MessageView`] reading offsets out of the receive buffer.
enum JustEntries<'a> {
    /// Legacy codec: entries already materialized in a `Vec`.
    Owned(&'a [(Envelope, OneTimeSignature)]),
    /// Arena codec: entries read on demand from the wire bytes.
    View(&'a MessageView<'a>),
}

impl<'a> JustEntries<'a> {
    fn len(&self) -> usize {
        match self {
            JustEntries::Owned(s) => s.len(),
            JustEntries::View(v) => v.justification_len(),
        }
    }

    fn entry(&self, i: usize) -> (Envelope, OneTimeSignature) {
        match self {
            JustEntries::Owned(s) => s[i],
            JustEntries::View(v) => v.entry(i),
        }
    }

    fn sig_bytes(&self, i: usize) -> &'a [u8] {
        match self {
            JustEntries::Owned(s) => &s[i].1 .0,
            JustEntries::View(v) => v.sig_bytes(i),
        }
    }
}

impl std::fmt::Debug for Turquois {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Turquois")
            .field("id", &self.state.id())
            .field("phase", &self.state.phase())
            .field("value", &self.state.value())
            .field("status", &self.state.status())
            .field("decision", &self.state.decision())
            .finish_non_exhaustive()
    }
}

impl Turquois {
    /// Creates an instance for process `id` proposing `proposal`.
    ///
    /// `seed` drives the local coin; give each process an independent
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if the keyring belongs to a different process or a
    /// different group size.
    pub fn new(cfg: Config, id: usize, proposal: bool, keyring: KeyRing, seed: u64) -> Self {
        assert_eq!(keyring.id(), id, "keyring belongs to another process");
        assert_eq!(keyring.n(), cfg.n(), "keyring sized for another group");
        Turquois {
            cfg,
            state: ProcessState::new(cfg, id, proposal),
            evidence: MessageStore::new(cfg.n()),
            valid: MessageStore::new(cfg.n()),
            last_broadcast: None,
            decided_evidence: Vec::new(),
            verify_cache: MemoCache::new(VERIFY_CACHE_CAP),
            cache_stamp: keyring.epoch_stamp(),
            last_wire: None,
            arena: EncodeArena::new(),
            extras_scratch: Vec::new(),
            keyring,
            rng: StdRng::seed_from_u64(seed ^ 0xc011_5eed),
        }
    }

    /// Clears the memo cache when the key material changed since its
    /// last use (see [`KeyRing::epoch_stamp`]).
    fn refresh_verify_cache(&mut self) {
        let stamp = self.keyring.epoch_stamp();
        if stamp != self.cache_stamp {
            self.verify_cache.clear();
            self.cache_stamp = stamp;
        }
    }

    /// [`KeyRing::verify`] through the memo cache. Sound because the
    /// key captures the verification's entire input and the cache is
    /// cleared whenever the key material changes (see
    /// [`KeyRing::epoch_stamp`]).
    fn verify_cached(&mut self, env: &Envelope, sig: &OneTimeSignature) -> bool {
        self.verify_cached_with(env, sig, None)
    }

    /// [`Turquois::verify_cached`] with `H(sig)` optionally precomputed
    /// by a lane batch ([`Turquois::prehash_justification`]). The memo
    /// lookup — hit/miss counters, insertion, eviction — is identical
    /// either way; only where the hash work ran differs, so cache
    /// evolution cannot depend on batching.
    fn verify_cached_with(
        &mut self,
        env: &Envelope,
        sig: &OneTimeSignature,
        pre: Option<&Digest>,
    ) -> bool {
        self.refresh_verify_cache();
        let key = (env.phase, env.sender, env.value.index() as u8, sig.0);
        let keyring = &self.keyring;
        self.verify_cache.lookup(key, || match pre {
            Some(sig_hash) => keyring.verify_hashed(env, sig_hash),
            None => keyring.verify(env, sig),
        })
    }

    /// The per-message batched verify queue (DESIGN.md §12): collects
    /// the justification entries whose memo keys will miss, hashes
    /// their signatures through the multi-lane kernel in one batch, and
    /// returns the per-entry precomputed hashes for
    /// [`Turquois::verify_cached_with`]. Entries already cached (or
    /// duplicated within the bundle — the first lookup will insert
    /// them) get `None` and take the ordinary path. With memoization
    /// disabled everything gets `None`, so the `TURQUOIS_NO_MEMO`
    /// baseline re-executes exactly the work it always did.
    fn prehash_justification(&mut self, justification: &JustEntries<'_>) -> Vec<Option<Digest>> {
        let mut pre = vec![None; justification.len()];
        if justification.len() < 2 || !turquois_crypto::telemetry::memo_enabled() {
            return pre;
        }
        self.refresh_verify_cache();
        let mut seen = std::collections::BTreeSet::new();
        let mut lanes: Vec<usize> = Vec::new();
        for i in 0..justification.len() {
            let (env, sig) = justification.entry(i);
            let key = (env.phase, env.sender, env.value.index() as u8, sig.0);
            if self.verify_cache.contains(&key) || !seen.insert(key) {
                continue;
            }
            lanes.push(i);
        }
        let inputs: Vec<&[u8]> = lanes.iter().map(|&i| justification.sig_bytes(i)).collect();
        let hashes = sha256_many(&inputs);
        for (&i, hash) in lanes.iter().zip(hashes) {
            pre[i] = Some(hash);
        }
        pre
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// This process's id.
    pub fn id(&self) -> usize {
        self.state.id()
    }

    /// Current phase `φ_i`.
    pub fn phase(&self) -> u32 {
        self.state.phase()
    }

    /// Current proposal value `v_i`.
    pub fn value(&self) -> Value {
        self.state.value()
    }

    /// Current status.
    pub fn status(&self) -> Status {
        self.state.status()
    }

    /// The decision, once reached.
    pub fn decision(&self) -> Option<bool> {
        self.state.decision()
    }

    /// Whether the current value was drawn from the local coin (read-only
    /// inspection for external checkers).
    pub fn coin_flip(&self) -> bool {
        self.state.coin_flip()
    }

    /// Distinct senders stored in the valid set `V_i` at `phase`
    /// (read-only inspection for external checkers such as
    /// `turquois-check`; protocol transitions count exactly this store).
    pub fn valid_senders_at(&self, phase: u32) -> usize {
        self.valid.count_phase(phase)
    }

    /// Distinct senders in the authentic-evidence store at `phase`
    /// (read-only inspection; semantic validation counts this store).
    pub fn evidence_senders_at(&self, phase: u32) -> usize {
        self.evidence.count_phase(phase)
    }

    /// Approximate resident bytes of the two message stores (evidence
    /// and `V_i`). Deterministic and layout-independent — a function of
    /// store *contents*, not of the compact/legacy representation — so
    /// it can feed stall-report telemetry without threatening output
    /// byte-identity under `TURQUOIS_LEGACY_STORE=1`.
    pub fn store_bytes(&self) -> usize {
        self.evidence.approx_bytes() + self.valid.approx_bytes()
    }

    /// Diagnostic snapshot: `(phase, value, coin_flip, valid-store
    /// sender count at the current phase, evidence-store sender count)`.
    pub fn debug_snapshot(&self) -> (u32, Value, bool, usize, usize) {
        let phase = self.state.phase();
        (
            phase,
            self.state.value(),
            self.state.coin_flip(),
            self.valid.count_phase(phase),
            self.evidence.count_phase(phase),
        )
    }

    /// Task T1: produce the broadcast for the current state.
    ///
    /// The first broadcast of a state is bare; re-broadcasts of an
    /// unchanged state attach justification (explicit validation).
    ///
    /// # Errors
    ///
    /// [`OutboundError::KeysExhausted`] when the phase outruns the
    /// distributed key epochs.
    pub fn on_tick(&mut self) -> Result<Outbound, OutboundError> {
        let envelope = self.state.envelope();
        let signature = self
            .keyring
            .sign(envelope.phase, envelope.value)
            .map_err(OutboundError::KeysExhausted)?;
        let rebroadcast = self.last_broadcast == Some(envelope);
        let justification = if rebroadcast {
            self.build_justification(&envelope)
        } else {
            Vec::new()
        };
        self.last_broadcast = Some(envelope);
        let message = Message {
            envelope,
            signature,
            justification,
        };
        // Re-broadcasts of an unchanged message (same envelope, same
        // justification) reuse the previous encoding: the clone of the
        // shared wire buffer is a pointer bump, not a re-serialization.
        if let Some((cached, bytes)) = &self.last_wire {
            if *cached == message {
                return Ok(Outbound {
                    bytes: bytes.clone(),
                    message,
                });
            }
        }
        let bytes = if legacy_codec_enabled() {
            message.encode()
        } else {
            // Arena codec: stage into the pooled chunk — same bytes,
            // one recycled allocation instead of two fresh ones.
            self.arena.encode_with(|buf| message.encode_into(buf))
        };
        self.last_wire = Some((message.clone(), bytes.clone()));
        Ok(Outbound { bytes, message })
    }

    /// Task T2: process an incoming wire message (including loopbacks of
    /// our own broadcasts).
    pub fn on_message(&mut self, bytes: &[u8]) -> Receipt {
        let mut receipt = Receipt {
            outcome: MessageOutcome::Accepted,
            sig_verifications: 0,
            phase_advanced: false,
            newly_decided: None,
        };
        if legacy_codec_enabled() {
            // Legacy codec: materialize the justification Vec, exactly
            // as the pre-arena receive path did.
            let message = match Message::decode(bytes, &self.cfg) {
                Ok(m) => m,
                Err(e) => {
                    receipt.outcome = MessageOutcome::DecodeFailed(e);
                    return receipt;
                }
            };
            // Authenticity of the outer message (one logical hash —
            // charged to simulated CPU whether or not the memo cache
            // answers it).
            receipt.sig_verifications += 1;
            if !self.verify_cached(&message.envelope, &message.signature) {
                receipt.outcome = MessageOutcome::AuthFailed;
                return receipt;
            }
            self.process(
                message.envelope,
                message.signature,
                JustEntries::Owned(&message.justification),
                &mut receipt,
            );
        } else {
            // Arena codec: borrow the justification entries straight
            // out of the receive buffer — no per-message allocation.
            let view = match MessageView::parse(bytes, &self.cfg) {
                Ok(v) => v,
                Err(e) => {
                    receipt.outcome = MessageOutcome::DecodeFailed(e);
                    return receipt;
                }
            };
            receipt.sig_verifications += 1;
            if !self.verify_cached(&view.envelope(), &view.signature()) {
                receipt.outcome = MessageOutcome::AuthFailed;
                return receipt;
            }
            self.process(
                view.envelope(),
                view.signature(),
                JustEntries::View(&view),
                &mut receipt,
            );
        }
        receipt
    }

    /// The codec-independent back half of [`Turquois::on_message`]:
    /// attachment verification, evidence/valid store insertion, semantic
    /// validation of the outer message, and state advancement.
    fn process(
        &mut self,
        envelope: Envelope,
        signature: OneTimeSignature,
        just: JustEntries<'_>,
        receipt: &mut Receipt,
    ) {
        // Authenticity of each attachment; inauthentic ones are dropped,
        // authentic ones become evidence. The memo-missing entries are
        // hashed through the multi-lane kernel in one batch first;
        // every entry still costs one logical verification.
        let pre = self.prehash_justification(&just);
        let mut extras = std::mem::take(&mut self.extras_scratch);
        extras.clear();
        for (i, pre_i) in pre.iter().enumerate() {
            let (env, sig) = just.entry(i);
            receipt.sig_verifications += 1;
            if self.verify_cached_with(&env, &sig, pre_i.as_ref()) {
                extras.push((env, sig));
            }
        }

        // Attachments within the GC window enter the evidence store;
        // older ones still count transiently through the view.
        let gc_floor = self.gc_floor();
        for (env, sig) in &extras {
            if env.phase >= gc_floor {
                self.evidence.insert(env, *sig);
            }
        }

        // Attachments that independently pass semantic validation also
        // enter V_i — they are protocol messages in their own right.
        for (env, sig) in &extras {
            if env.phase >= gc_floor
                && semantic_check(env, &self.cfg, &EvidenceView::new(&self.evidence, &extras))
                    .is_ok()
            {
                self.valid.insert(env, *sig);
            }
        }

        // Semantic validation of the outer message.
        let semantic = semantic_check(&envelope, &self.cfg, &EvidenceView::new(&self.evidence, &extras));
        // Hand the scratch back for the next message (its capacity is
        // the recycled resource; contents are dead).
        self.extras_scratch = extras;
        if let Err(reason) = semantic {
            receipt.outcome = MessageOutcome::SemanticFailed(reason);
            self.advance(receipt);
            return;
        }

        self.evidence.insert(&envelope, signature);
        let fresh = self.valid.insert(&envelope, signature);
        if !fresh {
            receipt.outcome = MessageOutcome::Duplicate;
        }

        self.advance(receipt);
    }

    fn advance(&mut self, receipt: &mut Receipt) {
        let rng = &mut self.rng;
        let mut coin = || rng.gen_bool(0.5);
        let Advance {
            phase_changed,
            newly_decided,
        } = self.state.try_advance(&self.valid, &mut coin);
        receipt.phase_advanced |= phase_changed;
        if receipt.newly_decided.is_none() {
            receipt.newly_decided = newly_decided;
        }
        if let Some(bit) = newly_decided {
            self.capture_decided_evidence(Value::from_bit(bit));
        }
        if phase_changed {
            let floor = self.gc_floor();
            self.evidence.prune_below(floor);
            self.valid.prune_below(floor);
            // Memoized verifications age out with the evidence: phases
            // below the floor can no longer be looked up.
            self.verify_cache.retain(|key| key.0 >= floor);
        }
    }

    fn gc_floor(&self) -> u32 {
        self.state.phase().saturating_sub(GC_WINDOW).max(1)
    }

    /// Snapshot the quorum that justifies our decision so `decided`
    /// broadcasts stay justifiable after garbage collection.
    fn capture_decided_evidence(&mut self, value: Value) {
        let quorum = self.cfg.quorum_min();
        for psi in self.evidence.decide_phases().collect::<Vec<_>>() {
            if self.cfg.exceeds_quorum(self.evidence.count_value(psi, value)) {
                self.decided_evidence = self.evidence.collect(psi, Some(value), quorum);
                return;
            }
        }
    }

    /// Builds the explicit-validation bundle for re-broadcasting
    /// `envelope` (§6.2). Evidence is shared between requirements: a
    /// message that justifies the value also counts toward the phase
    /// quorum, keeping bundles (and airtime) minimal.
    fn build_justification(&self, envelope: &Envelope) -> Vec<(Envelope, OneTimeSignature)> {
        // Collecting `quorum` entries suffices for the phase top-up:
        // `collect` yields one record per distinct sender, so the first
        // `quorum` of them top the set up to a quorum no matter how many
        // were already contributed by the value evidence — the bound is
        // exactly equivalent to an unbounded scan (DESIGN.md §10), which
        // matters once n reaches 256. The proptest
        // `bounded_bundle_matches_unbounded_scan` compares the two.
        self.build_justification_with(envelope, self.cfg.quorum_min())
    }

    /// [`Turquois::build_justification`] with an explicit phase top-up
    /// collection limit (`top_up_limit`); tests pass `usize::MAX` to
    /// recover the retired unbounded scan as a differential oracle.
    fn build_justification_with(
        &self,
        envelope: &Envelope,
        top_up_limit: usize,
    ) -> Vec<(Envelope, OneTimeSignature)> {
        let phase = envelope.phase;
        let mut bundle: Vec<(Envelope, OneTimeSignature)> = Vec::new();
        let quorum = self.cfg.quorum_min();
        let half = self.cfg.half_quorum_min();
        let add = |items: Vec<(Envelope, OneTimeSignature)>,
                   bundle: &mut Vec<(Envelope, OneTimeSignature)>| {
            for (env, sig) in items {
                if !bundle.iter().any(|(e, _)| e == &env) {
                    bundle.push((env, sig));
                }
            }
        };

        if phase > 1 {
            // Value justification first (its messages double as phase
            // evidence when they sit at φ − 1).
            match phase % 3 {
                2 => add(
                    self.evidence
                        .collect(phase - 1, Some(envelope.value), half),
                    &mut bundle,
                ),
                0 => match envelope.value {
                    Value::Bot => {
                        add(
                            self.evidence.collect(phase - 2, Some(Value::Zero), half),
                            &mut bundle,
                        );
                        add(
                            self.evidence.collect(phase - 2, Some(Value::One), half),
                            &mut bundle,
                        );
                    }
                    v => add(self.evidence.collect(phase - 1, Some(v), quorum), &mut bundle),
                },
                _ => {
                    if envelope.coin_flip {
                        add(
                            self.evidence.collect(phase - 1, Some(Value::Bot), quorum),
                            &mut bundle,
                        );
                    } else {
                        add(
                            self.evidence
                                .collect(phase - 2, Some(envelope.value), quorum),
                            &mut bundle,
                        );
                    }
                }
            }
            // Phase justification: top the φ − 1 sender count up to a
            // quorum, reusing whatever the value evidence already
            // contributed.
            let mut senders_at_prev: std::collections::BTreeSet<usize> = bundle
                .iter()
                .filter(|(e, _)| e.phase == phase - 1)
                .map(|(e, _)| e.sender)
                .collect();
            if senders_at_prev.len() < quorum {
                for (env, sig) in self.evidence.collect(phase - 1, None, top_up_limit) {
                    if senders_at_prev.len() >= quorum {
                        break;
                    }
                    if senders_at_prev.insert(env.sender) {
                        add(vec![(env, sig)], &mut bundle);
                    }
                }
            }
        }

        // Status justification (decided claims carry their quorum; the
        // dedupe absorbs overlap with the evidence above).
        if envelope.status == Status::Decided {
            add(self.decided_evidence.clone(), &mut bundle);
        }
        bundle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyring::KeyRing;

    const PHASES: usize = 60;

    fn make_group(n: usize, proposals: &[bool], seed: u64) -> Vec<Turquois> {
        let cfg = Config::evaluation(n).expect("valid n");
        let rings = KeyRing::trusted_setup(n, PHASES, seed);
        rings
            .into_iter()
            .enumerate()
            .map(|(i, ring)| Turquois::new(cfg, i, proposals[i % proposals.len()], ring, seed + i as u64))
            .collect()
    }

    /// Runs synchronous lossless rounds until all decide (or the round
    /// limit trips). Returns the decisions.
    fn run_synchronous(procs: &mut [Turquois], max_rounds: usize) -> Vec<Option<bool>> {
        for _ in 0..max_rounds {
            let msgs: Vec<Bytes> = procs
                .iter_mut()
                .map(|p| p.on_tick().expect("keys cover phase").bytes)
                .collect();
            for p in procs.iter_mut() {
                for m in &msgs {
                    p.on_message(m);
                }
            }
            if procs.iter().all(|p| p.decision().is_some()) {
                break;
            }
        }
        procs.iter().map(|p| p.decision()).collect()
    }

    #[test]
    fn unanimous_one_decides_one_quickly() {
        for n in [4usize, 7, 10] {
            let mut procs = make_group(n, &[true], 1);
            let decisions = run_synchronous(&mut procs, 10);
            assert!(
                decisions.iter().all(|d| *d == Some(true)),
                "n={n}: {decisions:?}"
            );
            // Unanimous proposals decide by the end of phase 3 (§7.3).
            assert!(procs.iter().all(|p| p.phase() <= 5), "n={n}");
        }
    }

    #[test]
    fn unanimous_zero_decides_zero() {
        let mut procs = make_group(7, &[false], 3);
        let decisions = run_synchronous(&mut procs, 10);
        assert!(decisions.iter().all(|d| *d == Some(false)));
    }

    #[test]
    fn divergent_proposals_agree() {
        for seed in 0..5u64 {
            let mut procs = make_group(4, &[true, false], seed);
            let decisions = run_synchronous(&mut procs, 60);
            let first = decisions[0].expect("all decide in synchronous runs");
            assert!(
                decisions.iter().all(|d| *d == Some(first)),
                "seed {seed}: {decisions:?}"
            );
        }
    }

    #[test]
    fn first_tick_bare_rebroadcast_justified() {
        let mut procs = make_group(4, &[true], 9);
        let first = procs[0].on_tick().expect("keys cover phase");
        assert!(first.message.justification.is_empty());
        let second = procs[0].on_tick().expect("keys cover phase");
        // Same state, but phase 1 needs no justification either.
        assert!(second.message.justification.is_empty());

        // Advance past phase 1 and check that a rebroadcast attaches
        // evidence.
        let msgs: Vec<Bytes> = procs
            .iter_mut()
            .map(|p| p.on_tick().expect("keys cover phase").bytes)
            .collect();
        let (p0, rest) = procs.split_at_mut(1);
        let p0 = &mut p0[0];
        for m in &msgs {
            p0.on_message(m);
        }
        assert_eq!(p0.phase(), 2);
        let first = p0.on_tick().expect("keys cover phase");
        assert!(first.message.justification.is_empty(), "first is bare");
        let second = p0.on_tick().expect("keys cover phase");
        assert!(
            !second.message.justification.is_empty(),
            "rebroadcast carries justification"
        );
        // The bundle lets a process with an empty store accept it.
        let fresh = &mut rest[0];
        let receipt = fresh.on_message(&second.bytes);
        assert_eq!(receipt.outcome, MessageOutcome::Accepted);
        assert_eq!(fresh.phase(), 2, "catch-up through the bundle");
    }

    #[test]
    fn decode_garbage_rejected() {
        let mut procs = make_group(4, &[true], 5);
        let r = procs[0].on_message(b"not a message");
        assert!(matches!(r.outcome, MessageOutcome::DecodeFailed(_)));
        assert_eq!(r.sig_verifications, 0);
    }

    #[test]
    fn forged_signature_rejected() {
        let mut procs = make_group(4, &[true], 5);
        let out = procs[1].on_tick().expect("keys cover phase");
        let mut bytes = out.bytes.to_vec();
        // Flip a bit inside the signature (offset 8..40).
        bytes[10] ^= 1;
        let r = procs[0].on_message(&bytes);
        assert_eq!(r.outcome, MessageOutcome::AuthFailed);
        assert_eq!(r.sig_verifications, 1);
    }

    #[test]
    fn wrong_claimed_sender_rejected() {
        let mut procs = make_group(4, &[true], 5);
        let out = procs[1].on_tick().expect("keys cover phase");
        let mut bytes = out.bytes.to_vec();
        bytes[1] = 2; // claim sender 2 with sender 1's signature
        let r = procs[0].on_message(&bytes);
        assert_eq!(r.outcome, MessageOutcome::AuthFailed);
    }

    #[test]
    fn duplicate_detected() {
        let mut procs = make_group(4, &[true], 5);
        let out = procs[1].on_tick().expect("keys cover phase");
        assert_eq!(
            procs[0].on_message(&out.bytes).outcome,
            MessageOutcome::Accepted
        );
        assert_eq!(
            procs[0].on_message(&out.bytes).outcome,
            MessageOutcome::Duplicate
        );
    }

    #[test]
    fn unjustified_future_phase_rejected_without_evidence() {
        // A message claiming phase 5 with no supporting history fails
        // semantic validation even though its signature is genuine.
        let cfg = Config::evaluation(4).expect("valid");
        let rings = KeyRing::trusted_setup(4, PHASES, 5);
        let mut rings: Vec<_> = rings.into_iter().collect();
        let ring3 = rings.pop().expect("four rings");
        let sig = ring3.sign(5, Value::One).expect("in range");
        let msg = Message::bare(
            Envelope {
                sender: 3,
                phase: 5,
                value: Value::One,
                coin_flip: false,
                status: Status::Undecided,
            },
            sig,
        );
        let mut p0 = Turquois::new(cfg, 0, true, rings.remove(0), 1);
        let r = p0.on_message(&msg.encode());
        assert!(matches!(r.outcome, MessageOutcome::SemanticFailed(_)));
        assert_eq!(p0.phase(), 1, "no catch-up on invalid messages");
    }

    #[test]
    fn receipt_reports_phase_advance_and_decision() {
        let mut procs = make_group(4, &[true], 7);
        let msgs: Vec<Bytes> = procs
            .iter_mut()
            .map(|p| p.on_tick().expect("keys cover phase").bytes)
            .collect();
        let p0 = &mut procs[0];
        let mut advanced = false;
        for m in &msgs {
            let r = p0.on_message(m);
            advanced |= r.phase_advanced;
        }
        assert!(advanced, "quorum at phase 1 advances the phase");
    }

    #[test]
    fn keys_exhaustion_surfaces() {
        let cfg = Config::evaluation(4).expect("valid");
        let rings = KeyRing::trusted_setup(4, 2, 5); // only phases 1–2
        let mut p = Turquois::new(cfg, 0, true, rings.into_iter().next().expect("ring 0"), 1);
        assert!(p.on_tick().is_ok());
        // Force the phase beyond the covered range via internal state:
        // feed a quorum is complex here, so simulate by direct call.
        p.state = ProcessState::new(cfg, 0, true);
        for _ in 0..2 {
            // advance phase artificially through catch-up on valid msgs
        }
        // Simpler: sign directly at phase 3.
        assert!(matches!(
            p.keyring.sign(3, Value::One),
            Err(SignError::PhaseOutOfRange { .. })
        ));
    }

    #[test]
    fn debug_smoke() {
        let procs = make_group(4, &[true], 5);
        assert!(format!("{:?}", procs[0]).contains("Turquois"));
    }

    /// Drives one process to phase 2 and checks its re-broadcast bundle
    /// satisfies the receiver-side semantic checks from a cold store.
    #[test]
    fn justification_bundle_is_self_sufficient() {
        let mut procs = make_group(4, &[true], 21);
        let msgs: Vec<Bytes> = procs
            .iter_mut()
            .map(|p| p.on_tick().expect("keys cover phase").bytes)
            .collect();
        let p0 = &mut procs[0];
        for m in &msgs {
            p0.on_message(m);
        }
        assert_eq!(p0.phase(), 2);
        let _first = p0.on_tick().expect("keys cover phase");
        let rebroadcast = p0.on_tick().expect("keys cover phase");
        let bundle = &rebroadcast.message.justification;
        assert!(!bundle.is_empty());
        // Evidence is shared: the phase-1 value evidence doubles as the
        // phase quorum, so the bundle stays at ~one quorum of messages.
        assert!(
            bundle.len() <= p0.config().quorum_min() + 1,
            "bundle of {} exceeds a quorum",
            bundle.len()
        );
        // All bundle messages sit at phase 1 with distinct senders.
        let senders: std::collections::BTreeSet<usize> =
            bundle.iter().map(|(e, _)| e.sender).collect();
        assert_eq!(senders.len(), bundle.len());
        assert!(bundle.iter().all(|(e, _)| e.phase == 1));
    }

    /// Old evidence is garbage-collected as the phase advances.
    #[test]
    fn stores_are_garbage_collected() {
        let mut procs = make_group(4, &[true, false], 33);
        for _ in 0..40 {
            let msgs: Vec<Bytes> = procs
                .iter_mut()
                .map(|p| p.on_tick().expect("keys cover phase").bytes)
                .collect();
            for p in procs.iter_mut() {
                for m in &msgs {
                    p.on_message(m);
                }
            }
            if procs.iter().all(|p| p.decision().is_some()) {
                break;
            }
        }
        for p in &procs {
            if p.phase() > GC_WINDOW + 1 {
                assert!(
                    p.evidence.min_phase().unwrap_or(u32::MAX) >= p.phase() - GC_WINDOW,
                    "evidence store must not grow unboundedly"
                );
            }
        }
    }

    /// A decided process keeps broadcasting messages that still validate
    /// at peers (the decided-evidence snapshot).
    #[test]
    fn decided_rebroadcasts_stay_valid() {
        let mut procs = make_group(4, &[true], 44);
        for _ in 0..10 {
            let msgs: Vec<Bytes> = procs
                .iter_mut()
                .map(|p| p.on_tick().expect("keys cover phase").bytes)
                .collect();
            for p in procs.iter_mut() {
                for m in &msgs {
                    p.on_message(m);
                }
            }
            if procs.iter().all(|p| p.decision().is_some()) {
                break;
            }
        }
        assert!(procs[1].decision().is_some());
        // Two ticks: the second carries the decided justification.
        let _ = procs[1].on_tick().expect("keys cover phase");
        let rebroadcast = procs[1].on_tick().expect("keys cover phase");
        assert_eq!(rebroadcast.message.envelope.status, Status::Decided);
        let receipt = procs[0].on_message(&rebroadcast.bytes);
        assert!(
            !matches!(receipt.outcome, MessageOutcome::SemanticFailed(_)),
            "decided rebroadcast rejected: {:?}",
            receipt.outcome
        );
    }

    /// Negative-cache soundness: a forged signature rejected once is
    /// still rejected when the re-delivery is answered from the memo
    /// cache, and the cached negative never taints the honest original.
    #[test]
    fn forged_signature_rejected_from_cache_on_redelivery() {
        use turquois_crypto::telemetry::HotpathSnapshot;
        let mut procs = make_group(4, &[true], 11);
        let out = procs[1].on_tick().expect("keys cover phase");
        let mut bytes = out.bytes.to_vec();
        bytes[10] ^= 1; // corrupt the signature (offset 8..40)
        let before = HotpathSnapshot::now();
        assert_eq!(procs[0].on_message(&bytes).outcome, MessageOutcome::AuthFailed);
        assert_eq!(procs[0].on_message(&bytes).outcome, MessageOutcome::AuthFailed);
        let d = HotpathSnapshot::now().delta_since(&before);
        assert!(d.cache_hits >= 1, "re-delivery must probe the cache");
        assert_eq!(
            procs[0].on_message(&out.bytes).outcome,
            MessageOutcome::Accepted,
            "cached negative must not taint the honest signature"
        );
    }

    /// A Byzantine flood of distinct forged signatures fills the cache
    /// past capacity; eviction must only ever cost a recomputation —
    /// never flip a verdict.
    #[test]
    fn capacity_eviction_never_accepts_a_forgery() {
        let mut procs = make_group(4, &[true], 12);
        let msg = procs[1].on_tick().expect("keys cover phase").message;
        let (env, honest_sig) = (msg.envelope, msg.signature);
        let mut forged0 = honest_sig;
        forged0.0[0] ^= 1;
        assert!(!procs[0].verify_cached(&env, &forged0));
        // Insert VERIFY_CACHE_CAP further distinct forgeries so the
        // first negative entry is evicted (FIFO order).
        for i in 0..VERIFY_CACHE_CAP as u32 {
            let mut s = honest_sig;
            s.0[4..8].copy_from_slice(&(i + 1).to_be_bytes());
            s.0[0] ^= 1;
            assert!(!procs[0].verify_cached(&env, &s));
        }
        assert!(
            !procs[0].verify_cached(&env, &forged0),
            "evicted forgery must be re-verified, not accepted"
        );
        assert!(
            procs[0].verify_cached(&env, &honest_sig),
            "honest signature accepted amid the flood"
        );
    }

    /// Installing a new key epoch can flip a cached `false` stale (the
    /// signature was fine, the keys just hadn't arrived); the epoch
    /// stamp must clear the cache so the fresh verdict wins.
    #[test]
    fn epoch_install_invalidates_cached_negatives() {
        let n = 4;
        let cfg = Config::evaluation(n).expect("valid n");
        let mut rings = KeyRing::trusted_setup(n, PHASES, 77);
        let mut signer_ring = rings.remove(1); // process 1 signs
        let p0_ring = rings.remove(0);
        let mut p0 = Turquois::new(cfg, 0, true, p0_ring, 99);

        // Process 1 extends its keys past the distributed epochs and
        // signs a phase only the new epoch covers.
        let mut identity = turquois_crypto::hashsig::Keypair::generate(4, 123);
        let bundle = signer_ring
            .begin_epoch(PHASES, 31, &mut identity)
            .expect("fresh identity key");
        let phase = PHASES as u32 + 1;
        let sig = signer_ring.sign(phase, Value::One).expect("new epoch covers phase");
        let env = Envelope {
            sender: 1,
            phase,
            value: Value::One,
            coin_flip: false,
            status: Status::Undecided,
        };
        assert!(
            !p0.verify_cached(&env, &sig),
            "unknown epoch: rejected (and the negative is cached)"
        );
        p0.keyring
            .install_epoch(&bundle, identity.public_key())
            .expect("bundle verifies");
        assert!(
            p0.verify_cached(&env, &sig),
            "epoch stamp change must clear the stale negative"
        );
    }

    /// The two codecs drive the engine identically: same receipts,
    /// same wire bytes, same decisions, tick by tick.
    #[test]
    fn codec_paths_are_observationally_identical() {
        use crate::message::set_legacy_codec;
        let initial = legacy_codec_enabled();
        let run = |legacy: bool| {
            set_legacy_codec(legacy);
            let mut procs = make_group(4, &[true, false], 55);
            let mut log: Vec<(Vec<u8>, Receipt)> = Vec::new();
            for _ in 0..40 {
                let msgs: Vec<Bytes> = procs
                    .iter_mut()
                    .map(|p| p.on_tick().expect("keys cover phase").bytes)
                    .collect();
                for p in procs.iter_mut() {
                    for m in &msgs {
                        let r = p.on_message(m);
                        log.push((m.to_vec(), r));
                    }
                }
                if procs.iter().all(|p| p.decision().is_some()) {
                    break;
                }
            }
            let decisions: Vec<Option<bool>> = procs.iter().map(|p| p.decision()).collect();
            (log, decisions)
        };
        let legacy = run(true);
        let arena = run(false);
        set_legacy_codec(initial);
        assert_eq!(legacy.1, arena.1, "decisions diverged across codecs");
        assert_eq!(legacy.0, arena.0, "wire bytes or receipts diverged across codecs");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The memoizing instance is observationally identical to an
        /// uncached [`KeyRing::verify`] oracle: for every delivery —
        /// honest (`mask == 0`), corrupted, or an exact replay (which
        /// the cache answers) — the instance reports `AuthFailed`
        /// exactly when the oracle rejects the outer signature.
        #[test]
        fn cached_instance_matches_uncached_oracle(
            seed in 0u64..1000,
            ops in proptest::collection::vec(
                (1usize..4, 0usize..32, 0u8..=255u8, 1usize..4),
                1..40,
            ),
        ) {
            let n = 4;
            let cfg = Config::evaluation(n).expect("valid n");
            let rings = KeyRing::trusted_setup(n, PHASES, seed);
            let oracle = rings[0].clone();
            let mut procs: Vec<Turquois> = rings
                .into_iter()
                .enumerate()
                .map(|(i, r)| Turquois::new(cfg, i, i % 2 == 0, r, seed + i as u64))
                .collect();
            // One honest broadcast per peer, mutated and replayed below.
            let honest: Vec<Bytes> = (1..n)
                .map(|i| procs[i].on_tick().expect("keys cover phase").bytes)
                .collect();
            for (sender, idx, mask, copies) in ops {
                let mut bytes = honest[sender - 1].to_vec();
                bytes[8 + idx] ^= mask; // signature bytes (offset 8..40)
                for _ in 0..copies {
                    let receipt = procs[0].on_message(&bytes);
                    let msg = Message::decode(&bytes, &cfg).expect("corruption keeps the layout");
                    let oracle_ok = oracle.verify(&msg.envelope, &msg.signature);
                    proptest::prop_assert_eq!(
                        receipt.outcome == MessageOutcome::AuthFailed,
                        !oracle_ok,
                        "cached verdict diverged from the oracle"
                    );
                }
            }
        }

        /// Bounding the phase top-up at `quorum` collected entries is
        /// bit-identical to the retired unbounded scan: on arbitrary
        /// evidence stores (equivocators, gaps, every phase shape mod 3,
        /// both coin flips) the bounded bundle equals the unbounded one,
        /// so bounding never drops a message a receiver needs to justify
        /// a phase transition.
        #[test]
        fn bounded_bundle_matches_unbounded_scan(
            seed in 0u64..200,
            phase_sel in 3u32..=8,
            entries in proptest::collection::vec(
                (0usize..10, 1u32..=7, 0usize..3, proptest::prelude::any::<bool>()),
                0..80,
            ),
        ) {
            let n = 10;
            let cfg = Config::evaluation(n).expect("valid n");
            let rings = KeyRing::trusted_setup(n, PHASES, seed);
            let mut p = Turquois::new(cfg, 0, true, rings[0].clone(), seed);
            for (sender, phase, vi, coin) in entries {
                let value = [Value::Zero, Value::One, Value::Bot][vi];
                // `sign` rejects values illegal at `phase` (e.g. ⊥ at a
                // CONVERGE phase); skip those combos — a correct store
                // never holds them either.
                let Ok(sig) = rings[sender].sign(phase, value) else {
                    continue;
                };
                let env = Envelope {
                    sender,
                    phase,
                    value,
                    coin_flip: coin,
                    status: Status::Undecided,
                };
                p.evidence.insert(&env, sig);
            }
            let flat = |b: Vec<(Envelope, OneTimeSignature)>| -> Vec<(Envelope, [u8; 32])> {
                b.into_iter().map(|(e, s)| (e, s.0)).collect()
            };
            for value in [Value::Zero, Value::One, Value::Bot] {
                for coin in [false, true] {
                    let env = Envelope {
                        sender: 0,
                        phase: phase_sel,
                        value,
                        coin_flip: coin,
                        status: Status::Undecided,
                    };
                    let bounded = p.build_justification_with(&env, p.cfg.quorum_min());
                    let unbounded = p.build_justification_with(&env, usize::MAX);
                    proptest::prop_assert_eq!(
                        flat(bounded),
                        flat(unbounded),
                        "bounded bundle diverged at phase {} value {:?} coin {}",
                        phase_sel,
                        value,
                        coin
                    );
                }
            }
        }
    }
}
