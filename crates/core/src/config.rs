//! Protocol parameters and resilience bounds.

use std::fmt;

/// Parameters of one Turquois *k*-consensus instance.
///
/// The paper's constraints (§4, §5):
///
/// * `f < n/3` — Byzantine resilience;
/// * `(n + f)/2 < k ≤ n − f` — how many processes must decide.
///
/// # Example
///
/// ```
/// use turquois_core::config::Config;
/// let cfg = Config::new(10, 3, 7)?;
/// assert_eq!(cfg.quorum_min(), 7); // smallest count exceeding (n+f)/2
/// # Ok::<(), turquois_core::config::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub struct Config {
    n: usize,
    f: usize,
    k: usize,
}

/// Errors constructing a [`Config`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum ConfigError {
    /// `n` must be at least 1.
    ZeroProcesses,
    /// Violates `f < n/3`.
    TooManyByzantine {
        /// Total processes.
        n: usize,
        /// Requested Byzantine bound.
        f: usize,
    },
    /// Violates `(n + f)/2 < k ≤ n − f`.
    KOutOfRange {
        /// Total processes.
        n: usize,
        /// Byzantine bound.
        f: usize,
        /// Requested decision threshold.
        k: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroProcesses => write!(fm, "n must be at least 1"),
            ConfigError::TooManyByzantine { n, f } => {
                write!(fm, "f={f} violates f < n/3 for n={n}")
            }
            ConfigError::KOutOfRange { n, f, k } => {
                write!(fm, "k={k} violates (n+f)/2 < k <= n-f for n={n}, f={f}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Validates and constructs a configuration.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] for each violated constraint.
    pub fn new(n: usize, f: usize, k: usize) -> Result<Config, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroProcesses);
        }
        if 3 * f >= n {
            return Err(ConfigError::TooManyByzantine { n, f });
        }
        if 2 * k <= n + f || k > n - f {
            return Err(ConfigError::KOutOfRange { n, f, k });
        }
        Ok(Config { n, f, k })
    }

    /// The paper's evaluation configuration: `f = ⌊(n−1)/3⌋`,
    /// `k = n − f` (§7.2).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] (only possible for `n = 0`).
    pub fn evaluation(n: usize) -> Result<Config, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroProcesses);
        }
        let f = (n - 1) / 3;
        Config::new(n, f, n - f)
    }

    /// Total number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of Byzantine processes tolerated.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Number of processes required to decide.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `true` when `count` messages (from distinct senders) exceed the
    /// `(n + f)/2` quorum, computed in exact integer arithmetic.
    ///
    /// Under the test-only `quorum-mutation` feature the comparison is
    /// deliberately weakened to `>=` — a planted off-by-one that the
    /// `turquois-check` schedule explorer must detect (its "mutation
    /// smoke" mode). The bug only bites when `n + f` is even (every
    /// paper evaluation size has `n + f` odd, where `>` and `>=` agree),
    /// which is why the smoke runs at `n = 5`.
    pub fn exceeds_quorum(&self, count: usize) -> bool {
        #[cfg(feature = "quorum-mutation")]
        {
            2 * count >= self.n + self.f
        }
        #[cfg(not(feature = "quorum-mutation"))]
        {
            2 * count > self.n + self.f
        }
    }

    /// `true` when `count` exceeds half a quorum, `((n + f)/2)/2`
    /// (used by the semantic validation of §6.2).
    pub fn exceeds_half_quorum(&self, count: usize) -> bool {
        4 * count > self.n + self.f
    }

    /// Smallest count that satisfies [`Config::exceeds_quorum`].
    pub fn quorum_min(&self) -> usize {
        (self.n + self.f) / 2 + 1
    }

    /// Smallest count that satisfies [`Config::exceeds_half_quorum`].
    pub fn half_quorum_min(&self) -> usize {
        (self.n + self.f) / 4 + 1
    }

    /// The omission-fault bound σ under which progress is guaranteed
    /// (§1, §5): `σ = ⌈(n − t)/2⌉ · (n − k − t) + k − 2`, where `t ≤ f`
    /// is the number of *actually* faulty processes.
    ///
    /// # Panics
    ///
    /// Panics if `t > f` or `k + t > n` (no such executions exist).
    pub fn sigma(&self, t: usize) -> usize {
        assert!(t <= self.f, "t={t} exceeds f={}", self.f);
        assert!(self.k + t <= self.n, "k + t exceeds n");
        let half_up = self.n - t; // ⌈(n - t)/2⌉
        let half_up = half_up / 2 + half_up % 2;
        // Saturating: degenerate configurations (n = 1, k = 1) would
        // otherwise underflow the `+ k − 2` term.
        (half_up * (self.n - self.k - t) + self.k).saturating_sub(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs() {
        assert!(Config::new(4, 1, 3).is_ok());
        assert!(Config::new(7, 2, 5).is_ok());
        assert!(Config::new(10, 3, 7).is_ok());
        assert!(Config::new(16, 5, 11).is_ok());
        assert!(Config::new(1, 0, 1).is_ok());
    }

    #[test]
    fn rejects_f_at_third() {
        assert_eq!(
            Config::new(3, 1, 2),
            Err(ConfigError::TooManyByzantine { n: 3, f: 1 })
        );
        assert_eq!(
            Config::new(9, 3, 6),
            Err(ConfigError::TooManyByzantine { n: 9, f: 3 })
        );
    }

    #[test]
    fn rejects_k_out_of_range() {
        // k too small: (n+f)/2 = 2.5 for n=4, f=1 → k must be ≥ 3.
        assert_eq!(
            Config::new(4, 1, 2),
            Err(ConfigError::KOutOfRange { n: 4, f: 1, k: 2 })
        );
        // k too large: k > n − f.
        assert_eq!(
            Config::new(4, 1, 4),
            Err(ConfigError::KOutOfRange { n: 4, f: 1, k: 4 })
        );
    }

    #[test]
    fn rejects_zero_processes() {
        assert_eq!(Config::new(0, 0, 0), Err(ConfigError::ZeroProcesses));
        assert_eq!(Config::evaluation(0), Err(ConfigError::ZeroProcesses));
    }

    #[test]
    fn evaluation_matches_paper() {
        for (n, f) in [(4, 1), (7, 2), (10, 3), (13, 4), (16, 5)] {
            let cfg = Config::evaluation(n).expect("paper sizes are valid");
            assert_eq!(cfg.f(), f, "n={n}");
            assert_eq!(cfg.k(), n - f, "n={n}");
        }
    }

    #[test]
    fn quorum_arithmetic_exact() {
        let cfg = Config::new(4, 1, 3).expect("valid");
        // (n+f)/2 = 2.5: quorum needs ≥ 3.
        assert!(!cfg.exceeds_quorum(2));
        assert!(cfg.exceeds_quorum(3));
        assert_eq!(cfg.quorum_min(), 3);
        // ((n+f)/2)/2 = 1.25: half-quorum needs ≥ 2.
        assert!(!cfg.exceeds_half_quorum(1));
        assert!(cfg.exceeds_half_quorum(2));
        assert_eq!(cfg.half_quorum_min(), 2);
    }

    #[test]
    fn quorum_min_consistent_with_predicate() {
        for n in 1..=40 {
            let Ok(cfg) = Config::evaluation(n) else {
                continue;
            };
            let q = cfg.quorum_min();
            assert!(cfg.exceeds_quorum(q));
            assert!(!cfg.exceeds_quorum(q - 1));
            let h = cfg.half_quorum_min();
            assert!(cfg.exceeds_half_quorum(h));
            assert!(!cfg.exceeds_half_quorum(h - 1));
        }
    }

    #[test]
    fn two_quorums_intersect_in_a_correct_process() {
        // The agreement lemma: any two quorums share more than f senders,
        // hence at least one correct one.
        for n in [4usize, 7, 10, 13, 16] {
            let cfg = Config::evaluation(n).expect("valid");
            let q = cfg.quorum_min();
            let overlap = 2 * q - n; // minimum overlap of two q-subsets of n
            assert!(
                overlap > cfg.f(),
                "n={n}: overlap {overlap} must exceed f={}",
                cfg.f()
            );
        }
    }

    #[test]
    fn sigma_formula() {
        // n=10, k=7, t=3: ⌈7/2⌉·(10−7−3) + 7 − 2 = 4·0 + 5 = 5.
        let cfg = Config::new(10, 3, 7).expect("valid");
        assert_eq!(cfg.sigma(3), 5);
        // t=0: ⌈10/2⌉·(10−7) + 5 = 5·3 + 5 = 20.
        assert_eq!(cfg.sigma(0), 20);
    }

    #[test]
    #[should_panic(expected = "exceeds f")]
    fn sigma_rejects_large_t() {
        let cfg = Config::new(10, 3, 7).expect("valid");
        let _ = cfg.sigma(4);
    }

    #[test]
    fn display_of_errors() {
        let e = Config::new(3, 1, 2).unwrap_err();
        assert!(e.to_string().contains("f < n/3"));
        let e = Config::new(4, 1, 4).unwrap_err();
        assert!(e.to_string().contains("k"));
    }
}
