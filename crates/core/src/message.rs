//! Protocol messages and their wire encoding.
//!
//! A Turquois message is `⟨i, φ_i, v_i, status_i⟩` (Algorithm 1, line 6),
//! authenticated by the one-time signature `SK_i[φ_i][v_i]` (§6.1). Two
//! unauthenticated annotations ride along:
//!
//! * the **coin flag** — whether a CONVERGE-phase value came from a coin
//!   flip (Algorithm 1 distinguishes the two on lines 12–15); and
//! * the **status** — `decided`/`undecided`.
//!
//! Neither is covered by the signature; the paper explicitly notes this
//! for `status` (§6.1) and both are instead constrained by the semantic
//! validation of §6.2, which demands quorum evidence for every claim.
//!
//! A message optionally carries a **justification**: copies of earlier
//! signed messages supporting its phase/value/status claims (the
//! *explicit* validation path of §6.2, used from the second broadcast of
//! an unchanged state).

use crate::config::Config;
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use turquois_crypto::otss::{OneTimeSignature, Value};
use turquois_crypto::sha256::DIGEST_LEN;

/// Decision status carried in a message.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum Status {
    /// The sender has not decided.
    Undecided,
    /// The sender has decided its current value.
    Decided,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Undecided => f.write_str("undecided"),
            Status::Decided => f.write_str("decided"),
        }
    }
}

/// The signed, wire-visible part of a protocol message.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub struct Envelope {
    /// Claimed sender (verified by the one-time signature).
    pub sender: usize,
    /// The sender's phase `φ`.
    pub phase: u32,
    /// The sender's proposal value `v ∈ {0, 1, ⊥}`.
    pub value: Value,
    /// Whether `value` was produced by a coin flip (meaningful only when
    /// `phase mod 3 = 1`; unauthenticated, constrained semantically).
    pub coin_flip: bool,
    /// The sender's decision status (unauthenticated, constrained
    /// semantically).
    pub status: Status,
}

/// A full protocol message: envelope, signature, optional justification.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Message {
    /// The message contents.
    pub envelope: Envelope,
    /// One-time signature over `(phase, value)` by the claimed sender.
    pub signature: OneTimeSignature,
    /// Attached justification messages (envelope + signature each; never
    /// nested).
    pub justification: Vec<(Envelope, OneTimeSignature)>,
}

impl Message {
    /// A message with no justification attached.
    pub fn bare(envelope: Envelope, signature: OneTimeSignature) -> Self {
        Message {
            envelope,
            signature,
            justification: Vec::new(),
        }
    }

    /// Serialized size in bytes (drives simulated airtime).
    pub fn wire_size(&self) -> usize {
        ENVELOPE_LEN + DIGEST_LEN + 2 + self.justification.len() * (ENVELOPE_LEN + DIGEST_LEN)
    }

    /// Encodes the message for transmission.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        encode_envelope(&mut buf, &self.envelope);
        buf.put_slice(&self.signature.0);
        buf.put_u16(self.justification.len() as u16);
        for (env, sig) in &self.justification {
            encode_envelope(&mut buf, env);
            buf.put_slice(&sig.0);
        }
        buf.freeze()
    }

    /// Decodes a message from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or malformed fields; `cfg`
    /// is used to bound the sender id and justification size.
    pub fn decode(bytes: &[u8], cfg: &Config) -> Result<Message, DecodeError> {
        let mut r = Reader { bytes, at: 0 };
        let envelope = decode_envelope(&mut r, cfg)?;
        let signature = OneTimeSignature(r.take_digest()?);
        let count = r.take_u16()? as usize;
        // A justification never needs more than one full quorum per
        // claim; three claims bound it at 3n.
        if count > 3 * cfg.n() {
            return Err(DecodeError::JustificationTooLarge { count });
        }
        let mut justification = Vec::with_capacity(count);
        for _ in 0..count {
            let env = decode_envelope(&mut r, cfg)?;
            let sig = OneTimeSignature(r.take_digest()?);
            justification.push((env, sig));
        }
        if r.at != bytes.len() {
            return Err(DecodeError::TrailingBytes {
                extra: bytes.len() - r.at,
            });
        }
        Ok(Message {
            envelope,
            signature,
            justification,
        })
    }
}

const ENVELOPE_LEN: usize = 2 + 4 + 1 + 1;

const FLAG_COIN: u8 = 0b01;
const FLAG_DECIDED: u8 = 0b10;

fn encode_envelope(buf: &mut BytesMut, env: &Envelope) {
    buf.put_u16(env.sender as u16);
    buf.put_u32(env.phase);
    buf.put_u8(env.value.index() as u8);
    let mut flags = 0u8;
    if env.coin_flip {
        flags |= FLAG_COIN;
    }
    if env.status == Status::Decided {
        flags |= FLAG_DECIDED;
    }
    buf.put_u8(flags);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.bytes.len() {
            return Err(DecodeError::Truncated {
                needed: self.at + n,
                len: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn take_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn take_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn take_digest(&mut self) -> Result<[u8; DIGEST_LEN], DecodeError> {
        Ok(self
            .take(DIGEST_LEN)?
            .try_into()
            .expect("DIGEST_LEN bytes"))
    }
}

fn decode_envelope(r: &mut Reader<'_>, cfg: &Config) -> Result<Envelope, DecodeError> {
    let sender = r.take_u16()? as usize;
    if sender >= cfg.n() {
        return Err(DecodeError::BadSender { sender });
    }
    let phase = r.take_u32()?;
    if phase == 0 {
        return Err(DecodeError::ZeroPhase);
    }
    let value = match r.take_u8()? {
        0 => Value::Zero,
        1 => Value::One,
        2 => Value::Bot,
        other => return Err(DecodeError::BadValue { byte: other }),
    };
    let flags = r.take_u8()?;
    if flags & !(FLAG_COIN | FLAG_DECIDED) != 0 {
        return Err(DecodeError::BadFlags { byte: flags });
    }
    Ok(Envelope {
        sender,
        phase,
        value,
        coin_flip: flags & FLAG_COIN != 0,
        status: if flags & FLAG_DECIDED != 0 {
            Status::Decided
        } else {
            Status::Undecided
        },
    })
}

/// Errors decoding a wire message.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum DecodeError {
    /// Fewer bytes than the format requires.
    Truncated {
        /// Bytes needed so far.
        needed: usize,
        /// Bytes available.
        len: usize,
    },
    /// Sender id out of `0..n`.
    BadSender {
        /// The offending id.
        sender: usize,
    },
    /// Phases are 1-based; 0 is invalid.
    ZeroPhase,
    /// Value byte not in `{0, 1, 2}`.
    BadValue {
        /// The offending byte.
        byte: u8,
    },
    /// Unknown flag bits set.
    BadFlags {
        /// The offending byte.
        byte: u8,
    },
    /// Justification count exceeds the protocol bound.
    JustificationTooLarge {
        /// The claimed count.
        count: usize,
    },
    /// Bytes remain after a complete message.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, len } => {
                write!(f, "truncated message: needed {needed} bytes, have {len}")
            }
            DecodeError::BadSender { sender } => write!(f, "sender {sender} out of range"),
            DecodeError::ZeroPhase => write!(f, "phase 0 is invalid (phases are 1-based)"),
            DecodeError::BadValue { byte } => write!(f, "invalid value byte {byte}"),
            DecodeError::BadFlags { byte } => write!(f, "invalid flag byte {byte:#x}"),
            DecodeError::JustificationTooLarge { count } => {
                write!(f, "justification of {count} messages exceeds bound")
            }
            DecodeError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::new(7, 2, 5).expect("valid")
    }

    fn env(sender: usize, phase: u32, value: Value) -> Envelope {
        Envelope {
            sender,
            phase,
            value,
            coin_flip: false,
            status: Status::Undecided,
        }
    }

    fn sig(b: u8) -> OneTimeSignature {
        OneTimeSignature([b; DIGEST_LEN])
    }

    #[test]
    fn round_trip_bare() {
        let m = Message::bare(env(3, 5, Value::One), sig(7));
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_size());
        let d = Message::decode(&bytes, &cfg()).expect("valid");
        assert_eq!(d, m);
    }

    #[test]
    fn round_trip_all_fields() {
        for value in [Value::Zero, Value::One, Value::Bot] {
            for coin_flip in [false, true] {
                for status in [Status::Undecided, Status::Decided] {
                    let m = Message {
                        envelope: Envelope {
                            sender: 6,
                            phase: 123,
                            value,
                            coin_flip,
                            status,
                        },
                        signature: sig(9),
                        justification: vec![
                            (env(0, 122, Value::Zero), sig(1)),
                            (env(1, 122, Value::One), sig(2)),
                        ],
                    };
                    let d = Message::decode(&m.encode(), &cfg()).expect("valid");
                    assert_eq!(d, m);
                }
            }
        }
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let m = Message {
            envelope: env(1, 2, Value::Zero),
            signature: sig(3),
            justification: vec![(env(2, 1, Value::One), sig(4))],
        };
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut], &cfg()).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_sender() {
        let m = Message::bare(env(6, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        bytes[1] = 200; // sender = 200 > n
        assert!(matches!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::BadSender { sender: 200 })
        ));
    }

    #[test]
    fn decode_rejects_zero_phase() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        bytes[2..6].copy_from_slice(&0u32.to_be_bytes());
        assert_eq!(Message::decode(&bytes, &cfg()), Err(DecodeError::ZeroPhase));
    }

    #[test]
    fn decode_rejects_bad_value_and_flags() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        bytes[6] = 9;
        assert_eq!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::BadValue { byte: 9 })
        );
        let mut bytes = m.encode().to_vec();
        bytes[7] = 0xf0;
        assert_eq!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::BadFlags { byte: 0xf0 })
        );
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        bytes.push(0);
        assert_eq!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn decode_rejects_oversized_justification() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        let count_at = ENVELOPE_LEN + DIGEST_LEN;
        bytes[count_at..count_at + 2].copy_from_slice(&1000u16.to_be_bytes());
        assert!(matches!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::JustificationTooLarge { count: 1000 })
        ));
    }

    #[test]
    fn wire_size_small_without_justification() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        // 8-byte envelope + 32-byte signature + 2-byte count.
        assert_eq!(m.wire_size(), 42);
    }

    #[test]
    fn status_display() {
        assert_eq!(Status::Decided.to_string(), "decided");
        assert_eq!(Status::Undecided.to_string(), "undecided");
    }
}
