//! Protocol messages and their wire encoding.
//!
//! A Turquois message is `⟨i, φ_i, v_i, status_i⟩` (Algorithm 1, line 6),
//! authenticated by the one-time signature `SK_i[φ_i][v_i]` (§6.1). Two
//! unauthenticated annotations ride along:
//!
//! * the **coin flag** — whether a CONVERGE-phase value came from a coin
//!   flip (Algorithm 1 distinguishes the two on lines 12–15); and
//! * the **status** — `decided`/`undecided`.
//!
//! Neither is covered by the signature; the paper explicitly notes this
//! for `status` (§6.1) and both are instead constrained by the semantic
//! validation of §6.2, which demands quorum evidence for every claim.
//!
//! A message optionally carries a **justification**: copies of earlier
//! signed messages supporting its phase/value/status claims (the
//! *explicit* validation path of §6.2, used from the second broadcast of
//! an unchanged state).

use crate::config::Config;
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use turquois_crypto::otss::{OneTimeSignature, Value};
use turquois_crypto::sha256::DIGEST_LEN;

/// Environment variable selecting the legacy owned-`Vec` message codec.
///
/// Set to any non-empty value to bypass the flat-arena codec (borrowed
/// [`MessageView`] decode, pooled [`bytes::arena::EncodeArena`]
/// encode). Results must be byte-identical either way; the variable
/// exists as a differential guard and an escape hatch, mirroring
/// `TURQUOIS_LEGACY_QUEUE` / `TURQUOIS_LEGACY_STORE` (DESIGN.md §13).
pub const LEGACY_CODEC_ENV: &str = "TURQUOIS_LEGACY_CODEC";

static LEGACY_CODEC: AtomicBool = AtomicBool::new(false);
static LEGACY_CODEC_INIT: Once = Once::new();

/// Returns whether the hot paths use the legacy owned-`Vec` codec.
///
/// The first call reads [`LEGACY_CODEC_ENV`]; later calls reuse the
/// cached value unless [`set_legacy_codec`] overrides it.
pub fn legacy_codec_enabled() -> bool {
    LEGACY_CODEC_INIT.call_once(|| {
        if std::env::var_os(LEGACY_CODEC_ENV).is_some_and(|v| !v.is_empty()) {
            LEGACY_CODEC.store(true, Ordering::Relaxed);
        }
    });
    LEGACY_CODEC.load(Ordering::Relaxed)
}

/// Programmatically selects the codec for this crate, overriding the
/// environment (used by differential tests and `hotpath_bench`).
pub fn set_legacy_codec(enabled: bool) {
    // Make sure the env lookup never races in after us and clobbers
    // the explicit choice.
    LEGACY_CODEC_INIT.call_once(|| {});
    LEGACY_CODEC.store(enabled, Ordering::Relaxed);
}

/// Decision status carried in a message.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum Status {
    /// The sender has not decided.
    Undecided,
    /// The sender has decided its current value.
    Decided,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Undecided => f.write_str("undecided"),
            Status::Decided => f.write_str("decided"),
        }
    }
}

/// The signed, wire-visible part of a protocol message.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub struct Envelope {
    /// Claimed sender (verified by the one-time signature).
    pub sender: usize,
    /// The sender's phase `φ`.
    pub phase: u32,
    /// The sender's proposal value `v ∈ {0, 1, ⊥}`.
    pub value: Value,
    /// Whether `value` was produced by a coin flip (meaningful only when
    /// `phase mod 3 = 1`; unauthenticated, constrained semantically).
    pub coin_flip: bool,
    /// The sender's decision status (unauthenticated, constrained
    /// semantically).
    pub status: Status,
}

/// A full protocol message: envelope, signature, optional justification.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Message {
    /// The message contents.
    pub envelope: Envelope,
    /// One-time signature over `(phase, value)` by the claimed sender.
    pub signature: OneTimeSignature,
    /// Attached justification messages (envelope + signature each; never
    /// nested).
    pub justification: Vec<(Envelope, OneTimeSignature)>,
}

impl Message {
    /// A message with no justification attached.
    pub fn bare(envelope: Envelope, signature: OneTimeSignature) -> Self {
        Message {
            envelope,
            signature,
            justification: Vec::new(),
        }
    }

    /// Serialized size in bytes (drives simulated airtime).
    pub fn wire_size(&self) -> usize {
        ENVELOPE_LEN + DIGEST_LEN + 2 + self.justification.len() * (ENVELOPE_LEN + DIGEST_LEN)
    }

    /// Encodes the message for transmission.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Writes the wire encoding into any [`BufMut`] — the arena codec
    /// stages messages into a pooled chunk with this; [`encode`]
    /// produces the same bytes through its own builder.
    ///
    /// [`encode`]: Message::encode
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        encode_envelope(buf, &self.envelope);
        buf.put_slice(&self.signature.0);
        buf.put_u16(self.justification.len() as u16);
        for (env, sig) in &self.justification {
            encode_envelope(buf, env);
            buf.put_slice(&sig.0);
        }
    }

    /// Decodes a message from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or malformed fields; `cfg`
    /// is used to bound the sender id and justification size.
    pub fn decode(bytes: &[u8], cfg: &Config) -> Result<Message, DecodeError> {
        let mut r = Reader { bytes, at: 0 };
        let envelope = decode_envelope(&mut r, cfg)?;
        let signature = OneTimeSignature(r.take_digest()?);
        let count = r.take_u16()? as usize;
        // A justification never needs more than one full quorum per
        // claim; three claims bound it at 3n.
        if count > 3 * cfg.n() {
            return Err(DecodeError::JustificationTooLarge { count });
        }
        // The count field is untrusted: cap the speculative allocation
        // at what the remaining bytes could actually hold, so a huge
        // count on a tiny payload can't force a large reservation
        // before the per-entry bounds checks reject it.
        let fits = bytes.len().saturating_sub(r.at) / (ENVELOPE_LEN + DIGEST_LEN);
        let mut justification = Vec::with_capacity(count.min(fits));
        for _ in 0..count {
            let env = decode_envelope(&mut r, cfg)?;
            let sig = OneTimeSignature(r.take_digest()?);
            justification.push((env, sig));
        }
        if r.at != bytes.len() {
            return Err(DecodeError::TrailingBytes {
                extra: bytes.len() - r.at,
            });
        }
        Ok(Message {
            envelope,
            signature,
            justification,
        })
    }
}

const ENVELOPE_LEN: usize = 2 + 4 + 1 + 1;
/// Fixed prefix: envelope + signature + justification count.
const HEADER_LEN: usize = ENVELOPE_LEN + DIGEST_LEN + 2;
/// One justification entry: envelope + signature.
const ENTRY_LEN: usize = ENVELOPE_LEN + DIGEST_LEN;

const FLAG_COIN: u8 = 0b01;
const FLAG_DECIDED: u8 = 0b10;

fn encode_envelope<B: BufMut>(buf: &mut B, env: &Envelope) {
    buf.put_u16(env.sender as u16);
    buf.put_u32(env.phase);
    buf.put_u8(env.value.index() as u8);
    let mut flags = 0u8;
    if env.coin_flip {
        flags |= FLAG_COIN;
    }
    if env.status == Status::Decided {
        flags |= FLAG_DECIDED;
    }
    buf.put_u8(flags);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.bytes.len() {
            return Err(DecodeError::Truncated {
                needed: self.at + n,
                len: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn take_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn take_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn take_digest(&mut self) -> Result<[u8; DIGEST_LEN], DecodeError> {
        Ok(self
            .take(DIGEST_LEN)?
            .try_into()
            .expect("DIGEST_LEN bytes"))
    }
}

fn decode_envelope(r: &mut Reader<'_>, cfg: &Config) -> Result<Envelope, DecodeError> {
    let sender = r.take_u16()? as usize;
    if sender >= cfg.n() {
        return Err(DecodeError::BadSender { sender });
    }
    let phase = r.take_u32()?;
    if phase == 0 {
        return Err(DecodeError::ZeroPhase);
    }
    let value = match r.take_u8()? {
        0 => Value::Zero,
        1 => Value::One,
        2 => Value::Bot,
        other => return Err(DecodeError::BadValue { byte: other }),
    };
    let flags = r.take_u8()?;
    if flags & !(FLAG_COIN | FLAG_DECIDED) != 0 {
        return Err(DecodeError::BadFlags { byte: flags });
    }
    Ok(Envelope {
        sender,
        phase,
        value,
        coin_flip: flags & FLAG_COIN != 0,
        status: if flags & FLAG_DECIDED != 0 {
            Status::Decided
        } else {
            Status::Undecided
        },
    })
}

/// A borrowed, validated view of a wire message.
///
/// Parses the same format as [`Message::decode`] with bit-identical
/// error behavior, but leaves the justification entries in place as
/// offset ranges into the received buffer instead of materializing a
/// `Vec` — the steady-state receive path allocates nothing. Entries
/// are fully validated during [`MessageView::parse`]; the accessors
/// re-read them from the buffer on demand ([`Envelope`] and
/// [`OneTimeSignature`] are plain `Copy` data, so an access is a
/// 40-byte stack copy, not a heap allocation).
///
/// Use [`MessageView::to_message`] at the few points where a message
/// must outlive its delivery.
#[derive(Clone, Copy, Debug)]
pub struct MessageView<'a> {
    envelope: Envelope,
    signature: OneTimeSignature,
    bytes: &'a [u8],
    count: usize,
    cfg: Config,
}

impl<'a> MessageView<'a> {
    /// Parses and validates a wire message without materializing its
    /// justification.
    ///
    /// # Errors
    ///
    /// Returns exactly the [`DecodeError`] that [`Message::decode`]
    /// would return on the same input (the differential tests assert
    /// this at every truncation length).
    pub fn parse(bytes: &'a [u8], cfg: &Config) -> Result<MessageView<'a>, DecodeError> {
        let mut r = Reader { bytes, at: 0 };
        let envelope = decode_envelope(&mut r, cfg)?;
        let signature = OneTimeSignature(r.take_digest()?);
        let count = r.take_u16()? as usize;
        if count > 3 * cfg.n() {
            return Err(DecodeError::JustificationTooLarge { count });
        }
        for _ in 0..count {
            decode_envelope(&mut r, cfg)?;
            r.take_digest()?;
        }
        if r.at != bytes.len() {
            return Err(DecodeError::TrailingBytes {
                extra: bytes.len() - r.at,
            });
        }
        if count > 0 {
            // The legacy codec would have materialized a justification
            // Vec here (`Vec::with_capacity(0)` on bare messages does
            // not allocate, so only a non-empty justification counts).
            bytes::telemetry::count_allocs_saved(1);
        }
        Ok(MessageView {
            envelope,
            signature,
            bytes,
            count,
            cfg: *cfg,
        })
    }

    /// The signed envelope.
    pub fn envelope(&self) -> Envelope {
        self.envelope
    }

    /// The one-time signature over the envelope.
    pub fn signature(&self) -> OneTimeSignature {
        self.signature
    }

    /// Number of attached justification entries.
    pub fn justification_len(&self) -> usize {
        self.count
    }

    /// Reads justification entry `i` out of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn entry(&self, i: usize) -> (Envelope, OneTimeSignature) {
        assert!(i < self.count, "justification entry out of range");
        let mut r = Reader {
            bytes: self.bytes,
            at: HEADER_LEN + i * ENTRY_LEN,
        };
        let env = decode_envelope(&mut r, &self.cfg).expect("validated in parse");
        let sig = OneTimeSignature(r.take_digest().expect("validated in parse"));
        (env, sig)
    }

    /// The raw signature bytes of justification entry `i`, borrowed
    /// from the buffer (prehash batching feeds these to the multi-lane
    /// SHA kernel without copying).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sig_bytes(&self, i: usize) -> &'a [u8] {
        assert!(i < self.count, "justification entry out of range");
        &self.bytes[HEADER_LEN + i * ENTRY_LEN + ENVELOPE_LEN..][..DIGEST_LEN]
    }

    /// Materializes an owned [`Message`] (used only where a message
    /// outlives its delivery, e.g. tests and fixtures).
    pub fn to_message(&self) -> Message {
        Message {
            envelope: self.envelope,
            signature: self.signature,
            justification: (0..self.count).map(|i| self.entry(i)).collect(),
        }
    }
}

/// Errors decoding a wire message.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum DecodeError {
    /// Fewer bytes than the format requires.
    Truncated {
        /// Bytes needed so far.
        needed: usize,
        /// Bytes available.
        len: usize,
    },
    /// Sender id out of `0..n`.
    BadSender {
        /// The offending id.
        sender: usize,
    },
    /// Phases are 1-based; 0 is invalid.
    ZeroPhase,
    /// Value byte not in `{0, 1, 2}`.
    BadValue {
        /// The offending byte.
        byte: u8,
    },
    /// Unknown flag bits set.
    BadFlags {
        /// The offending byte.
        byte: u8,
    },
    /// Justification count exceeds the protocol bound.
    JustificationTooLarge {
        /// The claimed count.
        count: usize,
    },
    /// Bytes remain after a complete message.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, len } => {
                write!(f, "truncated message: needed {needed} bytes, have {len}")
            }
            DecodeError::BadSender { sender } => write!(f, "sender {sender} out of range"),
            DecodeError::ZeroPhase => write!(f, "phase 0 is invalid (phases are 1-based)"),
            DecodeError::BadValue { byte } => write!(f, "invalid value byte {byte}"),
            DecodeError::BadFlags { byte } => write!(f, "invalid flag byte {byte:#x}"),
            DecodeError::JustificationTooLarge { count } => {
                write!(f, "justification of {count} messages exceeds bound")
            }
            DecodeError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::new(7, 2, 5).expect("valid")
    }

    fn env(sender: usize, phase: u32, value: Value) -> Envelope {
        Envelope {
            sender,
            phase,
            value,
            coin_flip: false,
            status: Status::Undecided,
        }
    }

    fn sig(b: u8) -> OneTimeSignature {
        OneTimeSignature([b; DIGEST_LEN])
    }

    #[test]
    fn round_trip_bare() {
        let m = Message::bare(env(3, 5, Value::One), sig(7));
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_size());
        let d = Message::decode(&bytes, &cfg()).expect("valid");
        assert_eq!(d, m);
    }

    #[test]
    fn round_trip_all_fields() {
        for value in [Value::Zero, Value::One, Value::Bot] {
            for coin_flip in [false, true] {
                for status in [Status::Undecided, Status::Decided] {
                    let m = Message {
                        envelope: Envelope {
                            sender: 6,
                            phase: 123,
                            value,
                            coin_flip,
                            status,
                        },
                        signature: sig(9),
                        justification: vec![
                            (env(0, 122, Value::Zero), sig(1)),
                            (env(1, 122, Value::One), sig(2)),
                        ],
                    };
                    let d = Message::decode(&m.encode(), &cfg()).expect("valid");
                    assert_eq!(d, m);
                }
            }
        }
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let m = Message {
            envelope: env(1, 2, Value::Zero),
            signature: sig(3),
            justification: vec![(env(2, 1, Value::One), sig(4))],
        };
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut], &cfg()).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_sender() {
        let m = Message::bare(env(6, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        bytes[1] = 200; // sender = 200 > n
        assert!(matches!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::BadSender { sender: 200 })
        ));
    }

    #[test]
    fn decode_rejects_zero_phase() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        bytes[2..6].copy_from_slice(&0u32.to_be_bytes());
        assert_eq!(Message::decode(&bytes, &cfg()), Err(DecodeError::ZeroPhase));
    }

    #[test]
    fn decode_rejects_bad_value_and_flags() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        bytes[6] = 9;
        assert_eq!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::BadValue { byte: 9 })
        );
        let mut bytes = m.encode().to_vec();
        bytes[7] = 0xf0;
        assert_eq!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::BadFlags { byte: 0xf0 })
        );
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        bytes.push(0);
        assert_eq!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn decode_rejects_oversized_justification() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        let count_at = ENVELOPE_LEN + DIGEST_LEN;
        bytes[count_at..count_at + 2].copy_from_slice(&1000u16.to_be_bytes());
        assert!(matches!(
            Message::decode(&bytes, &cfg()),
            Err(DecodeError::JustificationTooLarge { count: 1000 })
        ));
    }

    #[test]
    fn wire_size_small_without_justification() {
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        // 8-byte envelope + 32-byte signature + 2-byte count.
        assert_eq!(m.wire_size(), 42);
    }

    #[test]
    fn status_display() {
        assert_eq!(Status::Decided.to_string(), "decided");
        assert_eq!(Status::Undecided.to_string(), "undecided");
    }

    #[test]
    fn codec_gate_round_trips() {
        let initial = legacy_codec_enabled();
        set_legacy_codec(true);
        assert!(legacy_codec_enabled());
        set_legacy_codec(false);
        assert!(!legacy_codec_enabled());
        set_legacy_codec(initial);
    }

    /// Both codecs agree on every accessor for a valid message.
    #[test]
    fn view_matches_decode_on_valid_messages() {
        let m = Message {
            envelope: Envelope {
                sender: 6,
                phase: 123,
                value: Value::One,
                coin_flip: true,
                status: Status::Decided,
            },
            signature: sig(9),
            justification: vec![
                (env(0, 122, Value::Zero), sig(1)),
                (env(1, 122, Value::One), sig(2)),
                (env(5, 121, Value::Bot), sig(3)),
            ],
        };
        let bytes = m.encode();
        let view = MessageView::parse(&bytes, &cfg()).expect("valid");
        assert_eq!(view.envelope(), m.envelope);
        assert_eq!(view.signature(), m.signature);
        assert_eq!(view.justification_len(), m.justification.len());
        for (i, entry) in m.justification.iter().enumerate() {
            assert_eq!(view.entry(i), *entry);
            assert_eq!(view.sig_bytes(i), &entry.1 .0[..]);
        }
        assert_eq!(view.to_message(), m);
    }

    /// Error parity with the owned decoder at every truncation length
    /// and on every mutated-field rejection.
    #[test]
    fn view_error_parity_with_decode() {
        let m = Message {
            envelope: env(1, 2, Value::Zero),
            signature: sig(3),
            justification: vec![(env(2, 1, Value::One), sig(4))],
        };
        let bytes = m.encode();
        let c = cfg();
        for cut in 0..=bytes.len() {
            let owned = Message::decode(&bytes[..cut], &c).err();
            let view = MessageView::parse(&bytes[..cut], &c).err();
            assert_eq!(owned, view, "engines disagree at cut {cut}");
        }
        // Trailing bytes.
        let mut trailing = bytes.to_vec();
        trailing.push(0);
        assert_eq!(
            Message::decode(&trailing, &c).err(),
            MessageView::parse(&trailing, &c).err()
        );
        // Oversized count, bad sender, zero phase, bad value, bad flags.
        for (at, val) in [(40usize, 255u8), (1, 200), (5, 0), (6, 9), (7, 0xf0)] {
            let mut mutated = bytes.to_vec();
            mutated[at] = val;
            assert_eq!(
                Message::decode(&mutated, &c).err(),
                MessageView::parse(&mutated, &c).err(),
                "engines disagree with byte {at} set to {val}"
            );
        }
    }

    /// Satellite fix: a huge claimed count on a tiny payload must fail
    /// with `Truncated` (not attempt a large speculative reservation)
    /// — identically in both engines.
    #[test]
    fn huge_count_with_tiny_payload_is_truncated_in_both_engines() {
        // Large n so the 3n justification bound does not trip first.
        let big = Config::evaluation(30000).expect("valid");
        let m = Message::bare(env(0, 1, Value::Zero), sig(0));
        let mut bytes = m.encode().to_vec();
        let count_at = ENVELOPE_LEN + DIGEST_LEN;
        bytes[count_at..count_at + 2].copy_from_slice(&u16::MAX.to_be_bytes());
        let owned = Message::decode(&bytes, &big);
        let view = MessageView::parse(&bytes, &big).map(|v| v.to_message());
        assert!(
            matches!(owned, Err(DecodeError::Truncated { .. })),
            "got {owned:?}"
        );
        assert_eq!(owned.err(), view.err());
    }

    /// Acceptance criterion: steady-state view parsing of a
    /// justification-free message performs no allocations — asserted
    /// via the telemetry counters (a justified message credits exactly
    /// the one skipped `Vec`).
    #[test]
    fn view_parse_allocation_telemetry() {
        let c = cfg();
        let bare = Message::bare(env(3, 5, Value::One), sig(7)).encode();
        let justified = Message {
            envelope: env(3, 5, Value::One),
            signature: sig(7),
            justification: vec![(env(0, 4, Value::One), sig(1))],
        }
        .encode();
        let (copied0, saved0) = (bytes::telemetry::bytes_copied(), bytes::telemetry::allocs_saved());
        for _ in 0..16 {
            let v = MessageView::parse(&bare, &c).expect("valid");
            assert_eq!(v.justification_len(), 0);
        }
        assert_eq!(
            bytes::telemetry::bytes_copied(),
            copied0,
            "bare view parse must not copy"
        );
        assert_eq!(
            bytes::telemetry::allocs_saved(),
            saved0,
            "bare decode was already allocation-free; nothing to save"
        );
        let v = MessageView::parse(&justified, &c).expect("valid");
        assert_eq!(v.justification_len(), 1);
        assert_eq!(
            bytes::telemetry::allocs_saved(),
            saved0 + 1,
            "justified view parse saves the justification Vec"
        );
        assert_eq!(bytes::telemetry::bytes_copied(), copied0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(96))]

        /// View vs. legacy codec on arbitrary (mostly invalid) byte
        /// strings: identical accept/reject verdicts, identical
        /// errors, identical materialized messages.
        #[test]
        fn view_and_decode_agree_on_arbitrary_bytes(
            raw in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..160),
        ) {
            let c = cfg();
            let owned = Message::decode(&raw, &c);
            let view = MessageView::parse(&raw, &c).map(|v| v.to_message());
            proptest::prop_assert_eq!(owned, view);
        }

        /// Round-trip parity on arbitrary *valid* messages, truncated
        /// at every prefix length.
        #[test]
        fn view_and_decode_agree_on_valid_messages_and_all_prefixes(
            sender in 0usize..7,
            phase in 1u32..1000,
            vsel in 0u8..3,
            coin in proptest::arbitrary::any::<bool>(),
            decided in proptest::arbitrary::any::<bool>(),
            just in proptest::collection::vec((0usize..7, 1u32..1000, 0u8..3), 0..6),
        ) {
            let c = cfg();
            let value = [Value::Zero, Value::One, Value::Bot][vsel as usize];
            let m = Message {
                envelope: Envelope {
                    sender,
                    phase,
                    value,
                    coin_flip: coin,
                    status: if decided { Status::Decided } else { Status::Undecided },
                },
                signature: sig(9),
                justification: just
                    .into_iter()
                    .map(|(s, p, v)| {
                        (env(s, p, [Value::Zero, Value::One, Value::Bot][v as usize]), sig(v))
                    })
                    .collect(),
            };
            let bytes = m.encode();
            let view = MessageView::parse(&bytes, &c).expect("valid message");
            proptest::prop_assert_eq!(view.to_message(), m);
            for cut in 0..bytes.len() {
                proptest::prop_assert_eq!(
                    Message::decode(&bytes[..cut], &c).err(),
                    MessageView::parse(&bytes[..cut], &c).err()
                );
            }
        }
    }
}
