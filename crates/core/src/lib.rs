//! # turquois-core — the Turquois Byzantine *k*-consensus protocol
//!
//! A faithful implementation of *Moniz, Neves, Correia — "Turquois:
//! Byzantine Consensus in Wireless Ad hoc Networks", DSN 2010*: a
//! randomized binary consensus protocol that tolerates `f < n/3`
//! Byzantine processes **and** unrestricted dynamic omission faults,
//! designed for the shared broadcast medium of wireless ad hoc networks.
//!
//! The protocol cycles through three phases — CONVERGE, LOCK, DECIDE —
//! driven only by local clock ticks and whatever messages happen to
//! arrive. Safety (agreement, validity) holds under any message loss;
//! progress is guaranteed in rounds where omissions stay under the bound
//! `σ = ⌈(n−t)/2⌉(n−k−t) + k − 2` ([`config::Config::sigma`]); and
//! termination has probability 1 via local coins.
//!
//! Authentication avoids public-key cryptography on the critical path:
//! each message reveals a pre-committed one-time hash key for its
//! `(phase, value)` pair (§6.1 — [`turquois_crypto::otss`]), and a
//! semantic validation layer (§6.2 — [`validation`]) forces every claim
//! to be backed by quorum evidence.
//!
//! Entry point: [`instance::Turquois`], a sans-io engine the caller
//! drives with `on_tick` / `on_message`. See the crate examples and the
//! `wireless-net` simulator adapters in `turquois-harness`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coin;
pub mod config;
pub mod instance;
pub mod keyring;
pub mod message;
pub mod state;
pub mod store;
pub mod validation;

pub use config::Config;
pub use instance::{MessageOutcome, Outbound, Receipt, Turquois};
pub use keyring::KeyRing;
pub use message::{Envelope, Message, Status};
pub use state::{PhaseKind, ProcessState};
pub use turquois_crypto::otss::Value;
