//! The Turquois state machine — a line-for-line implementation of the
//! paper's Algorithm 1.
//!
//! A process's internal state is the triple `(φ_i, v_i, status_i)` plus
//! the write-once `decision_i`. Transitions are driven entirely by the
//! set of valid messages `V_i` (here a [`MessageStore`]) and happen under
//! two conditions (paper §5):
//!
//! 1. **Catch-up** (lines 10–18): some valid message carries a phase
//!    higher than `φ_i` — adopt its state. If the adopted message sits in
//!    a CONVERGE phase and its value came from a coin flip, flip a local
//!    coin instead of copying the value (a Byzantine process cannot be
//!    forced into a fair flip, so each correct process randomizes
//!    independently).
//! 2. **Quorum** (lines 19–39): more than `(n+f)/2` distinct senders are
//!    represented at `φ_i` — apply the CONVERGE/LOCK/DECIDE step and move
//!    to `φ_i + 1`.
//!
//! Both rules are applied to fixpoint after every message arrival; each
//! application strictly increases `φ_i`, so the loop terminates.

use crate::config::Config;
use crate::message::{Envelope, Status};
use crate::store::MessageStore;
use turquois_crypto::otss::Value;

/// The protocol phase kind for a phase number (phases are 1-based).
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum PhaseKind {
    /// `φ mod 3 = 1`: processes converge on the most common value.
    Converge,
    /// `φ mod 3 = 2`: processes lock a value (or `⊥`).
    Lock,
    /// `φ mod 3 = 0`: processes try to decide.
    Decide,
}

impl PhaseKind {
    /// The kind of `phase`.
    ///
    /// # Panics
    ///
    /// Panics on phase 0 (phases are 1-based).
    pub fn of(phase: u32) -> PhaseKind {
        assert!(phase >= 1, "phases are 1-based");
        match phase % 3 {
            1 => PhaseKind::Converge,
            2 => PhaseKind::Lock,
            _ => PhaseKind::Decide,
        }
    }
}

/// Result of a [`ProcessState::try_advance`] fixpoint.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct Advance {
    /// Whether `φ_i` changed (triggers an immediate broadcast per the
    /// clock-tick rule of §7.1).
    pub phase_changed: bool,
    /// `Some(v)` when `decision_i` was set during this advance.
    pub newly_decided: Option<bool>,
}

/// The `(φ_i, v_i, status_i, decision_i)` state of one process.
#[derive(Clone, Debug)]
pub struct ProcessState {
    cfg: Config,
    id: usize,
    phase: u32,
    value: Value,
    coin_flip: bool,
    status: Status,
    decision: Option<bool>,
}

impl ProcessState {
    /// Initial state: `φ_i = 1`, `v_i = proposal`, undecided
    /// (Algorithm 1, lines 1–3).
    pub fn new(cfg: Config, id: usize, proposal: bool) -> Self {
        ProcessState {
            cfg,
            id,
            phase: 1,
            value: Value::from_bit(proposal),
            coin_flip: false,
            status: Status::Undecided,
            decision: None,
        }
    }

    /// This process's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current phase `φ_i`.
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Current proposal value `v_i`.
    pub fn value(&self) -> Value {
        self.value
    }

    /// Whether the current value came from a local coin flip.
    pub fn coin_flip(&self) -> bool {
        self.coin_flip
    }

    /// Current decision status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// The write-once decision, if reached.
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// The message this process broadcasts on a clock tick
    /// (`⟨i, φ_i, v_i, status_i⟩`, line 6).
    pub fn envelope(&self) -> Envelope {
        Envelope {
            sender: self.id,
            phase: self.phase,
            value: self.value,
            coin_flip: self.coin_flip,
            status: self.status,
        }
    }

    /// Applies transition rules 1 and 2 to fixpoint against the valid
    /// message set, flipping `coin` where Algorithm 1 calls `coin_i()`.
    pub fn try_advance(
        &mut self,
        valid: &MessageStore,
        coin: &mut dyn FnMut() -> bool,
    ) -> Advance {
        let start_phase = self.phase;
        let mut result = Advance::default();
        loop {
            let mut progressed = false;

            // Rule 1 (lines 10–18): adopt the state of a higher-phase
            // valid message.
            if let Some((phase, _sender, rec)) = valid.best_catch_up(self.phase) {
                self.phase = phase;
                if PhaseKind::of(phase) == PhaseKind::Converge && rec.coin_flip {
                    // Lines 12–13: re-randomize locally.
                    self.value = Value::from_bit(coin());
                    self.coin_flip = true;
                } else {
                    self.value = rec.value;
                    self.coin_flip = rec.coin_flip && PhaseKind::of(phase) == PhaseKind::Converge;
                }
                self.status = rec.status;
                progressed = true;
            }

            // Rule 2 (lines 19–39): a quorum at the current phase.
            if self.cfg.exceeds_quorum(valid.count_phase(self.phase)) {
                match PhaseKind::of(self.phase) {
                    PhaseKind::Converge => {
                        // Lines 20–21: adopt the majority value.
                        self.value = valid.majority_value(self.phase);
                        self.coin_flip = false;
                    }
                    PhaseKind::Lock => {
                        // Lines 22–27: lock a super-majority value or ⊥.
                        self.value = Value::ALL
                            .into_iter()
                            .filter(|v| v.as_bit().is_some())
                            .find(|&v| {
                                self.cfg.exceeds_quorum(valid.count_value(self.phase, v))
                            })
                            .unwrap_or(Value::Bot);
                        self.coin_flip = false;
                    }
                    PhaseKind::Decide => {
                        // Lines 29–31: decide on a super-majority value.
                        let decided_value = [Value::Zero, Value::One].into_iter().find(|&v| {
                            self.cfg.exceeds_quorum(valid.count_value(self.phase, v))
                        });
                        if decided_value.is_some() {
                            self.status = Status::Decided;
                        }
                        // Lines 32–36: carry any binary value forward, or
                        // flip the local coin.
                        match valid.any_binary_value(self.phase) {
                            Some(v) => {
                                self.value = v;
                                self.coin_flip = false;
                            }
                            None => {
                                self.value = Value::from_bit(coin());
                                self.coin_flip = true;
                            }
                        }
                    }
                }
                // Line 38.
                self.phase += 1;
                progressed = true;
            }

            // Lines 40–42: the write-once decision.
            if self.status == Status::Decided && self.decision.is_none() {
                debug_assert!(
                    self.value.as_bit().is_some(),
                    "a decided state always carries a binary value"
                );
                if let Some(bit) = self.value.as_bit() {
                    self.decision = Some(bit);
                    result.newly_decided = Some(bit);
                }
            }

            if !progressed {
                break;
            }
        }
        result.phase_changed = self.phase != start_phase;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turquois_crypto::otss::OneTimeSignature;
    use turquois_crypto::sha256::DIGEST_LEN;

    fn cfg() -> Config {
        Config::new(4, 1, 3).expect("valid") // quorum = 3
    }

    fn sig() -> OneTimeSignature {
        OneTimeSignature([0; DIGEST_LEN])
    }

    fn put(store: &mut MessageStore, sender: usize, phase: u32, value: Value) {
        put_full(store, sender, phase, value, false, Status::Undecided);
    }

    fn put_full(
        store: &mut MessageStore,
        sender: usize,
        phase: u32,
        value: Value,
        coin_flip: bool,
        status: Status,
    ) {
        store.insert(
            &Envelope {
                sender,
                phase,
                value,
                coin_flip,
                status,
            },
            sig(),
        );
    }

    fn no_coin() -> impl FnMut() -> bool {
        || panic!("coin must not be consulted in this scenario")
    }

    #[test]
    fn phase_kind_cycle() {
        assert_eq!(PhaseKind::of(1), PhaseKind::Converge);
        assert_eq!(PhaseKind::of(2), PhaseKind::Lock);
        assert_eq!(PhaseKind::of(3), PhaseKind::Decide);
        assert_eq!(PhaseKind::of(4), PhaseKind::Converge);
        assert_eq!(PhaseKind::of(300), PhaseKind::Decide);
    }

    #[test]
    fn initial_state() {
        let st = ProcessState::new(cfg(), 2, true);
        assert_eq!(st.phase(), 1);
        assert_eq!(st.value(), Value::One);
        assert_eq!(st.status(), Status::Undecided);
        assert_eq!(st.decision(), None);
        let env = st.envelope();
        assert_eq!(env.sender, 2);
        assert_eq!(env.phase, 1);
    }

    #[test]
    fn no_quorum_no_progress() {
        let mut st = ProcessState::new(cfg(), 0, true);
        let mut store = MessageStore::new(4);
        put(&mut store, 0, 1, Value::One);
        put(&mut store, 1, 1, Value::One);
        let adv = st.try_advance(&store, &mut no_coin());
        assert_eq!(adv, Advance::default());
        assert_eq!(st.phase(), 1);
    }

    #[test]
    fn unanimous_run_decides_at_phase_three() {
        // All four processes propose 1; feed process 0 full quorums for
        // phases 1, 2, 3 and it must decide 1 entering phase 4.
        let mut st = ProcessState::new(cfg(), 0, true);
        let mut store = MessageStore::new(4);
        for sender in 0..4 {
            put(&mut store, sender, 1, Value::One);
        }
        let adv = st.try_advance(&store, &mut no_coin());
        assert!(adv.phase_changed);
        assert_eq!(st.phase(), 2);
        assert_eq!(st.value(), Value::One, "CONVERGE adopts the majority");

        for sender in 0..4 {
            put(&mut store, sender, 2, Value::One);
        }
        st.try_advance(&store, &mut no_coin());
        assert_eq!(st.phase(), 3);
        assert_eq!(st.value(), Value::One, "LOCK locks the quorum value");

        for sender in 0..4 {
            put(&mut store, sender, 3, Value::One);
        }
        let adv = st.try_advance(&store, &mut no_coin());
        assert_eq!(st.phase(), 4);
        assert_eq!(st.status(), Status::Decided);
        assert_eq!(adv.newly_decided, Some(true));
        assert_eq!(st.decision(), Some(true));
    }

    #[test]
    fn fixpoint_cascades_through_buffered_phases() {
        // Quorums for phases 1..=3 already buffered: one call cascades.
        let mut st = ProcessState::new(cfg(), 0, false);
        let mut store = MessageStore::new(4);
        for phase in 1..=3 {
            for sender in 0..4 {
                put(&mut store, sender, phase, Value::Zero);
            }
        }
        let adv = st.try_advance(&store, &mut no_coin());
        assert_eq!(st.phase(), 4);
        assert_eq!(adv.newly_decided, Some(false));
    }

    #[test]
    fn lock_without_supermajority_locks_bot() {
        let mut st = ProcessState::new(cfg(), 0, true);
        st.phase = 2;
        let mut store = MessageStore::new(4);
        put(&mut store, 0, 2, Value::Zero);
        put(&mut store, 1, 2, Value::Zero);
        put(&mut store, 2, 2, Value::One);
        put(&mut store, 3, 2, Value::One);
        st.try_advance(&store, &mut no_coin());
        assert_eq!(st.phase(), 3);
        assert_eq!(st.value(), Value::Bot);
    }

    #[test]
    fn decide_phase_all_bot_flips_coin() {
        let mut st = ProcessState::new(cfg(), 0, true);
        st.phase = 3;
        let mut store = MessageStore::new(4);
        for sender in 0..4 {
            put(&mut store, sender, 3, Value::Bot);
        }
        let mut flips = 0;
        let mut coin = || {
            flips += 1;
            false
        };
        let adv = st.try_advance(&store, &mut coin);
        assert_eq!(st.phase(), 4);
        assert_eq!(st.value(), Value::Zero);
        assert!(st.coin_flip());
        assert_eq!(st.status(), Status::Undecided);
        assert_eq!(adv.newly_decided, None);
        assert_eq!(flips, 1);
    }

    #[test]
    fn decide_phase_partial_value_carries_without_deciding() {
        // Quorum at phase 3 but only one non-⊥ value: carry it, stay
        // undecided.
        let mut st = ProcessState::new(cfg(), 0, true);
        st.phase = 3;
        let mut store = MessageStore::new(4);
        put(&mut store, 0, 3, Value::Bot);
        put(&mut store, 1, 3, Value::Bot);
        put(&mut store, 2, 3, Value::One);
        st.try_advance(&store, &mut no_coin());
        assert_eq!(st.phase(), 4);
        assert_eq!(st.value(), Value::One);
        assert!(!st.coin_flip());
        assert_eq!(st.status(), Status::Undecided);
    }

    #[test]
    fn catch_up_adopts_state() {
        let mut st = ProcessState::new(cfg(), 0, false);
        let mut store = MessageStore::new(4);
        put_full(&mut store, 3, 5, Value::One, false, Status::Undecided);
        let adv = st.try_advance(&store, &mut no_coin());
        assert!(adv.phase_changed);
        assert_eq!(st.phase(), 5);
        assert_eq!(st.value(), Value::One);
    }

    #[test]
    fn catch_up_to_coin_converge_message_flips_own_coin() {
        let mut st = ProcessState::new(cfg(), 0, false);
        let mut store = MessageStore::new(4);
        // Phase 4 is CONVERGE; the sender's value came from its coin.
        put_full(&mut store, 2, 4, Value::Zero, true, Status::Undecided);
        let mut coin = || true;
        st.try_advance(&store, &mut coin);
        assert_eq!(st.phase(), 4);
        assert_eq!(st.value(), Value::One, "local coin overrides the carried value");
        assert!(st.coin_flip());
    }

    #[test]
    fn catch_up_adopts_decided_status_and_decides() {
        let mut st = ProcessState::new(cfg(), 0, false);
        let mut store = MessageStore::new(4);
        put_full(&mut store, 1, 7, Value::One, false, Status::Decided);
        let adv = st.try_advance(&store, &mut no_coin());
        assert_eq!(st.phase(), 7);
        assert_eq!(adv.newly_decided, Some(true));
        assert_eq!(st.decision(), Some(true));
    }

    #[test]
    fn decision_is_write_once() {
        let mut st = ProcessState::new(cfg(), 0, false);
        let mut store = MessageStore::new(4);
        put_full(&mut store, 1, 7, Value::One, false, Status::Decided);
        assert_eq!(
            st.try_advance(&store, &mut no_coin()).newly_decided,
            Some(true)
        );
        // A later (even higher-phase) message cannot change the decision.
        put_full(&mut store, 2, 10, Value::Zero, false, Status::Decided);
        let adv = st.try_advance(&store, &mut no_coin());
        assert_eq!(adv.newly_decided, None);
        assert_eq!(st.decision(), Some(true));
        assert_eq!(st.value(), Value::Zero, "v_i keeps tracking the protocol");
    }

    #[test]
    fn quorum_counts_distinct_senders_not_messages() {
        // An equivocating sender contributes one sender to the phase
        // count: 2 senders ≠ quorum of 3.
        let mut st = ProcessState::new(cfg(), 0, true);
        let mut store = MessageStore::new(4);
        put(&mut store, 1, 1, Value::Zero);
        put(&mut store, 1, 1, Value::One); // equivocation
        put(&mut store, 2, 1, Value::One);
        let adv = st.try_advance(&store, &mut no_coin());
        assert!(!adv.phase_changed);
        assert_eq!(st.phase(), 1);
    }

    #[test]
    fn converge_majority_breaks_tie_to_one() {
        let mut st = ProcessState::new(cfg(), 0, false);
        let mut store = MessageStore::new(4);
        put(&mut store, 0, 1, Value::Zero);
        put(&mut store, 1, 1, Value::Zero);
        put(&mut store, 2, 1, Value::One);
        put(&mut store, 3, 1, Value::One);
        st.try_advance(&store, &mut no_coin());
        assert_eq!(st.phase(), 2);
        assert_eq!(st.value(), Value::One);
    }
}
