//! The local-coin abstraction (`coin_i()` of Algorithm 1).
//!
//! Turquois is a *local coin* protocol in the tradition of Ben-Or: each
//! process flips private, unbiased bits, as opposed to the shared coin of
//! ABBA. The trait exists so deterministic test doubles can replace
//! randomness in protocol tests.

use rand::Rng;
use rand::RngCore;

/// A source of unbiased private random bits.
pub trait Coin {
    /// Flips the coin.
    fn flip(&mut self) -> bool;
}

/// A coin backed by any RNG.
#[derive(Clone, Debug)]
pub struct RngCoin<R> {
    rng: R,
}

impl<R: RngCore> RngCoin<R> {
    /// Wraps `rng` as a coin.
    pub fn new(rng: R) -> Self {
        RngCoin { rng }
    }
}

impl<R: RngCore> Coin for RngCoin<R> {
    fn flip(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }
}

/// A scripted coin for deterministic tests; cycles through its script.
#[derive(Clone, Debug)]
pub struct ScriptedCoin {
    script: Vec<bool>,
    at: usize,
}

impl ScriptedCoin {
    /// Creates a coin that yields `script` values cyclically.
    ///
    /// # Panics
    ///
    /// Panics on an empty script.
    pub fn new(script: Vec<bool>) -> Self {
        assert!(!script.is_empty(), "script must not be empty");
        ScriptedCoin { script, at: 0 }
    }

    /// Number of flips consumed so far.
    pub fn flips(&self) -> usize {
        self.at
    }
}

impl Coin for ScriptedCoin {
    fn flip(&mut self) -> bool {
        let v = self.script[self.at % self.script.len()];
        self.at += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rng_coin_is_roughly_fair() {
        let mut coin = RngCoin::new(StdRng::seed_from_u64(7));
        let heads = (0..10_000).filter(|_| coin.flip()).count();
        assert!((4_500..=5_500).contains(&heads), "{heads} heads");
    }

    #[test]
    fn scripted_coin_cycles() {
        let mut coin = ScriptedCoin::new(vec![true, false]);
        assert!(coin.flip());
        assert!(!coin.flip());
        assert!(coin.flip());
        assert_eq!(coin.flips(), 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn scripted_coin_rejects_empty() {
        let _ = ScriptedCoin::new(vec![]);
    }
}
