//! Key material management: own one-time secret keys, everyone's
//! verification keys, and the key-exchange ceremony of §6.1.
//!
//! Each process holds, per key-exchange epoch, its own
//! [`KeyPairArray`] (secret + verification keys for `m` phases) and the
//! [`VerificationKeyArray`] of every other process. The first epoch's
//! arrays are distributed *offline together with the public keys* (the
//! paper's optimization); later epochs are distributed as
//! [`SignedVerificationKeys`] bundles signed with each process's
//! long-term hash-based identity key.

use std::fmt;
use std::sync::Arc;
use turquois_crypto::hashsig;
use turquois_crypto::otss::{
    KeyPairArray, OneTimeSignature, SignError, SignedVerificationKeys, Value, VerificationKeyArray,
};

use crate::message::Envelope;

/// Errors from keyring operations.
#[derive(Debug)]
pub enum KeyRingError {
    /// The verification-key set does not cover every process.
    WrongProcessCount {
        /// Expected process count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// A verification-key array is registered under the wrong process.
    ProcessMismatch {
        /// Index in the provided vector.
        index: usize,
        /// The array's embedded process id.
        embedded: usize,
    },
    /// An epoch extension does not start where the previous one ended.
    EpochGap {
        /// First phase expected for the new epoch.
        expected_first: u32,
        /// First phase provided.
        got_first: u32,
    },
    /// The signature on a distributed verification-key bundle failed.
    BadBundleSignature {
        /// The claimed owner.
        process: usize,
    },
    /// The epoch's own key array does not match this process id.
    NotOurKeys {
        /// This keyring's process.
        ours: usize,
        /// The array's embedded process id.
        theirs: usize,
    },
}

impl fmt::Display for KeyRingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyRingError::WrongProcessCount { expected, got } => {
                write!(f, "expected keys for {expected} processes, got {got}")
            }
            KeyRingError::ProcessMismatch { index, embedded } => {
                write!(f, "key array at index {index} belongs to process {embedded}")
            }
            KeyRingError::EpochGap {
                expected_first,
                got_first,
            } => write!(
                f,
                "epoch must start at phase {expected_first}, starts at {got_first}"
            ),
            KeyRingError::BadBundleSignature { process } => {
                write!(f, "invalid signature on key bundle from process {process}")
            }
            KeyRingError::NotOurKeys { ours, theirs } => {
                write!(f, "key array for process {theirs} given to process {ours}")
            }
        }
    }
}

impl std::error::Error for KeyRingError {}

/// One process's view of all key material.
#[derive(Clone)]
pub struct KeyRing {
    id: usize,
    n: usize,
    /// Own secret/verification arrays, one per epoch, contiguous phases.
    own_epochs: Vec<KeyPairArray>,
    /// `vks[p]` = process `p`'s verification arrays, one per epoch.
    ///
    /// Arrays are immutable once distributed, so they are `Arc`-shared:
    /// the `n` rings of a [`KeyRing::trusted_setup`] (and every clone a
    /// crash-rebuild takes) point at one copy of each array. Without
    /// sharing the setup is `O(n² · phases)` host memory — gigabytes at
    /// `n = 256` — for bytes that are identical in every ring.
    vks: Vec<Vec<Arc<VerificationKeyArray>>>,
}

impl fmt::Debug for KeyRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeyRing")
            .field("id", &self.id)
            .field("n", &self.n)
            .field("epochs", &self.own_epochs.len())
            .field("max_phase", &self.max_phase())
            .finish()
    }
}

impl KeyRing {
    /// Assembles a keyring from the first epoch's material (distributed
    /// offline with the public keys, per the paper).
    ///
    /// The verification arrays come `Arc`-wrapped so the caller can hand
    /// the *same* allocations to every ring (see [`KeyRing::trusted_setup`]);
    /// wrap with `Arc::new` when material is not shared.
    ///
    /// # Errors
    ///
    /// Returns [`KeyRingError`] when the material is inconsistent.
    pub fn new(
        id: usize,
        own: KeyPairArray,
        all: Vec<Arc<VerificationKeyArray>>,
    ) -> Result<Self, KeyRingError> {
        let n = all.len();
        if own.verification_keys().process() != id {
            return Err(KeyRingError::NotOurKeys {
                ours: id,
                theirs: own.verification_keys().process(),
            });
        }
        for (index, vk) in all.iter().enumerate() {
            if vk.process() != index {
                return Err(KeyRingError::ProcessMismatch {
                    index,
                    embedded: vk.process(),
                });
            }
        }
        if n <= id {
            return Err(KeyRingError::WrongProcessCount {
                expected: id + 1,
                got: n,
            });
        }
        Ok(KeyRing {
            id,
            n,
            own_epochs: vec![own],
            vks: all.into_iter().map(|vk| vec![vk]).collect(),
        })
    }

    /// Trusted-setup ceremony for experiments and tests: generates one
    /// keyring per process, all covering phases `1..=num_phases`, derived
    /// from `seed`.
    ///
    /// All `n` rings share one `Arc` per verification array, so setup
    /// memory is `O(n · phases)` instead of the `O(n² · phases)` a
    /// per-ring copy would cost (~3.8 GB at `n = 256`, 600 phases).
    pub fn trusted_setup(n: usize, num_phases: usize, seed: u64) -> Vec<KeyRing> {
        let pairs: Vec<KeyPairArray> = (0..n)
            .map(|p| KeyPairArray::generate(p, num_phases, seed.wrapping_add(p as u64)))
            .collect();
        let all_vks: Vec<Arc<VerificationKeyArray>> = pairs
            .iter()
            .map(|kp| Arc::new(kp.verification_keys().clone()))
            .collect();
        pairs
            .into_iter()
            .enumerate()
            .map(|(id, own)| {
                KeyRing::new(id, own, all_vks.clone()).expect("setup material is consistent")
            })
            .collect()
    }

    /// This process's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Highest phase this process can sign for (its own epochs).
    pub fn max_phase(&self) -> u32 {
        self.own_epochs
            .last()
            .map(|e| e.verification_keys().last_phase())
            .unwrap_or(0)
    }

    /// Signs `(phase, value)` with the covering epoch's one-time key.
    ///
    /// # Errors
    ///
    /// Propagates [`SignError`] when `phase` is beyond the distributed
    /// epochs (re-key required) or the value is illegal for the phase.
    pub fn sign(&self, phase: u32, value: Value) -> Result<OneTimeSignature, SignError> {
        for epoch in &self.own_epochs {
            let vk = epoch.verification_keys();
            if phase >= vk.first_phase() && phase <= vk.last_phase() {
                return epoch.sign(phase, value);
            }
        }
        Err(SignError::PhaseOutOfRange {
            phase,
            first: 1,
            last: self.max_phase(),
        })
    }

    /// Verifies that `signature` authenticates `envelope`'s
    /// `(phase, value)` as originating from `envelope.sender`.
    ///
    /// Hashes the signature exactly once, then scans the sender's
    /// epochs newest-first against the precomputed hash: live traffic
    /// is almost always signed under the sender's current (latest)
    /// epoch, so the common case short-circuits on the first probe.
    /// Each epoch covers a disjoint phase range, so scan order cannot
    /// change the outcome.
    pub fn verify(&self, envelope: &Envelope, signature: &OneTimeSignature) -> bool {
        self.verify_hashed(envelope, &turquois_crypto::sha256::sha256(&signature.0))
    }

    /// [`KeyRing::verify`] with `H(signature)` already computed — the
    /// entry point for lane-batched callers that hash a whole
    /// justification bundle through the multi-lane kernel first.
    pub fn verify_hashed(&self, envelope: &Envelope, sig_hash: &turquois_crypto::sha256::Digest) -> bool {
        let Some(epochs) = self.vks.get(envelope.sender) else {
            return false;
        };
        epochs
            .iter()
            .rev()
            .any(|vk| vk.verify_hashed(envelope.phase, envelope.value, sig_hash))
    }

    /// A monotone fingerprint of the installed verification-key
    /// material: the total number of installed epochs across all
    /// processes. Both [`KeyRing::begin_epoch`] and
    /// [`KeyRing::install_epoch`] strictly increase it, so a memo cache
    /// over [`KeyRing::verify`] outcomes is stale exactly when this
    /// stamp changed (installing keys can flip a previous `false` to
    /// `true`; nothing ever flips `true` to `false`).
    pub fn epoch_stamp(&self) -> u64 {
        self.vks.iter().map(|epochs| epochs.len() as u64).sum()
    }

    /// Prepares this process's next key-exchange epoch: generates keys
    /// for `num_phases` further phases and signs the verification array
    /// with the long-term `identity` key. Own keys are installed
    /// immediately; the returned bundle is for dissemination.
    ///
    /// # Errors
    ///
    /// Propagates [`hashsig::SignError`] when the identity key is
    /// exhausted.
    pub fn begin_epoch(
        &mut self,
        num_phases: usize,
        seed: u64,
        identity: &mut hashsig::Keypair,
    ) -> Result<SignedVerificationKeys, hashsig::SignError> {
        let first = self.max_phase() + 1;
        let pair = KeyPairArray::generate_epoch(self.id, first, num_phases, seed);
        let bundle = SignedVerificationKeys::sign(pair.verification_keys().clone(), identity)?;
        self.own_epochs.push(pair);
        self.vks[self.id].push(Arc::new(bundle.keys.clone()));
        Ok(bundle)
    }

    /// Installs another process's next-epoch bundle after verifying its
    /// signature against that process's long-term public key.
    ///
    /// # Errors
    ///
    /// Returns [`KeyRingError::BadBundleSignature`] on forgery,
    /// [`KeyRingError::EpochGap`] when the epoch is not contiguous with
    /// the previous one, and [`KeyRingError::ProcessMismatch`] for
    /// out-of-range owners.
    pub fn install_epoch(
        &mut self,
        bundle: &SignedVerificationKeys,
        owner_public: &hashsig::PublicKey,
    ) -> Result<(), KeyRingError> {
        let process = bundle.keys.process();
        if process >= self.n {
            return Err(KeyRingError::ProcessMismatch {
                index: process,
                embedded: process,
            });
        }
        if !bundle.verify(owner_public) {
            return Err(KeyRingError::BadBundleSignature { process });
        }
        let epochs = &mut self.vks[process];
        let expected_first = epochs
            .last()
            .map(|e| e.last_phase() + 1)
            .unwrap_or(1);
        if bundle.keys.first_phase() != expected_first {
            return Err(KeyRingError::EpochGap {
                expected_first,
                got_first: bundle.keys.first_phase(),
            });
        }
        epochs.push(Arc::new(bundle.keys.clone()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Status;

    fn env(sender: usize, phase: u32, value: Value) -> Envelope {
        Envelope {
            sender,
            phase,
            value,
            coin_flip: false,
            status: Status::Undecided,
        }
    }

    #[test]
    fn trusted_setup_cross_verifies() {
        let rings = KeyRing::trusted_setup(4, 9, 7);
        assert_eq!(rings.len(), 4);
        let sig = rings[2].sign(5, Value::One).expect("in range");
        for ring in &rings {
            assert!(ring.verify(&env(2, 5, Value::One), &sig));
            assert!(!ring.verify(&env(1, 5, Value::One), &sig));
            assert!(!ring.verify(&env(2, 5, Value::Zero), &sig));
            assert!(!ring.verify(&env(2, 4, Value::One), &sig));
        }
    }

    #[test]
    fn sign_beyond_epochs_errors() {
        let rings = KeyRing::trusted_setup(4, 6, 7);
        assert!(rings[0].sign(6, Value::Zero).is_ok());
        assert!(matches!(
            rings[0].sign(7, Value::Zero),
            Err(SignError::PhaseOutOfRange { phase: 7, .. })
        ));
    }

    #[test]
    fn epoch_extension_round_trip() {
        let mut rings = KeyRing::trusted_setup(2, 3, 1);
        let mut identity0 = hashsig::Keypair::generate(2, 100);
        // Process 0 prepares epoch 2 (phases 4..=6).
        let ring0 = &mut rings[0];
        let bundle = ring0
            .begin_epoch(3, 55, &mut identity0)
            .expect("identity has leaves");
        assert_eq!(ring0.max_phase(), 6);
        let sig = ring0.sign(5, Value::One).expect("epoch 2 covers 5");

        // Process 1 cannot verify yet…
        assert!(!rings[1].verify(&env(0, 5, Value::One), &sig));
        // …until it installs the bundle.
        rings[1]
            .install_epoch(&bundle, identity0.public_key())
            .expect("genuine bundle");
        assert!(rings[1].verify(&env(0, 5, Value::One), &sig));
    }

    #[test]
    fn install_epoch_rejects_forged_bundle() {
        let mut rings = KeyRing::trusted_setup(2, 3, 1);
        let mut evil_identity = hashsig::Keypair::generate(2, 666);
        let honest_identity = hashsig::Keypair::generate(2, 100);
        // Attacker signs a bundle for process 0 with its own key.
        let pair = KeyPairArray::generate_epoch(0, 4, 3, 99);
        let bundle =
            SignedVerificationKeys::sign(pair.verification_keys().clone(), &mut evil_identity)
                .expect("leaves available");
        assert!(matches!(
            rings[1].install_epoch(&bundle, honest_identity.public_key()),
            Err(KeyRingError::BadBundleSignature { process: 0 })
        ));
    }

    #[test]
    fn install_epoch_rejects_gaps() {
        let mut rings = KeyRing::trusted_setup(2, 3, 1);
        let mut identity = hashsig::Keypair::generate(2, 100);
        // Epoch starting at phase 7 when 4 is expected.
        let pair = KeyPairArray::generate_epoch(0, 7, 3, 99);
        let bundle =
            SignedVerificationKeys::sign(pair.verification_keys().clone(), &mut identity)
                .expect("leaves available");
        assert!(matches!(
            rings[1].install_epoch(&bundle, identity.public_key()),
            Err(KeyRingError::EpochGap {
                expected_first: 4,
                got_first: 7
            })
        ));
    }

    #[test]
    fn new_validates_material() {
        let rings = KeyRing::trusted_setup(3, 3, 1);
        let own = KeyPairArray::generate(1, 3, 2);
        // Claiming id 0 with process-1 keys fails.
        let vks: Vec<Arc<VerificationKeyArray>> = (0..3)
            .map(|p| Arc::clone(&rings[p].vks[p][0]))
            .collect();
        assert!(matches!(
            KeyRing::new(0, own, vks),
            Err(KeyRingError::NotOurKeys { ours: 0, theirs: 1 })
        ));
    }

    #[test]
    fn verify_unknown_sender_is_false() {
        let rings = KeyRing::trusted_setup(2, 3, 1);
        let sig = rings[0].sign(1, Value::One).expect("in range");
        let bogus = Envelope {
            sender: 9,
            phase: 1,
            value: Value::One,
            coin_flip: false,
            status: Status::Undecided,
        };
        assert!(!rings[1].verify(&bogus, &sig));
    }

    #[test]
    fn debug_smoke() {
        let rings = KeyRing::trusted_setup(2, 3, 1);
        assert!(format!("{:?}", rings[0]).contains("KeyRing"));
    }
}
