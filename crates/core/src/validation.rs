//! Semantic validation of messages (paper §6.2).
//!
//! Authenticity validation (§6.1, see [`crate::keyring`]) proves that
//! `(φ, v)` originated at the claimed sender; semantic validation proves
//! that the claim is *congruent with the execution* — that enough earlier
//! messages exist to justify the phase, the value, and the status. This
//! is what confines Byzantine lies: a compromised process may only send
//! states that some correct execution could have produced.
//!
//! Evidence is counted over an *authentic-evidence store* (every
//! correctly-signed message seen, including justification attachments)
//! plus the attachments of the message currently being validated
//! ([`EvidenceView`]). Thresholds are the paper's: `> (n+f)/2` (quorum)
//! and `> ((n+f)/2)/2` (half-quorum), in exact integer arithmetic. Every
//! threshold's minimum exceeds `f`, so evidence fabricated exclusively by
//! Byzantine processes can never satisfy a check — each satisfied check
//! names at least one correct process that genuinely sent the claimed
//! message.

use crate::config::Config;
use crate::message::{Envelope, Status};
use crate::store::MessageStore;
use std::collections::BTreeSet;
use std::fmt;
use turquois_crypto::otss::{bot_legal_at, OneTimeSignature, Value};

/// Why a message failed semantic validation.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum RejectReason {
    /// `⊥` appeared in a phase where it is not a legal proposal.
    BotIllegalHere,
    /// The coin-provenance flag was set outside a CONVERGE phase.
    CoinFlagOutsideConverge,
    /// No quorum of phase `φ − 1` messages justifies the phase.
    PhaseUnjustified,
    /// The proposal value lacks its required evidence.
    ValueUnjustified,
    /// `decided` claimed at phase ≤ 3 (impossible) or without a decide
    /// quorum.
    DecidedUnjustified,
    /// `undecided` claimed past phase 3 without divergence evidence.
    UndecidedUnjustified,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::BotIllegalHere => "⊥ illegal at this phase",
            RejectReason::CoinFlagOutsideConverge => "coin flag outside CONVERGE phase",
            RejectReason::PhaseUnjustified => "phase not justified by a quorum",
            RejectReason::ValueUnjustified => "value not justified",
            RejectReason::DecidedUnjustified => "decided status not justified",
            RejectReason::UndecidedUnjustified => "undecided status not justified",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RejectReason {}

/// Evidence = the persistent authentic store plus the attachments of the
/// message under validation, with senders deduplicated across both.
pub struct EvidenceView<'a> {
    store: &'a MessageStore,
    extra: &'a [(Envelope, OneTimeSignature)],
}

impl<'a> EvidenceView<'a> {
    /// Creates a view over `store` extended by `extra` attachments
    /// (already authenticity-checked by the caller).
    pub fn new(store: &'a MessageStore, extra: &'a [(Envelope, OneTimeSignature)]) -> Self {
        EvidenceView { store, extra }
    }

    /// Distinct senders with any message at `phase`.
    pub fn count_phase(&self, phase: u32) -> usize {
        let mut count = self.store.count_phase(phase);
        let mut seen = BTreeSet::new();
        for (env, _) in self.extra {
            if env.phase == phase
                && !self.store.has_sender(phase, env.sender)
                && seen.insert(env.sender)
            {
                count += 1;
            }
        }
        count
    }

    /// Distinct senders with a `(phase, value)` message.
    pub fn count_value(&self, phase: u32, value: Value) -> usize {
        let mut count = self.store.count_value(phase, value);
        let mut seen = BTreeSet::new();
        for (env, _) in self.extra {
            if env.phase == phase
                && env.value == value
                && !self.store.has_sender_value(phase, env.sender, value)
                && seen.insert(env.sender)
            {
                count += 1;
            }
        }
        count
    }

    /// DECIDE phases (`mod 3 = 0`) strictly below `limit` present in
    /// either evidence source, ascending.
    fn decide_phases_below(&self, limit: u32) -> Vec<u32> {
        let mut phases: BTreeSet<u32> = self.store.decide_phases().filter(|&p| p < limit).collect();
        for (env, _) in self.extra {
            if env.phase % 3 == 0 && env.phase < limit {
                phases.insert(env.phase);
            }
        }
        phases.into_iter().collect()
    }
}

/// Validates `env` semantically against the evidence.
///
/// # Errors
///
/// Returns the first [`RejectReason`] encountered, checking structure,
/// then phase, then value, then status — mirroring §6.2's independent
/// per-variable validation.
pub fn semantic_check(
    env: &Envelope,
    cfg: &Config,
    view: &EvidenceView<'_>,
) -> Result<(), RejectReason> {
    structure_ok(env)?;
    phase_ok(env, cfg, view)?;
    value_ok(env, cfg, view)?;
    status_ok(env, cfg, view)
}

fn structure_ok(env: &Envelope) -> Result<(), RejectReason> {
    if env.value == Value::Bot && !bot_legal_at(env.phase) {
        return Err(RejectReason::BotIllegalHere);
    }
    if env.coin_flip && env.phase % 3 != 1 {
        return Err(RejectReason::CoinFlagOutsideConverge);
    }
    Ok(())
}

fn phase_ok(env: &Envelope, cfg: &Config, view: &EvidenceView<'_>) -> Result<(), RejectReason> {
    // "The phase value φ requires more than (n+f)/2 messages of the form
    // ⟨*, φ−1, *, *⟩."
    if env.phase == 1 || cfg.exceeds_quorum(view.count_phase(env.phase - 1)) {
        Ok(())
    } else {
        Err(RejectReason::PhaseUnjustified)
    }
}

fn value_ok(env: &Envelope, cfg: &Config, view: &EvidenceView<'_>) -> Result<(), RejectReason> {
    // "Messages with phase value φ = 1 are the only that do not require
    // validation."
    if env.phase == 1 {
        return Ok(());
    }
    let ok = match env.phase % 3 {
        // LOCK: v justified by more than half a quorum at φ−1.
        2 => cfg.exceeds_half_quorum(view.count_value(env.phase - 1, env.value)),
        // DECIDE: a binary v needs a quorum at φ−1; ⊥ needs half-quorums
        // of both binary values at φ−2.
        0 => match env.value {
            Value::Bot => {
                cfg.exceeds_half_quorum(view.count_value(env.phase - 2, Value::Zero))
                    && cfg.exceeds_half_quorum(view.count_value(env.phase - 2, Value::One))
            }
            v => cfg.exceeds_quorum(view.count_value(env.phase - 1, v)),
        },
        // CONVERGE (φ > 1): deterministic values need a quorum carrying v
        // at φ−2; coin values need a quorum of ⊥ at φ−1.
        _ => {
            if env.coin_flip {
                cfg.exceeds_quorum(view.count_value(env.phase - 1, Value::Bot))
            } else {
                cfg.exceeds_quorum(view.count_value(env.phase - 2, env.value))
            }
        }
    };
    if ok {
        Ok(())
    } else {
        Err(RejectReason::ValueUnjustified)
    }
}

fn status_ok(env: &Envelope, cfg: &Config, view: &EvidenceView<'_>) -> Result<(), RejectReason> {
    match env.status {
        Status::Decided => {
            // "Any message with phase φ ≤ 3 must necessarily carry value
            // undecided because no process can decide prior to phase 3."
            if env.phase <= 3 {
                return Err(RejectReason::DecidedUnjustified);
            }
            let Some(_) = env.value.as_bit() else {
                return Err(RejectReason::DecidedUnjustified);
            };
            // "status = decided (and value v) requires more than (n+f)/2
            // messages of the form ⟨*, φ, v, *⟩ where φ mod 3 = 0."
            let justified = view
                .decide_phases_below(env.phase)
                .into_iter()
                .any(|psi| cfg.exceeds_quorum(view.count_value(psi, env.value)));
            if justified {
                Ok(())
            } else {
                Err(RejectReason::DecidedUnjustified)
            }
        }
        // `undecided` is always accepted. The paper (§6.2) asks for
        // half-quorums of both values at the latest LOCK phase, but read
        // literally that rejects legitimate messages in benign
        // histories: e.g. when proposals diverge, re-unify at a coin
        // round, and a process then stands at a DECIDE+1 phase still
        // undecided — no divergence evidence exists at the latest LOCK,
        // yet the state is honest, and rejecting it deadlocks the round.
        // The rule's purpose — neutralizing the status-replay attack of
        // §6.1 — is entirely about forged `decided` claims, which the
        // strict branch above still blocks. Downgrading a replayed
        // message's status to `undecided` is harmless: an adopter merely
        // keeps executing and decides through the normal path. See
        // DESIGN.md §5.
        Status::Undecided => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turquois_crypto::sha256::DIGEST_LEN;

    fn cfg() -> Config {
        // n=4, f=1: quorum ≥ 3, half-quorum ≥ 2.
        Config::new(4, 1, 3).expect("valid")
    }

    fn sig(b: u8) -> OneTimeSignature {
        OneTimeSignature([b; DIGEST_LEN])
    }

    fn env(sender: usize, phase: u32, value: Value) -> Envelope {
        Envelope {
            sender,
            phase,
            value,
            coin_flip: false,
            status: Status::Undecided,
        }
    }

    fn store_with(entries: &[(usize, u32, Value)]) -> MessageStore {
        let mut s = MessageStore::new(4);
        for &(sender, phase, value) in entries {
            s.insert(&env(sender, phase, value), sig(sender as u8));
        }
        s
    }

    fn check(e: &Envelope, s: &MessageStore) -> Result<(), RejectReason> {
        semantic_check(e, &cfg(), &EvidenceView::new(s, &[]))
    }

    #[test]
    fn phase_one_always_valid() {
        let s = MessageStore::new(4);
        assert_eq!(check(&env(0, 1, Value::Zero), &s), Ok(()));
        assert_eq!(check(&env(3, 1, Value::One), &s), Ok(()));
    }

    #[test]
    fn bot_rejected_outside_decide_phases() {
        let s = MessageStore::new(4);
        assert_eq!(
            check(&env(0, 1, Value::Bot), &s),
            Err(RejectReason::BotIllegalHere)
        );
        assert_eq!(
            check(&env(0, 2, Value::Bot), &s),
            Err(RejectReason::BotIllegalHere)
        );
    }

    #[test]
    fn coin_flag_rejected_outside_converge() {
        let s = MessageStore::new(4);
        let mut e = env(0, 2, Value::One);
        e.coin_flip = true;
        assert_eq!(check(&e, &s), Err(RejectReason::CoinFlagOutsideConverge));
    }

    #[test]
    fn phase_requires_previous_quorum() {
        // Phase 2 message with only 2 senders at phase 1: rejected.
        let s = store_with(&[(0, 1, Value::One), (1, 1, Value::One)]);
        assert_eq!(
            check(&env(0, 2, Value::One), &s),
            Err(RejectReason::PhaseUnjustified)
        );
        // With 3 senders it passes (value also justified: half-quorum of
        // 1s at phase 1 is 2 < 3 present).
        let s = store_with(&[(0, 1, Value::One), (1, 1, Value::One), (2, 1, Value::One)]);
        assert_eq!(check(&env(0, 2, Value::One), &s), Ok(()));
    }

    #[test]
    fn lock_value_needs_half_quorum() {
        // Quorum at phase 1 but only one sender proposed 0: a LOCK
        // message carrying 0 is a lie.
        let s = store_with(&[(0, 1, Value::Zero), (1, 1, Value::One), (2, 1, Value::One)]);
        assert_eq!(
            check(&env(3, 2, Value::Zero), &s),
            Err(RejectReason::ValueUnjustified)
        );
        assert_eq!(check(&env(3, 2, Value::One), &s), Ok(()));
    }

    #[test]
    fn decide_binary_value_needs_lock_quorum() {
        let mut entries = vec![];
        for sender in 0..4 {
            entries.push((sender, 1, Value::One));
        }
        // Only 2 senders locked One: quorum (3) not met for the value.
        entries.push((0, 2, Value::One));
        entries.push((1, 2, Value::One));
        entries.push((2, 2, Value::Zero));
        let s = store_with(&entries);
        assert_eq!(
            check(&env(0, 3, Value::One), &s),
            Err(RejectReason::ValueUnjustified)
        );
        // A third One-lock fixes it.
        let mut s = s;
        s.insert(&env(3, 2, Value::One), sig(3));
        assert_eq!(check(&env(0, 3, Value::One), &s), Ok(()));
    }

    #[test]
    fn decide_bot_needs_divergence_at_converge() {
        let mut entries = vec![];
        // Divergent phase 1: two 0s, two 1s.
        entries.push((0, 1, Value::Zero));
        entries.push((1, 1, Value::Zero));
        entries.push((2, 1, Value::One));
        entries.push((3, 1, Value::One));
        // Locks at phase 2 (any mix reaching quorum count).
        entries.push((0, 2, Value::Zero));
        entries.push((1, 2, Value::Zero));
        entries.push((2, 2, Value::One));
        let s = store_with(&entries);
        assert_eq!(check(&env(0, 3, Value::Bot), &s), Ok(()));

        // Unanimous phase 1: ⊥ at phase 3 is a lie.
        let s = store_with(&[
            (0, 1, Value::One),
            (1, 1, Value::One),
            (2, 1, Value::One),
            (3, 1, Value::One),
            (0, 2, Value::One),
            (1, 2, Value::One),
            (2, 2, Value::One),
        ]);
        assert_eq!(
            check(&env(0, 3, Value::Bot), &s),
            Err(RejectReason::ValueUnjustified)
        );
    }

    #[test]
    fn converge_deterministic_needs_lock_quorum_two_back() {
        // Uniform history: quorum locked One at 2, quorum of One at 3 —
        // so a phase-4 (CONVERGE) deterministic One from a *decided*
        // process validates, while a deterministic Zero is a lie.
        let s = store_with(&[
            (0, 2, Value::One),
            (1, 2, Value::One),
            (2, 2, Value::One),
            (0, 3, Value::One),
            (1, 3, Value::One),
            (2, 3, Value::One),
        ]);
        let mut e = env(3, 4, Value::One);
        e.status = Status::Decided; // undecided at 4 would itself be a lie here
        assert_eq!(check(&e, &s), Ok(()));
        let mut e0 = env(3, 4, Value::Zero);
        e0.status = Status::Decided;
        assert_eq!(check(&e0, &s), Err(RejectReason::ValueUnjustified));
    }

    #[test]
    fn converge_coin_value_needs_bot_quorum() {
        // Divergent history: split proposals, split locks, ⊥ quorum at
        // the DECIDE phase — the canonical coin round.
        let s = store_with(&[
            (0, 1, Value::Zero),
            (1, 1, Value::Zero),
            (2, 1, Value::One),
            (3, 1, Value::One),
            (0, 2, Value::Zero),
            (1, 2, Value::Zero),
            (2, 2, Value::One),
            (3, 2, Value::One),
            (0, 3, Value::Bot),
            (1, 3, Value::Bot),
            (2, 3, Value::Bot),
        ]);
        let mut e = env(3, 4, Value::Zero);
        e.coin_flip = true;
        assert_eq!(check(&e, &s), Ok(()));
        // Without the coin flag the same value needs a ⟨2, Zero⟩ quorum
        // (only 2 senders): rejected.
        let e_det = env(3, 4, Value::Zero);
        assert_eq!(check(&e_det, &s), Err(RejectReason::ValueUnjustified));
    }

    #[test]
    fn decided_rejected_at_or_below_phase_three() {
        let s = store_with(&[
            (0, 1, Value::One),
            (1, 1, Value::One),
            (2, 1, Value::One),
        ]);
        let mut e = env(0, 2, Value::One);
        e.status = Status::Decided;
        assert_eq!(check(&e, &s), Err(RejectReason::DecidedUnjustified));
    }

    #[test]
    fn decided_needs_decide_quorum() {
        // Full unanimous history through phase 3.
        let mut entries = vec![];
        for phase in 1..=3u32 {
            for sender in 0..4usize {
                entries.push((sender, phase, Value::One));
            }
        }
        let s = store_with(&entries);
        let mut e = env(0, 4, Value::One);
        e.status = Status::Decided;
        assert_eq!(check(&e, &s), Ok(()));

        // Claiming the decision was on Zero fails.
        let mut e0 = env(0, 4, Value::Zero);
        e0.status = Status::Decided;
        // (Value check fails first for Zero; force the point by checking
        // the status rule on a One-valued but zero-evidence store.)
        assert!(check(&e0, &s).is_err());

        // Without the phase-3 quorum the decided claim fails.
        let mut entries = vec![];
        for phase in 1..=2u32 {
            for sender in 0..4usize {
                entries.push((sender, phase, Value::One));
            }
        }
        entries.push((0, 3, Value::One));
        entries.push((1, 3, Value::One));
        let s2 = store_with(&entries);
        let mut e = env(0, 4, Value::One);
        e.status = Status::Decided;
        assert_eq!(check(&e, &s2), Err(RejectReason::PhaseUnjustified));
    }

    #[test]
    fn decided_with_bot_value_rejected() {
        // History where a ⊥ at phase 6 is value-justifiable (divergence
        // at the CONVERGE phase 4) — claiming `decided` with it must
        // still fail: decisions are always on binary values.
        let s = store_with(&[
            (0, 4, Value::Zero),
            (1, 4, Value::Zero),
            (2, 4, Value::One),
            (3, 4, Value::One),
            (0, 5, Value::Zero),
            (1, 5, Value::Zero),
            (2, 5, Value::One),
        ]);
        let mut e = env(0, 6, Value::Bot);
        e.status = Status::Decided;
        assert_eq!(check(&e, &s), Err(RejectReason::DecidedUnjustified));
    }

    #[test]
    fn undecided_accepted_even_past_three() {
        // `undecided` carries no forgeable advantage (see the module
        // docs); a phase-4 undecided message with justified phase and
        // value is accepted even in a unanimous history.
        let mut entries = vec![];
        for phase in 1..=3u32 {
            for sender in 0..4usize {
                entries.push((sender, phase, Value::One));
            }
        }
        let s = store_with(&entries);
        let e = env(0, 4, Value::One); // undecided by default
        assert_eq!(check(&e, &s), Ok(()));
    }

    #[test]
    fn evidence_view_merges_extras_with_dedupe() {
        let s = store_with(&[(0, 1, Value::One)]);
        let extras = vec![
            (env(0, 1, Value::One), sig(0)), // duplicate of stored
            (env(1, 1, Value::One), sig(1)),
            (env(1, 1, Value::One), sig(1)), // duplicate within extras
            (env(2, 1, Value::One), sig(2)),
        ];
        let view = EvidenceView::new(&s, &extras);
        assert_eq!(view.count_phase(1), 3);
        assert_eq!(view.count_value(1, Value::One), 3);
        assert_eq!(view.count_value(1, Value::Zero), 0);
    }

    #[test]
    fn attachments_enable_acceptance() {
        // Receiver has nothing; sender attaches the phase-1 quorum.
        let s = MessageStore::new(4);
        let extras = vec![
            (env(0, 1, Value::One), sig(0)),
            (env(1, 1, Value::One), sig(1)),
            (env(2, 1, Value::One), sig(2)),
        ];
        let view = EvidenceView::new(&s, &extras);
        assert_eq!(
            semantic_check(&env(0, 2, Value::One), &cfg(), &view),
            Ok(())
        );
    }

    #[test]
    fn byzantine_alone_cannot_justify() {
        // f = 1: a single Byzantine sender's fabricated evidence never
        // reaches any threshold.
        let s = MessageStore::new(4);
        let extras = vec![(env(3, 1, Value::Zero), sig(3))];
        let view = EvidenceView::new(&s, &extras);
        assert_eq!(
            semantic_check(&env(3, 2, Value::Zero), &cfg(), &view),
            Err(RejectReason::PhaseUnjustified)
        );
    }

    #[test]
    fn reject_reason_display() {
        assert!(!RejectReason::PhaseUnjustified.to_string().is_empty());
        assert!(!RejectReason::BotIllegalHere.to_string().is_empty());
    }
}
