//! The message set `V_i` and its evidence companion.
//!
//! Algorithm 1 accumulates *valid* arriving messages in a set `V_i` and
//! drives every state transition from counts over that set. Two details
//! matter for a faithful, Byzantine-safe implementation:
//!
//! * **Counting is per sender.** A Byzantine process holds one-time keys
//!   for every value, so it can *equivocate* — sign both `0` and `1` in
//!   the same phase. Counting raw messages would let `f` Byzantine
//!   processes weigh like `2f`; counting distinct senders per criterion
//!   keeps the quorum-intersection arguments intact (two `> (n+f)/2`
//!   sender-quorums intersect in more than `f` senders, hence in a
//!   correct process).
//! * **Sets, not multisets.** A correct process rebroadcasts the same
//!   state every clock tick; duplicates must not inflate counts.
//!
//! The same structure backs both stores kept by a process (see
//! `validation`): the semantically-validated `V_i` that drives
//! transitions, and the authentic-evidence store used by the §6.2
//! semantic checks and for building justifications.
//!
//! # Storage layout (DESIGN.md §10)
//!
//! Node ids are dense `0..n`, and a sender can contribute at most one
//! record per distinct `(value, coin, status)` combination — twelve in
//! total. Two interchangeable slot layouts exploit that:
//!
//! * **Legacy** — the original `Vec<Vec<Record>>` (one record list per
//!   sender). Selected with `TURQUOIS_LEGACY_STORE=1` (any non-empty
//!   value) or [`set_legacy_store`]; retained as the differential
//!   oracle, mirroring the queue-engine gate (DESIGN.md §9).
//! * **Compact** (default) — per sender a 12-bit presence mask (one bit
//!   per combination code), a packed `u64` of 4-bit codes in insertion
//!   order, and three arena indices (one per value) into a slot-local
//!   signature arena. 22 bytes per sender plus 32 per distinct
//!   `(sender, value)` signature, with no per-sender heap allocation —
//!   the difference between n=16 and n=256 staying resident.
//!
//! Both layouts answer every query identically — byte-for-byte on every
//! experiment — because all retrieval paths return the *first* record
//! matching their criterion in insertion order, and the signature for a
//! given `(sender, phase, value)` is fixed at the first insert of that
//! value (verified one-time signatures are unique per `(phase, value)`
//! by construction).

use crate::message::{Envelope, Status};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use turquois_crypto::otss::{OneTimeSignature, Value};

/// Environment variable selecting the legacy `Vec<Vec<Record>>` layout.
///
/// Set to any non-empty value to bypass the compact bitset/arena slots.
/// Results must be byte-identical either way; the variable exists as a
/// differential guard and an escape hatch, mirroring
/// `TURQUOIS_LEGACY_QUEUE`.
pub const LEGACY_STORE_ENV: &str = "TURQUOIS_LEGACY_STORE";

static LEGACY_STORE: AtomicBool = AtomicBool::new(false);
static LEGACY_STORE_INIT: Once = Once::new();

/// Returns whether new stores use the legacy per-sender `Vec` layout.
///
/// The first call reads [`LEGACY_STORE_ENV`]; later calls reuse the
/// cached value unless [`set_legacy_store`] overrides it.
pub fn legacy_store_enabled() -> bool {
    LEGACY_STORE_INIT.call_once(|| {
        if std::env::var_os(LEGACY_STORE_ENV).is_some_and(|v| !v.is_empty()) {
            LEGACY_STORE.store(true, Ordering::Relaxed);
        }
    });
    LEGACY_STORE.load(Ordering::Relaxed)
}

/// Programmatically selects the store layout for stores built
/// afterwards, overriding the environment (used by differential tests
/// to run both layouts in one process).
pub fn set_legacy_store(enabled: bool) {
    // Make sure the env lookup never races in after us and clobbers
    // the explicit choice.
    LEGACY_STORE_INIT.call_once(|| {});
    LEGACY_STORE.store(enabled, Ordering::Relaxed);
}

/// One stored record: the distinct content a sender put in a phase.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Record {
    /// The proposal value.
    pub value: Value,
    /// Coin-provenance flag.
    pub coin_flip: bool,
    /// Decision status.
    pub status: Status,
    /// The one-time signature authenticating `(phase, value)`.
    pub signature: OneTimeSignature,
}

impl Record {
    /// Reassembles the envelope for `sender` at `phase`.
    pub fn to_envelope(self, sender: usize, phase: u32) -> Envelope {
        Envelope {
            sender,
            phase,
            value: self.value,
            coin_flip: self.coin_flip,
            status: self.status,
        }
    }
}

/// Tally index for a [`Value`] (`Zero`, `One`, `Bot` in order).
#[inline]
fn value_idx(value: Value) -> usize {
    match value {
        Value::Zero => 0,
        Value::One => 1,
        Value::Bot => 2,
    }
}

const VALUES: [Value; 3] = [Value::Zero, Value::One, Value::Bot];

/// Encodes a record's observable content as a 4-bit combination code
/// `value_idx * 4 + coin * 2 + status` (twelve possible codes, 0..12).
#[inline]
fn combo_code(value: Value, coin_flip: bool, status: Status) -> u8 {
    (value_idx(value) as u8) * 4
        + (coin_flip as u8) * 2
        + (status == Status::Decided) as u8
}

/// Decodes a combination code back into a [`Record`], attaching the
/// signature recovered from the slot arena.
#[inline]
fn decode_code(code: u8, signature: OneTimeSignature) -> Record {
    Record {
        value: VALUES[(code >> 2) as usize],
        coin_flip: code & 0b10 != 0,
        status: if code & 1 != 0 {
            Status::Decided
        } else {
            Status::Undecided
        },
        signature,
    }
}

/// Presence-mask bits covering every code of `value`.
#[inline]
fn value_mask(value: Value) -> u16 {
    0b1111 << (4 * value_idx(value))
}

/// Arena-index sentinel: no signature stored for this `(sender, value)`.
const NO_SIG: u32 = u32::MAX;

#[derive(Clone, Debug)]
enum SlotRepr {
    /// `senders[s]` holds the distinct records sender `s` produced in
    /// this phase (bounded: ≤ 3 values × 2 coin flags × 2 statuses).
    Legacy(Vec<Vec<Record>>),
    /// Index-keyed bitset/arena layout (see the module docs).
    Compact {
        /// Per-sender presence bitmask, one bit per combination code.
        masks: Vec<u16>,
        /// Per-sender packed 4-bit codes in insertion order; record
        /// count is `masks[s].count_ones()` (≤ 12 records → 48 bits).
        order: Vec<u64>,
        /// Per-sender, per-value arena index of the signature recorded
        /// at the first insert of that value ([`NO_SIG`] when absent).
        sig_idx: Vec<[u32; 3]>,
        /// Slot-local signature arena, one entry per distinct
        /// `(sender, value)` pair.
        sigs: Vec<OneTimeSignature>,
    },
}

/// Iterates a sender's records in insertion order, layout-agnostically.
enum RecordsIter<'a> {
    Legacy(std::slice::Iter<'a, Record>),
    Compact {
        order: u64,
        left: u32,
        sig_idx: &'a [u32; 3],
        sigs: &'a [OneTimeSignature],
    },
}

impl Iterator for RecordsIter<'_> {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        match self {
            RecordsIter::Legacy(it) => it.next().copied(),
            RecordsIter::Compact {
                order,
                left,
                sig_idx,
                sigs,
            } => {
                if *left == 0 {
                    return None;
                }
                let code = (*order & 0xF) as u8;
                *order >>= 4;
                *left -= 1;
                let sig = sigs[sig_idx[(code >> 2) as usize] as usize];
                Some(decode_code(code, sig))
            }
        }
    }
}

#[derive(Clone, Debug)]
struct PhaseSlot {
    repr: SlotRepr,
    /// Distinct senders with ≥ 1 record in this phase, maintained on
    /// insert so quorum checks are O(1) instead of rescanning.
    phase_senders: usize,
    /// Distinct senders per value (indexed by [`value_idx`]); an
    /// equivocator contributes once per value it signed, never twice to
    /// the same value.
    value_senders: [usize; 3],
    /// Distinct `(sender, value)` pairs stored — the slot's signature
    /// population, maintained for O(1) footprint estimates.
    sig_slots: usize,
}

impl PhaseSlot {
    fn new(n: usize, legacy: bool) -> Self {
        let repr = if legacy {
            SlotRepr::Legacy(vec![Vec::new(); n])
        } else {
            SlotRepr::Compact {
                masks: vec![0; n],
                order: vec![0; n],
                sig_idx: vec![[NO_SIG; 3]; n],
                sigs: Vec::new(),
            }
        };
        PhaseSlot {
            repr,
            phase_senders: 0,
            value_senders: [0; 3],
            sig_slots: 0,
        }
    }

    /// Inserts a record for `sender`; returns `true` if it was new (not
    /// an exact duplicate of a stored record), updating all tallies.
    fn insert(&mut self, sender: usize, record: Record) -> bool {
        match &mut self.repr {
            SlotRepr::Legacy(senders) => {
                let records = &mut senders[sender];
                // Duplicate = same observable content. (Signatures for
                // the same (phase, value) are identical by construction.)
                if records.iter().any(|r| {
                    r.value == record.value
                        && r.coin_flip == record.coin_flip
                        && r.status == record.status
                }) {
                    return false;
                }
                // Update the incremental tallies before the push: the
                // record lists are tiny (≤ 12 entries), so these
                // membership probes are cheap, and they only run on
                // genuinely new records.
                if records.is_empty() {
                    self.phase_senders += 1;
                }
                if !records.iter().any(|r| r.value == record.value) {
                    self.value_senders[value_idx(record.value)] += 1;
                    self.sig_slots += 1;
                }
                records.push(record);
                true
            }
            SlotRepr::Compact {
                masks,
                order,
                sig_idx,
                sigs,
            } => {
                let code = combo_code(record.value, record.coin_flip, record.status);
                let bit = 1u16 << code;
                if masks[sender] & bit != 0 {
                    return false;
                }
                if masks[sender] == 0 {
                    self.phase_senders += 1;
                }
                let vi = value_idx(record.value);
                if masks[sender] & value_mask(record.value) == 0 {
                    self.value_senders[vi] += 1;
                    self.sig_slots += 1;
                    sig_idx[sender][vi] = sigs.len() as u32;
                    sigs.push(record.signature);
                }
                let pos = masks[sender].count_ones();
                order[sender] |= u64::from(code) << (4 * pos);
                masks[sender] |= bit;
                true
            }
        }
    }

    /// The records sender `s` produced, in insertion order.
    fn records(&self, sender: usize) -> RecordsIter<'_> {
        match &self.repr {
            SlotRepr::Legacy(senders) => RecordsIter::Legacy(senders[sender].iter()),
            SlotRepr::Compact {
                masks,
                order,
                sig_idx,
                sigs,
            } => RecordsIter::Compact {
                order: order[sender],
                left: masks[sender].count_ones(),
                sig_idx: &sig_idx[sender],
                sigs,
            },
        }
    }

    /// Whether `sender` has any record in this phase. O(1).
    fn sender_present(&self, sender: usize) -> bool {
        match &self.repr {
            SlotRepr::Legacy(senders) => !senders[sender].is_empty(),
            SlotRepr::Compact { masks, .. } => masks[sender] != 0,
        }
    }

    /// Whether `sender` has a record with `value`. O(1) in the compact
    /// layout (a mask probe), a ≤ 12-entry scan in the legacy one.
    fn sender_has_value(&self, sender: usize, value: Value) -> bool {
        match &self.repr {
            SlotRepr::Legacy(senders) => senders[sender].iter().any(|r| r.value == value),
            SlotRepr::Compact { masks, .. } => masks[sender] & value_mask(value) != 0,
        }
    }

    /// Total records stored in this slot.
    fn record_count(&self) -> usize {
        match &self.repr {
            SlotRepr::Legacy(senders) => senders.iter().map(Vec::len).sum(),
            SlotRepr::Compact { masks, .. } => {
                masks.iter().map(|m| m.count_ones() as usize).sum()
            }
        }
    }

    /// Number of senders the slot was sized for.
    fn n(&self) -> usize {
        match &self.repr {
            SlotRepr::Legacy(senders) => senders.len(),
            SlotRepr::Compact { masks, .. } => masks.len(),
        }
    }

    /// The retired scan the incremental `phase_senders` replaced; kept
    /// as the `debug_assert!` oracle (and exercised by the proptest).
    /// Layout-agnostic: reconstructs records through [`PhaseSlot::records`].
    fn scan_phase_senders(&self) -> usize {
        (0..self.n())
            .filter(|&s| self.records(s).next().is_some())
            .count()
    }

    /// The retired scan the incremental `value_senders` replaced.
    fn scan_value_senders(&self, value: Value) -> usize {
        (0..self.n())
            .filter(|&s| self.records(s).any(|r| r.value == value))
            .count()
    }
}

/// A phase-indexed, sender-deduplicated message set.
#[derive(Clone, Debug)]
pub struct MessageStore {
    n: usize,
    legacy: bool,
    phases: BTreeMap<u32, PhaseSlot>,
    /// Live distinct `(sender, value)` pairs across all retained
    /// phases, maintained on insert and prune for O(1)
    /// [`MessageStore::approx_bytes`].
    sig_slots: usize,
}

impl MessageStore {
    /// Creates an empty store for `n` processes, with the slot layout
    /// selected by [`legacy_store_enabled`].
    pub fn new(n: usize) -> Self {
        MessageStore::with_legacy(n, legacy_store_enabled())
    }

    /// Creates an empty store with an explicit layout choice (used by
    /// differential tests to exercise both layouts in one process).
    pub fn with_legacy(n: usize, legacy: bool) -> Self {
        MessageStore {
            n,
            legacy,
            phases: BTreeMap::new(),
            sig_slots: 0,
        }
    }

    /// Inserts a message. Returns `true` if it was new (not an exact
    /// duplicate of a stored record).
    ///
    /// # Panics
    ///
    /// Panics if `envelope.sender >= n` (the wire decoder enforces this
    /// upstream).
    pub fn insert(&mut self, envelope: &Envelope, signature: OneTimeSignature) -> bool {
        assert!(envelope.sender < self.n, "sender out of range");
        let legacy = self.legacy;
        let n = self.n;
        let slot = self
            .phases
            .entry(envelope.phase)
            .or_insert_with(|| PhaseSlot::new(n, legacy));
        let before = slot.sig_slots;
        let fresh = slot.insert(
            envelope.sender,
            Record {
                value: envelope.value,
                coin_flip: envelope.coin_flip,
                status: envelope.status,
                signature,
            },
        );
        self.sig_slots += slot.sig_slots - before;
        fresh
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distinct senders with at least one message at `phase`. O(1):
    /// answered from the incremental tally maintained by
    /// [`MessageStore::insert`].
    pub fn count_phase(&self, phase: u32) -> usize {
        self.phases
            .get(&phase)
            .map(|s| {
                debug_assert_eq!(s.phase_senders, s.scan_phase_senders());
                s.phase_senders
            })
            .unwrap_or(0)
    }

    /// Distinct senders with at least one message `(phase, value)`.
    /// O(1), from the same incremental tallies.
    pub fn count_value(&self, phase: u32, value: Value) -> usize {
        self.phases
            .get(&phase)
            .map(|s| {
                debug_assert_eq!(s.value_senders[value_idx(value)], s.scan_value_senders(value));
                s.value_senders[value_idx(value)]
            })
            .unwrap_or(0)
    }

    /// Whether `sender` has any message at `phase`.
    pub fn has_sender(&self, phase: u32, sender: usize) -> bool {
        self.phases
            .get(&phase)
            .is_some_and(|s| s.sender_present(sender))
    }

    /// Whether `sender` sent `(phase, value)`.
    pub fn has_sender_value(&self, phase: u32, sender: usize, value: Value) -> bool {
        self.phases
            .get(&phase)
            .is_some_and(|s| s.sender_has_value(sender, value))
    }

    /// The best catch-up candidate: a record with phase strictly above
    /// `above`, from the **highest** such phase (lowest sender, first
    /// record as deterministic tie-breaks). Returns
    /// `(phase, sender, record)`.
    pub fn best_catch_up(&self, above: u32) -> Option<(u32, usize, Record)> {
        let (&phase, slot) = self.phases.range(above + 1..).next_back()?;
        for sender in 0..slot.n() {
            if let Some(rec) = slot.records(sender).next() {
                return Some((phase, sender, rec));
            }
        }
        None
    }

    /// The value in `{0, 1}` held by the most distinct senders at
    /// `phase`; ties break to `One`. Returns `Zero` when the phase is
    /// empty (callers only invoke this after a quorum check).
    pub fn majority_value(&self, phase: u32) -> Value {
        let zeros = self.count_value(phase, Value::Zero);
        let ones = self.count_value(phase, Value::One);
        if zeros > ones {
            Value::Zero
        } else {
            Value::One
        }
    }

    /// The binary value present at `phase` with the most senders, if any
    /// sender sent a binary value at all (Algorithm 1, line 32).
    pub fn any_binary_value(&self, phase: u32) -> Option<Value> {
        let zeros = self.count_value(phase, Value::Zero);
        let ones = self.count_value(phase, Value::One);
        if zeros == 0 && ones == 0 {
            None
        } else if zeros > ones {
            Some(Value::Zero)
        } else {
            Some(Value::One)
        }
    }

    /// Collects up to `limit` messages at `phase` (one per sender,
    /// ascending sender order), optionally restricted to `value`. Used to
    /// build justification bundles.
    pub fn collect(
        &self,
        phase: u32,
        value: Option<Value>,
        limit: usize,
    ) -> Vec<(Envelope, OneTimeSignature)> {
        let mut out = Vec::new();
        let Some(slot) = self.phases.get(&phase) else {
            return out;
        };
        for sender in 0..slot.n() {
            if out.len() >= limit {
                break;
            }
            let rec = match value {
                Some(v) => slot.records(sender).find(|r| r.value == v),
                None => slot.records(sender).next(),
            };
            if let Some(rec) = rec {
                out.push((rec.to_envelope(sender, phase), rec.signature));
            }
        }
        out
    }

    /// Iterates over the DECIDE phases (`φ mod 3 = 0`) currently stored,
    /// ascending.
    pub fn decide_phases(&self) -> impl Iterator<Item = u32> + '_ {
        self.phases.keys().copied().filter(|p| p % 3 == 0)
    }

    /// The greatest LOCK phase (`φ mod 3 = 2`) strictly below `phase`
    /// (independent of store contents).
    pub fn lock_phase_below(phase: u32) -> Option<u32> {
        // Phases: 1=CONVERGE, 2=LOCK, 3=DECIDE, 4=CONVERGE, …
        (1..phase).rev().find(|p| p % 3 == 2)
    }

    /// Drops all phases strictly below `min_phase` (garbage collection).
    pub fn prune_below(&mut self, min_phase: u32) {
        let live = self.phases.split_off(&min_phase);
        let dead = std::mem::replace(&mut self.phases, live);
        for slot in dead.values() {
            self.sig_slots -= slot.sig_slots;
        }
    }

    /// Lowest phase retained, if non-empty.
    pub fn min_phase(&self) -> Option<u32> {
        self.phases.keys().next().copied()
    }

    /// Total stored records (for tests and memory diagnostics).
    pub fn record_count(&self) -> usize {
        self.phases.values().map(PhaseSlot::record_count).sum()
    }

    /// Deterministic O(1) estimate of the store's resident footprint in
    /// bytes, independent of the slot layout (so stall reports stay
    /// byte-identical under `TURQUOIS_LEGACY_STORE=1`): each retained
    /// phase charges the compact layout's fixed 22 bytes per sender plus
    /// 64 bytes of slot/map overhead, and every distinct
    /// `(sender, value)` pair charges a 32-byte signature. A function of
    /// logical content only — never of `Vec` capacities or allocator
    /// behaviour — so it is reproducible across runs and platforms.
    pub fn approx_bytes(&self) -> usize {
        self.phases.len() * (22 * self.n + 64) + 32 * self.sig_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turquois_crypto::sha256::DIGEST_LEN;

    fn sig(b: u8) -> OneTimeSignature {
        OneTimeSignature([b; DIGEST_LEN])
    }

    fn env(sender: usize, phase: u32, value: Value) -> Envelope {
        Envelope {
            sender,
            phase,
            value,
            coin_flip: false,
            status: Status::Undecided,
        }
    }

    #[test]
    fn duplicates_do_not_inflate_counts() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(4, legacy);
            assert!(s.insert(&env(0, 1, Value::One), sig(1)));
            assert!(!s.insert(&env(0, 1, Value::One), sig(1)));
            assert_eq!(s.count_phase(1), 1);
            assert_eq!(s.count_value(1, Value::One), 1);
            assert_eq!(s.record_count(), 1);
        }
    }

    #[test]
    fn equivocation_counts_once_per_value_once_per_phase() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(4, legacy);
            assert!(s.insert(&env(2, 1, Value::Zero), sig(1)));
            assert!(s.insert(&env(2, 1, Value::One), sig(2)));
            // Phase count: the sender is present once.
            assert_eq!(s.count_phase(1), 1);
            // Value counts: present for each value it signed.
            assert_eq!(s.count_value(1, Value::Zero), 1);
            assert_eq!(s.count_value(1, Value::One), 1);
        }
    }

    #[test]
    fn counts_across_senders() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(5, legacy);
            for sender in 0..4 {
                s.insert(&env(sender, 2, Value::One), sig(sender as u8));
            }
            s.insert(&env(4, 2, Value::Zero), sig(9));
            assert_eq!(s.count_phase(2), 5);
            assert_eq!(s.count_value(2, Value::One), 4);
            assert_eq!(s.count_value(2, Value::Zero), 1);
            assert_eq!(s.count_phase(3), 0);
        }
    }

    #[test]
    fn best_catch_up_prefers_highest_phase() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(4, legacy);
            s.insert(&env(1, 3, Value::One), sig(1));
            s.insert(&env(2, 7, Value::Zero), sig(2));
            s.insert(&env(3, 5, Value::One), sig(3));
            let (phase, sender, rec) = s.best_catch_up(1).expect("candidates exist");
            assert_eq!((phase, sender), (7, 2));
            assert_eq!(rec.value, Value::Zero);
            assert!(s.best_catch_up(7).is_none());
            let (phase, _, _) = s.best_catch_up(5).expect("phase 7 qualifies");
            assert_eq!(phase, 7);
        }
    }

    #[test]
    fn majority_and_tiebreak() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(5, legacy);
            s.insert(&env(0, 1, Value::Zero), sig(0));
            s.insert(&env(1, 1, Value::Zero), sig(1));
            s.insert(&env(2, 1, Value::One), sig(2));
            assert_eq!(s.majority_value(1), Value::Zero);
            s.insert(&env(3, 1, Value::One), sig(3));
            // Tie 2–2 breaks to One.
            assert_eq!(s.majority_value(1), Value::One);
            assert_eq!(s.any_binary_value(1), Some(Value::One));
            assert_eq!(s.any_binary_value(9), None);
        }
    }

    #[test]
    fn any_binary_value_ignores_bot() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(4, legacy);
            s.insert(&env(0, 3, Value::Bot), sig(0));
            assert_eq!(s.any_binary_value(3), None);
            s.insert(&env(1, 3, Value::Zero), sig(1));
            assert_eq!(s.any_binary_value(3), Some(Value::Zero));
        }
    }

    #[test]
    fn collect_one_per_sender_with_filter() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(4, legacy);
            s.insert(&env(0, 2, Value::One), sig(0));
            s.insert(&env(1, 2, Value::Zero), sig(1));
            s.insert(&env(1, 2, Value::One), sig(2)); // equivocator
            s.insert(&env(3, 2, Value::One), sig(3));
            let ones = s.collect(2, Some(Value::One), 10);
            assert_eq!(ones.len(), 3);
            assert!(ones.iter().all(|(e, _)| e.value == Value::One));
            let capped = s.collect(2, None, 2);
            assert_eq!(capped.len(), 2);
            assert!(s.collect(5, None, 10).is_empty());
        }
    }

    #[test]
    fn prune_below_drops_old_phases() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(3, legacy);
            for phase in 1..=10 {
                s.insert(&env(0, phase, Value::One), sig(phase as u8));
            }
            s.prune_below(7);
            assert_eq!(s.min_phase(), Some(7));
            assert_eq!(s.count_phase(6), 0);
            assert_eq!(s.count_phase(7), 1);
            assert_eq!(s.record_count(), 4);
        }
    }

    #[test]
    fn lock_phase_below_formula() {
        assert_eq!(MessageStore::lock_phase_below(4), Some(2));
        assert_eq!(MessageStore::lock_phase_below(6), Some(5));
        assert_eq!(MessageStore::lock_phase_below(7), Some(5));
        assert_eq!(MessageStore::lock_phase_below(8), Some(5));
        assert_eq!(MessageStore::lock_phase_below(9), Some(8));
        assert_eq!(MessageStore::lock_phase_below(2), None);
        assert_eq!(MessageStore::lock_phase_below(1), None);
    }

    #[test]
    fn decide_phases_iterates_stored_mod3_zero() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(2, legacy);
            for phase in [1u32, 3, 4, 6, 8, 9] {
                if phase % 3 == 0 {
                    s.insert(&env(0, phase, Value::Bot), sig(0));
                } else {
                    s.insert(&env(0, phase, Value::One), sig(0));
                }
            }
            let decides: Vec<u32> = s.decide_phases().collect();
            assert_eq!(decides, vec![3, 6, 9]);
        }
    }

    #[test]
    fn has_sender_queries() {
        for legacy in [false, true] {
            let mut s = MessageStore::with_legacy(3, legacy);
            s.insert(&env(1, 4, Value::Zero), sig(0));
            assert!(s.has_sender(4, 1));
            assert!(!s.has_sender(4, 0));
            assert!(s.has_sender_value(4, 1, Value::Zero));
            assert!(!s.has_sender_value(4, 1, Value::One));
        }
    }

    #[test]
    #[should_panic(expected = "sender out of range")]
    fn insert_rejects_out_of_range_sender() {
        let mut s = MessageStore::new(2);
        s.insert(&env(5, 1, Value::One), sig(0));
    }

    #[test]
    fn env_toggle_round_trips() {
        // Touch the cached switch; leave it in the default state.
        let initial = legacy_store_enabled();
        set_legacy_store(true);
        assert!(MessageStore::new(1).legacy);
        set_legacy_store(false);
        assert!(!MessageStore::new(1).legacy);
        set_legacy_store(initial);
    }

    #[test]
    fn combo_codes_round_trip() {
        for value in VALUES {
            for coin_flip in [false, true] {
                for status in [Status::Undecided, Status::Decided] {
                    let code = combo_code(value, coin_flip, status);
                    assert!(code < 12);
                    let rec = decode_code(code, sig(code));
                    assert_eq!(rec.value, value);
                    assert_eq!(rec.coin_flip, coin_flip);
                    assert_eq!(rec.status, status);
                }
            }
        }
    }

    #[test]
    fn approx_bytes_is_layout_independent_and_content_driven() {
        let mut compact = MessageStore::with_legacy(4, false);
        let mut legacy = MessageStore::with_legacy(4, true);
        assert_eq!(compact.approx_bytes(), 0);
        for s in [&mut compact, &mut legacy] {
            s.insert(&env(0, 1, Value::One), sig(1));
            s.insert(&env(0, 1, Value::Zero), sig(2));
            // Same (sender, value), different status: no new signature.
            let mut e = env(0, 1, Value::One);
            e.status = Status::Decided;
            s.insert(&e, sig(1));
            s.insert(&env(2, 4, Value::Bot), sig(3));
        }
        assert_eq!(compact.approx_bytes(), legacy.approx_bytes());
        // 2 phases × (22·4 + 64) + 3 signatures × 32.
        assert_eq!(compact.approx_bytes(), 2 * (22 * 4 + 64) + 3 * 32);
        compact.prune_below(2);
        legacy.prune_below(2);
        assert_eq!(compact.approx_bytes(), legacy.approx_bytes());
        assert_eq!(compact.approx_bytes(), (22 * 4 + 64) + 32);
    }

    /// Applies the same op stream to both layouts and checks every
    /// observable query answers identically (the in-process differential
    /// companion to the subprocess byte-identity test in the harness).
    fn ops_agree_across_layouts(ops: &[(usize, u32, u8, bool, u8, u8)]) {
        let mut compact = MessageStore::with_legacy(4, false);
        let mut legacy = MessageStore::with_legacy(4, true);
        for &(sender, phase, v, coin, st, prune) in ops {
            if prune == 0 {
                compact.prune_below(phase);
                legacy.prune_below(phase);
            } else {
                let value = [Value::Zero, Value::One, Value::Bot][v as usize];
                let status = if st == 0 { Status::Undecided } else { Status::Decided };
                let e = Envelope { sender, phase, value, coin_flip: coin, status };
                assert_eq!(compact.insert(&e, sig(v)), legacy.insert(&e, sig(v)));
            }
            assert_eq!(compact.min_phase(), legacy.min_phase());
            assert_eq!(compact.record_count(), legacy.record_count());
            assert_eq!(compact.approx_bytes(), legacy.approx_bytes());
            for phase in 0..9u32 {
                assert_eq!(compact.count_phase(phase), legacy.count_phase(phase));
                assert_eq!(compact.majority_value(phase), legacy.majority_value(phase));
                assert_eq!(compact.any_binary_value(phase), legacy.any_binary_value(phase));
                assert_eq!(compact.best_catch_up(phase), legacy.best_catch_up(phase));
                for value in VALUES {
                    assert_eq!(
                        compact.count_value(phase, value),
                        legacy.count_value(phase, value)
                    );
                    for sender in 0..4 {
                        assert_eq!(
                            compact.has_sender_value(phase, sender, value),
                            legacy.has_sender_value(phase, sender, value)
                        );
                    }
                    for limit in [1usize, 3, usize::MAX] {
                        assert_eq!(
                            compact.collect(phase, Some(value), limit),
                            legacy.collect(phase, Some(value), limit)
                        );
                    }
                }
                for sender in 0..4 {
                    assert_eq!(
                        compact.has_sender(phase, sender),
                        legacy.has_sender(phase, sender)
                    );
                }
                assert_eq!(
                    compact.collect(phase, None, usize::MAX),
                    legacy.collect(phase, None, usize::MAX)
                );
            }
        }
    }

    #[test]
    fn equivocator_with_mixed_flags_agrees_across_layouts() {
        // An adversary signing every combination for one value plus the
        // opposite value, interleaved with another sender and a prune.
        ops_agree_across_layouts(&[
            (2, 1, 1, false, 0, 1),
            (2, 1, 1, true, 0, 1),
            (2, 1, 1, false, 1, 1),
            (2, 1, 1, true, 1, 1),
            (2, 1, 0, false, 0, 1),
            (0, 1, 2, false, 0, 1),
            (2, 4, 1, false, 0, 1),
            (0, 2, 0, false, 0, 0), // prune_below(2)
            (1, 4, 0, true, 1, 1),
        ]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Incremental tallies vs. the retired scan oracle under
        /// arbitrary interleavings of inserts (including duplicates and
        /// equivocation — repeated (sender, phase) pairs with varying
        /// values/flags) and garbage collection (`prune_below`) — run
        /// against both slot layouts.
        #[test]
        fn incremental_tallies_match_scan_oracle(
            legacy in proptest::arbitrary::any::<bool>(),
            ops in proptest::collection::vec(
                // (sender, phase, value sel, coin, status sel, prune trigger)
                (0usize..4, 1u32..8, 0u8..3, proptest::arbitrary::any::<bool>(), 0u8..2, 0u8..16),
                1..60,
            ),
        ) {
            let mut s = MessageStore::with_legacy(4, legacy);
            for (sender, phase, v, coin, st, prune) in ops {
                if prune == 0 {
                    // GC: drop everything below this phase.
                    s.prune_below(phase);
                } else {
                    let value = [Value::Zero, Value::One, Value::Bot][v as usize];
                    let status = if st == 0 { Status::Undecided } else { Status::Decided };
                    let e = Envelope { sender, phase, value, coin_flip: coin, status };
                    s.insert(&e, sig(v));
                }
                // Check every live phase against the scan oracle (the
                // debug_assert inside count_* checks too, but this also
                // runs with debug assertions off).
                for (&phase, slot) in &s.phases {
                    proptest::prop_assert_eq!(s.count_phase(phase), slot.scan_phase_senders());
                    for value in [Value::Zero, Value::One, Value::Bot] {
                        proptest::prop_assert_eq!(
                            s.count_value(phase, value),
                            slot.scan_value_senders(value)
                        );
                    }
                }
            }
        }

        /// Compact vs. legacy layouts agree on every observable query
        /// under arbitrary insert/equivocate/duplicate/GC interleavings.
        #[test]
        fn layouts_agree_on_all_queries(
            ops in proptest::collection::vec(
                (0usize..4, 1u32..8, 0u8..3, proptest::arbitrary::any::<bool>(), 0u8..2, 0u8..16),
                1..60,
            ),
        ) {
            ops_agree_across_layouts(&ops);
        }
    }
}
