//! The message set `V_i` and its evidence companion.
//!
//! Algorithm 1 accumulates *valid* arriving messages in a set `V_i` and
//! drives every state transition from counts over that set. Two details
//! matter for a faithful, Byzantine-safe implementation:
//!
//! * **Counting is per sender.** A Byzantine process holds one-time keys
//!   for every value, so it can *equivocate* — sign both `0` and `1` in
//!   the same phase. Counting raw messages would let `f` Byzantine
//!   processes weigh like `2f`; counting distinct senders per criterion
//!   keeps the quorum-intersection arguments intact (two `> (n+f)/2`
//!   sender-quorums intersect in more than `f` senders, hence in a
//!   correct process).
//! * **Sets, not multisets.** A correct process rebroadcasts the same
//!   state every clock tick; duplicates must not inflate counts.
//!
//! The same structure backs both stores kept by a process (see
//! `validation`): the semantically-validated `V_i` that drives
//! transitions, and the authentic-evidence store used by the §6.2
//! semantic checks and for building justifications.

use crate::message::{Envelope, Status};
use std::collections::BTreeMap;
use turquois_crypto::otss::{OneTimeSignature, Value};

/// One stored record: the distinct content a sender put in a phase.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Record {
    /// The proposal value.
    pub value: Value,
    /// Coin-provenance flag.
    pub coin_flip: bool,
    /// Decision status.
    pub status: Status,
    /// The one-time signature authenticating `(phase, value)`.
    pub signature: OneTimeSignature,
}

impl Record {
    /// Reassembles the envelope for `sender` at `phase`.
    pub fn to_envelope(self, sender: usize, phase: u32) -> Envelope {
        Envelope {
            sender,
            phase,
            value: self.value,
            coin_flip: self.coin_flip,
            status: self.status,
        }
    }
}

/// Tally index for a [`Value`] (`Zero`, `One`, `Bot` in order).
#[inline]
fn value_idx(value: Value) -> usize {
    match value {
        Value::Zero => 0,
        Value::One => 1,
        Value::Bot => 2,
    }
}

#[derive(Clone, Debug, Default)]
struct PhaseSlot {
    /// `senders[s]` holds the distinct records sender `s` produced in
    /// this phase (bounded: ≤ 3 values × 2 coin flags × 2 statuses).
    senders: Vec<Vec<Record>>,
    /// Distinct senders with ≥ 1 record in this phase, maintained on
    /// insert so quorum checks are O(1) instead of rescanning `senders`.
    phase_senders: usize,
    /// Distinct senders per value (indexed by [`value_idx`]); an
    /// equivocator contributes once per value it signed, never twice to
    /// the same value.
    value_senders: [usize; 3],
}

impl PhaseSlot {
    fn new(n: usize) -> Self {
        PhaseSlot {
            senders: vec![Vec::new(); n],
            phase_senders: 0,
            value_senders: [0; 3],
        }
    }

    /// The retired scan the incremental `phase_senders` replaced; kept
    /// as the `debug_assert!` oracle (and exercised by the proptest).
    fn scan_phase_senders(&self) -> usize {
        self.senders.iter().filter(|r| !r.is_empty()).count()
    }

    /// The retired scan the incremental `value_senders` replaced.
    fn scan_value_senders(&self, value: Value) -> usize {
        self.senders
            .iter()
            .filter(|recs| recs.iter().any(|r| r.value == value))
            .count()
    }
}

/// A phase-indexed, sender-deduplicated message set.
#[derive(Clone, Debug)]
pub struct MessageStore {
    n: usize,
    phases: BTreeMap<u32, PhaseSlot>,
}

impl MessageStore {
    /// Creates an empty store for `n` processes.
    pub fn new(n: usize) -> Self {
        MessageStore {
            n,
            phases: BTreeMap::new(),
        }
    }

    /// Inserts a message. Returns `true` if it was new (not an exact
    /// duplicate of a stored record).
    ///
    /// # Panics
    ///
    /// Panics if `envelope.sender >= n` (the wire decoder enforces this
    /// upstream).
    pub fn insert(&mut self, envelope: &Envelope, signature: OneTimeSignature) -> bool {
        assert!(envelope.sender < self.n, "sender out of range");
        let slot = self
            .phases
            .entry(envelope.phase)
            .or_insert_with(|| PhaseSlot::new(self.n));
        let records = &mut slot.senders[envelope.sender];
        let record = Record {
            value: envelope.value,
            coin_flip: envelope.coin_flip,
            status: envelope.status,
            signature,
        };
        // Duplicate = same observable content. (Signatures for the same
        // (phase, value) are identical by construction.)
        if records
            .iter()
            .any(|r| r.value == record.value && r.coin_flip == record.coin_flip && r.status == record.status)
        {
            return false;
        }
        // Update the incremental tallies before the push: the record
        // lists are tiny (≤ 12 entries), so these membership probes are
        // cheap, and they only run on genuinely new records.
        if records.is_empty() {
            slot.phase_senders += 1;
        }
        if !records.iter().any(|r| r.value == record.value) {
            slot.value_senders[value_idx(record.value)] += 1;
        }
        records.push(record);
        true
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distinct senders with at least one message at `phase`. O(1):
    /// answered from the incremental tally maintained by
    /// [`MessageStore::insert`].
    pub fn count_phase(&self, phase: u32) -> usize {
        self.phases
            .get(&phase)
            .map(|s| {
                debug_assert_eq!(s.phase_senders, s.scan_phase_senders());
                s.phase_senders
            })
            .unwrap_or(0)
    }

    /// Distinct senders with at least one message `(phase, value)`.
    /// O(1), from the same incremental tallies.
    pub fn count_value(&self, phase: u32, value: Value) -> usize {
        self.phases
            .get(&phase)
            .map(|s| {
                debug_assert_eq!(s.value_senders[value_idx(value)], s.scan_value_senders(value));
                s.value_senders[value_idx(value)]
            })
            .unwrap_or(0)
    }

    /// Whether `sender` has any message at `phase`.
    pub fn has_sender(&self, phase: u32, sender: usize) -> bool {
        self.phases
            .get(&phase)
            .is_some_and(|s| !s.senders[sender].is_empty())
    }

    /// Whether `sender` sent `(phase, value)`.
    pub fn has_sender_value(&self, phase: u32, sender: usize, value: Value) -> bool {
        self.phases
            .get(&phase)
            .is_some_and(|s| s.senders[sender].iter().any(|r| r.value == value))
    }

    /// The best catch-up candidate: a record with phase strictly above
    /// `above`, from the **highest** such phase (lowest sender, first
    /// record as deterministic tie-breaks). Returns
    /// `(phase, sender, record)`.
    pub fn best_catch_up(&self, above: u32) -> Option<(u32, usize, Record)> {
        let (&phase, slot) = self.phases.range(above + 1..).next_back()?;
        for (sender, records) in slot.senders.iter().enumerate() {
            if let Some(rec) = records.first() {
                return Some((phase, sender, *rec));
            }
        }
        None
    }

    /// The value in `{0, 1}` held by the most distinct senders at
    /// `phase`; ties break to `One`. Returns `Zero` when the phase is
    /// empty (callers only invoke this after a quorum check).
    pub fn majority_value(&self, phase: u32) -> Value {
        let zeros = self.count_value(phase, Value::Zero);
        let ones = self.count_value(phase, Value::One);
        if zeros > ones {
            Value::Zero
        } else {
            Value::One
        }
    }

    /// The binary value present at `phase` with the most senders, if any
    /// sender sent a binary value at all (Algorithm 1, line 32).
    pub fn any_binary_value(&self, phase: u32) -> Option<Value> {
        let zeros = self.count_value(phase, Value::Zero);
        let ones = self.count_value(phase, Value::One);
        if zeros == 0 && ones == 0 {
            None
        } else if zeros > ones {
            Some(Value::Zero)
        } else {
            Some(Value::One)
        }
    }

    /// Collects up to `limit` messages at `phase` (one per sender,
    /// ascending sender order), optionally restricted to `value`. Used to
    /// build justification bundles.
    pub fn collect(
        &self,
        phase: u32,
        value: Option<Value>,
        limit: usize,
    ) -> Vec<(Envelope, OneTimeSignature)> {
        let mut out = Vec::new();
        let Some(slot) = self.phases.get(&phase) else {
            return out;
        };
        for (sender, records) in slot.senders.iter().enumerate() {
            if out.len() >= limit {
                break;
            }
            let rec = match value {
                Some(v) => records.iter().find(|r| r.value == v),
                None => records.first(),
            };
            if let Some(rec) = rec {
                out.push((rec.to_envelope(sender, phase), rec.signature));
            }
        }
        out
    }

    /// Iterates over the DECIDE phases (`φ mod 3 = 0`) currently stored,
    /// ascending.
    pub fn decide_phases(&self) -> impl Iterator<Item = u32> + '_ {
        self.phases.keys().copied().filter(|p| p % 3 == 0)
    }

    /// The greatest LOCK phase (`φ mod 3 = 2`) strictly below `phase`
    /// (independent of store contents).
    pub fn lock_phase_below(phase: u32) -> Option<u32> {
        // Phases: 1=CONVERGE, 2=LOCK, 3=DECIDE, 4=CONVERGE, …
        (1..phase).rev().find(|p| p % 3 == 2)
    }

    /// Drops all phases strictly below `min_phase` (garbage collection).
    pub fn prune_below(&mut self, min_phase: u32) {
        self.phases = self.phases.split_off(&min_phase);
    }

    /// Lowest phase retained, if non-empty.
    pub fn min_phase(&self) -> Option<u32> {
        self.phases.keys().next().copied()
    }

    /// Total stored records (for tests and memory diagnostics).
    pub fn record_count(&self) -> usize {
        self.phases
            .values()
            .map(|s| s.senders.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turquois_crypto::sha256::DIGEST_LEN;

    fn sig(b: u8) -> OneTimeSignature {
        OneTimeSignature([b; DIGEST_LEN])
    }

    fn env(sender: usize, phase: u32, value: Value) -> Envelope {
        Envelope {
            sender,
            phase,
            value,
            coin_flip: false,
            status: Status::Undecided,
        }
    }

    #[test]
    fn duplicates_do_not_inflate_counts() {
        let mut s = MessageStore::new(4);
        assert!(s.insert(&env(0, 1, Value::One), sig(1)));
        assert!(!s.insert(&env(0, 1, Value::One), sig(1)));
        assert_eq!(s.count_phase(1), 1);
        assert_eq!(s.count_value(1, Value::One), 1);
        assert_eq!(s.record_count(), 1);
    }

    #[test]
    fn equivocation_counts_once_per_value_once_per_phase() {
        let mut s = MessageStore::new(4);
        assert!(s.insert(&env(2, 1, Value::Zero), sig(1)));
        assert!(s.insert(&env(2, 1, Value::One), sig(2)));
        // Phase count: the sender is present once.
        assert_eq!(s.count_phase(1), 1);
        // Value counts: present for each value it signed.
        assert_eq!(s.count_value(1, Value::Zero), 1);
        assert_eq!(s.count_value(1, Value::One), 1);
    }

    #[test]
    fn counts_across_senders() {
        let mut s = MessageStore::new(5);
        for sender in 0..4 {
            s.insert(&env(sender, 2, Value::One), sig(sender as u8));
        }
        s.insert(&env(4, 2, Value::Zero), sig(9));
        assert_eq!(s.count_phase(2), 5);
        assert_eq!(s.count_value(2, Value::One), 4);
        assert_eq!(s.count_value(2, Value::Zero), 1);
        assert_eq!(s.count_phase(3), 0);
    }

    #[test]
    fn best_catch_up_prefers_highest_phase() {
        let mut s = MessageStore::new(4);
        s.insert(&env(1, 3, Value::One), sig(1));
        s.insert(&env(2, 7, Value::Zero), sig(2));
        s.insert(&env(3, 5, Value::One), sig(3));
        let (phase, sender, rec) = s.best_catch_up(1).expect("candidates exist");
        assert_eq!((phase, sender), (7, 2));
        assert_eq!(rec.value, Value::Zero);
        assert!(s.best_catch_up(7).is_none());
        let (phase, _, _) = s.best_catch_up(5).expect("phase 7 qualifies");
        assert_eq!(phase, 7);
    }

    #[test]
    fn majority_and_tiebreak() {
        let mut s = MessageStore::new(5);
        s.insert(&env(0, 1, Value::Zero), sig(0));
        s.insert(&env(1, 1, Value::Zero), sig(1));
        s.insert(&env(2, 1, Value::One), sig(2));
        assert_eq!(s.majority_value(1), Value::Zero);
        s.insert(&env(3, 1, Value::One), sig(3));
        // Tie 2–2 breaks to One.
        assert_eq!(s.majority_value(1), Value::One);
        assert_eq!(s.any_binary_value(1), Some(Value::One));
        assert_eq!(s.any_binary_value(9), None);
    }

    #[test]
    fn any_binary_value_ignores_bot() {
        let mut s = MessageStore::new(4);
        s.insert(&env(0, 3, Value::Bot), sig(0));
        assert_eq!(s.any_binary_value(3), None);
        s.insert(&env(1, 3, Value::Zero), sig(1));
        assert_eq!(s.any_binary_value(3), Some(Value::Zero));
    }

    #[test]
    fn collect_one_per_sender_with_filter() {
        let mut s = MessageStore::new(4);
        s.insert(&env(0, 2, Value::One), sig(0));
        s.insert(&env(1, 2, Value::Zero), sig(1));
        s.insert(&env(1, 2, Value::One), sig(2)); // equivocator
        s.insert(&env(3, 2, Value::One), sig(3));
        let ones = s.collect(2, Some(Value::One), 10);
        assert_eq!(ones.len(), 3);
        assert!(ones.iter().all(|(e, _)| e.value == Value::One));
        let capped = s.collect(2, None, 2);
        assert_eq!(capped.len(), 2);
        assert!(s.collect(5, None, 10).is_empty());
    }

    #[test]
    fn prune_below_drops_old_phases() {
        let mut s = MessageStore::new(3);
        for phase in 1..=10 {
            s.insert(&env(0, phase, Value::One), sig(phase as u8));
        }
        s.prune_below(7);
        assert_eq!(s.min_phase(), Some(7));
        assert_eq!(s.count_phase(6), 0);
        assert_eq!(s.count_phase(7), 1);
        assert_eq!(s.record_count(), 4);
    }

    #[test]
    fn lock_phase_below_formula() {
        assert_eq!(MessageStore::lock_phase_below(4), Some(2));
        assert_eq!(MessageStore::lock_phase_below(6), Some(5));
        assert_eq!(MessageStore::lock_phase_below(7), Some(5));
        assert_eq!(MessageStore::lock_phase_below(8), Some(5));
        assert_eq!(MessageStore::lock_phase_below(9), Some(8));
        assert_eq!(MessageStore::lock_phase_below(2), None);
        assert_eq!(MessageStore::lock_phase_below(1), None);
    }

    #[test]
    fn decide_phases_iterates_stored_mod3_zero() {
        let mut s = MessageStore::new(2);
        for phase in [1u32, 3, 4, 6, 8, 9] {
            if phase % 3 == 0 {
                s.insert(&env(0, phase, Value::Bot), sig(0));
            } else {
                s.insert(&env(0, phase, Value::One), sig(0));
            }
        }
        let decides: Vec<u32> = s.decide_phases().collect();
        assert_eq!(decides, vec![3, 6, 9]);
    }

    #[test]
    fn has_sender_queries() {
        let mut s = MessageStore::new(3);
        s.insert(&env(1, 4, Value::Zero), sig(0));
        assert!(s.has_sender(4, 1));
        assert!(!s.has_sender(4, 0));
        assert!(s.has_sender_value(4, 1, Value::Zero));
        assert!(!s.has_sender_value(4, 1, Value::One));
    }

    #[test]
    #[should_panic(expected = "sender out of range")]
    fn insert_rejects_out_of_range_sender() {
        let mut s = MessageStore::new(2);
        s.insert(&env(5, 1, Value::One), sig(0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Incremental tallies vs. the retired scan oracle under
        /// arbitrary interleavings of inserts (including duplicates and
        /// equivocation — repeated (sender, phase) pairs with varying
        /// values/flags) and garbage collection (`prune_below`).
        #[test]
        fn incremental_tallies_match_scan_oracle(
            ops in proptest::collection::vec(
                // (sender, phase, value sel, coin, status sel, prune trigger)
                (0usize..4, 1u32..8, 0u8..3, proptest::arbitrary::any::<bool>(), 0u8..2, 0u8..16),
                1..60,
            ),
        ) {
            let mut s = MessageStore::new(4);
            for (sender, phase, v, coin, st, prune) in ops {
                if prune == 0 {
                    // GC: drop everything below this phase.
                    s.prune_below(phase);
                } else {
                    let value = [Value::Zero, Value::One, Value::Bot][v as usize];
                    let status = if st == 0 { Status::Undecided } else { Status::Decided };
                    let e = Envelope { sender, phase, value, coin_flip: coin, status };
                    s.insert(&e, sig(v));
                }
                // Check every live phase against the scan oracle (the
                // debug_assert inside count_* checks too, but this also
                // runs with debug assertions off).
                for (&phase, slot) in &s.phases {
                    proptest::prop_assert_eq!(s.count_phase(phase), slot.scan_phase_senders());
                    for value in [Value::Zero, Value::One, Value::Bot] {
                        proptest::prop_assert_eq!(
                            s.count_value(phase, value),
                            slot.scan_value_senders(value)
                        );
                    }
                }
            }
        }
    }
}
