//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The reproduction's allowed dependency set contains no cryptography
//! crate, so the hash function the paper builds on (it suggests SHA-256 or
//! RIPEMD-160) is implemented here and validated against the FIPS 180-4
//! test vectors in the unit tests.

use std::fmt;

pub mod multilane;

/// Length in bytes of a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// A 256-bit digest produced by [`Sha256`].
///
/// Implements constant-time equality to avoid timing side channels when
/// comparing verification keys against hashed secret keys.
///
/// # Example
///
/// ```
/// use turquois_crypto::sha256::sha256;
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, Eq, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

// Manual, matching the constant-time `PartialEq` below (equal digests
// hash equally, which is all the `Hash`/`Eq` contract requires).
impl std::hash::Hash for Digest {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl Digest {
    /// The all-zero digest; useful as a placeholder sentinel.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// Returns `None` if the string has the wrong length or contains
    /// non-hex characters.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != DIGEST_LEN * 2 || !s.is_ascii() {
            return None;
        }
        let bytes = s.as_bytes();
        let mut out = [0u8; DIGEST_LEN];
        for (i, out_byte) in out.iter_mut().enumerate() {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            *out_byte = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Interprets the first 8 bytes of the digest as a big-endian `u64`.
    ///
    /// Used to derive unbiased pseudo-random values (e.g. the simulated
    /// shared coin) from digests.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has >= 8 bytes"))
    }
}

impl PartialEq for Digest {
    fn eq(&self, other: &Self) -> bool {
        // Constant-time comparison.
        let mut diff = 0u8;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use turquois_crypto::sha256::{sha256, Sha256};
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (excluding what sits in `buf`).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Resumes hashing from a previously captured midstate.
    ///
    /// `state` must be the compression state after absorbing exactly
    /// `len` bytes, where `len` is a multiple of the 64-byte block
    /// size. Used by HMAC to cache the per-key ipad/opad block; the
    /// resumed hasher produces digests bit-identical to one that
    /// absorbed those bytes itself.
    pub fn from_midstate(state: [u32; 8], len: u64) -> Self {
        debug_assert_eq!(len % 64, 0, "midstate must sit on a block boundary");
        Sha256 {
            state,
            len,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Returns the current compression state, valid as a
    /// [`Sha256::from_midstate`] argument only when the bytes absorbed
    /// so far fall on a 64-byte block boundary.
    pub fn midstate(&self) -> [u32; 8] {
        debug_assert_eq!(self.buf_len, 0, "midstate capture mid-block loses data");
        self.state
    }

    /// Absorbs `data` into the hash state.
    ///
    /// Full 64-byte blocks are compressed straight out of the caller's
    /// slice (by reference — no per-block staging copy); only the
    /// sub-block head and tail ever touch the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                compress(&mut self.state, &self.buf);
                self.len += 64;
                self.buf_len = 0;
            }
        }
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            let block: &[u8; 64] = block.try_into().expect("chunk of length 64");
            compress(&mut self.state, block);
            self.len += 64;
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Consumes the hasher, producing the digest.
    pub fn finalize(mut self) -> Digest {
        let total_bits = (self.len + self.buf_len as u64).wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        let mut pad = [0u8; 128];
        let buffered = self.buf_len;
        pad[..buffered].copy_from_slice(&self.buf[..buffered]);
        pad[buffered] = 0x80;
        let pad_len = if buffered < 56 { 64 } else { 128 };
        pad[pad_len - 8..pad_len].copy_from_slice(&total_bits.to_be_bytes());
        for chunk in pad[..pad_len].chunks_exact(64) {
            let block: &[u8; 64] = chunk.try_into().expect("chunk of length 64");
            compress(&mut self.state, block);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

}

/// One FIPS 180-4 compression round over a borrowed block.
///
/// Free function (not a method) so `update` can compress
/// `self.buf` while mutating `self.state` — that split borrow is
/// what lets full blocks stream from the input slice by reference.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    crate::telemetry::count_sha_block();
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Hashes `data` in one shot.
///
/// # Example
///
/// ```
/// use turquois_crypto::sha256::sha256;
/// assert_eq!(
///     sha256(b"").to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte slices without allocating.
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// One-shot digest of `tag ‖ parts…` — the single helper behind every
/// domain-separated derivation (hash-chain secrets and tree nodes,
/// one-time-key derivations). Scalar and lane-batched callers build the
/// same preimage bytes, so routing both through here keeps the two
/// engines hashing identical input by construction.
#[inline]
pub fn sha256_domain(tag: &[u8], parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    h.update(tag);
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(sha256(input).to_hex(), *expected, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let expected = sha256(&data);
        for split in 0..=data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise the padding edge cases around 55/56/63/64 bytes.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let one = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
        assert_eq!(Digest::from_hex(&"a".repeat(63)), None);
        assert_eq!(Digest::from_hex(&"a".repeat(65)), None);
    }

    #[test]
    fn sha256_concat_equals_contiguous() {
        let a = b"part one |";
        let b = b" part two";
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert_eq!(sha256_concat(&[a, b]), sha256(&joined));
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0x01;
        bytes[7] = 0xff;
        assert_eq!(Digest(bytes).prefix_u64(), 0x0100_0000_0000_00ff);
    }

    #[test]
    fn digest_display_and_debug_nonempty() {
        let d = Digest::ZERO;
        assert!(!format!("{d}").is_empty());
        assert!(!format!("{d:?}").is_empty());
    }
}
