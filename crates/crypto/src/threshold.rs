//! Simulated `(n, t)` threshold signatures and threshold coin for ABBA.
//!
//! ABBA (Cachin–Kursawe–Shoup, *Random oracles in Constantinople*) relies
//! on a trusted dealer that distributes threshold key shares before the
//! protocol runs: a dual-threshold signature scheme for justifying
//! pre-votes/main-votes, and a threshold coin-tossing scheme producing a
//! shared coin per round. The reproduction keeps the dealer but implements
//! shares as keyed hashes instead of RSA/Diffie–Hellman exponentiations:
//!
//! * party `i`'s secret is `K_i = H(master ∥ i)`;
//! * a signature share on `m` is `HMAC(K_i, m)`;
//! * a combined signature is `HMAC(master, m)` and is produced by the
//!   combiner only when at least `threshold` valid shares from distinct
//!   parties are presented;
//! * the shared coin for tag `g` is a bit of `HMAC(master, "coin" ∥ g)`,
//!   recoverable only by combining `threshold` coin shares.
//!
//! Against the modeled adversary — who corrupts at most `t < threshold`
//! parties and therefore never holds `master` nor enough shares — this
//! preserves exactly the properties ABBA needs: shares are unforgeable,
//! combined signatures are unforgeable, and the coin is unpredictable
//! until `threshold` correct parties have revealed their shares.
//! Share *verification* in a real deployment uses public verification keys;
//! here [`SharePublic`] plays that role (it is distributed by the dealer
//! and must never be handed to adversary code — the harness enforces
//! this). The CPU price of the real exponentiations is charged separately
//! via [`crate::cost::CostModel`]. See `DESIGN.md` §4.

use crate::hmac::HmacKey;
use crate::sha256::{sha256_concat, Digest};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A signature share produced by one party.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct SigShare {
    /// Identifier of the producing party.
    pub party: usize,
    /// The share tag.
    pub tag: Digest,
}

/// A combined threshold signature.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct ThresholdSignature {
    /// The combined tag (`HMAC(master, message)` in the simulation).
    pub tag: Digest,
}

/// A coin share produced by one party for a given coin tag.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct CoinShare {
    /// Identifier of the producing party.
    pub party: usize,
    /// The share tag.
    pub tag: Digest,
}

/// Errors from threshold operations.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum ThresholdError {
    /// Fewer than `threshold` *valid* shares from distinct parties.
    NotEnoughShares {
        /// Valid shares presented.
        valid: usize,
        /// Shares required.
        required: usize,
    },
    /// A party id outside `0..n`.
    UnknownParty {
        /// The offending id.
        party: usize,
    },
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::NotEnoughShares { valid, required } => {
                write!(f, "{valid} valid shares, {required} required")
            }
            ThresholdError::UnknownParty { party } => write!(f, "unknown party {party}"),
        }
    }
}

impl std::error::Error for ThresholdError {}

struct SchemeInner {
    n: usize,
    threshold: usize,
    master: HmacKey,
    party_keys: Vec<HmacKey>,
}

/// Public verification/combination state of a threshold scheme instance.
///
/// Stands in for the public verification keys of a real (Shoup-style)
/// threshold RSA setup: every correct party may hold it; adversary code
/// must not (the experiment harness upholds this, mirroring the secrecy of
/// the dealer's master key in the real scheme).
#[derive(Clone)]
pub struct SharePublic {
    inner: Arc<SchemeInner>,
}

impl fmt::Debug for SharePublic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharePublic")
            .field("n", &self.inner.n)
            .field("threshold", &self.inner.threshold)
            .finish_non_exhaustive()
    }
}

/// One party's secret share of the threshold key.
#[derive(Clone)]
pub struct PartyKey {
    party: usize,
    key: HmacKey,
}

impl fmt::Debug for PartyKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartyKey")
            .field("party", &self.party)
            .finish_non_exhaustive()
    }
}

impl PartyKey {
    /// The party this key belongs to.
    pub fn party(&self) -> usize {
        self.party
    }

    /// Produces a signature share on `message`.
    pub fn sign_share(&self, message: &[u8]) -> SigShare {
        SigShare {
            party: self.party,
            tag: self.key.mac_parts(&[b"sig-share", message]),
        }
    }

    /// Produces a coin share for `coin_tag`.
    pub fn coin_share(&self, coin_tag: &[u8]) -> CoinShare {
        CoinShare {
            party: self.party,
            tag: self.key.mac_parts(&[b"coin-share", coin_tag]),
        }
    }
}

/// The trusted dealer: generates one threshold-scheme instance.
///
/// # Example
///
/// ```
/// use turquois_crypto::threshold::Dealer;
/// let (public, keys) = Dealer::deal(4, 3, 42);
/// let msg = b"pre-vote 0 round 1";
/// let shares: Vec<_> = keys.iter().take(3).map(|k| k.sign_share(msg)).collect();
/// let sig = public.combine(msg, &shares)?;
/// assert!(public.verify(msg, &sig));
/// # Ok::<(), turquois_crypto::threshold::ThresholdError>(())
/// ```
#[derive(Debug)]
pub struct Dealer;

impl Dealer {
    /// Deals an `(n, threshold)` instance derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= threshold <= n`.
    pub fn deal(n: usize, threshold: usize, seed: u64) -> (SharePublic, Vec<PartyKey>) {
        assert!(n >= 1, "need at least one party");
        assert!(
            (1..=n).contains(&threshold),
            "threshold {threshold} out of range 1..={n}"
        );
        let master_material = sha256_concat(&[b"turquois-threshold-master", &seed.to_be_bytes()]);
        let master = HmacKey::from_bytes(master_material.as_bytes());
        let party_keys: Vec<HmacKey> = (0..n)
            .map(|i| {
                let material = sha256_concat(&[
                    b"turquois-threshold-party",
                    &seed.to_be_bytes(),
                    &(i as u64).to_be_bytes(),
                ]);
                HmacKey::from_bytes(material.as_bytes())
            })
            .collect();
        let inner = Arc::new(SchemeInner {
            n,
            threshold,
            master,
            party_keys: party_keys.clone(),
        });
        let keys = party_keys
            .into_iter()
            .enumerate()
            .map(|(party, key)| PartyKey { party, key })
            .collect();
        (SharePublic { inner }, keys)
    }
}

impl SharePublic {
    /// Number of parties.
    pub fn n(&self) -> usize {
        self.inner.n
    }

    /// Shares required to combine.
    pub fn threshold(&self) -> usize {
        self.inner.threshold
    }

    /// Verifies a signature share on `message`.
    pub fn verify_share(&self, message: &[u8], share: &SigShare) -> bool {
        let Some(key) = self.inner.party_keys.get(share.party) else {
            return false;
        };
        key.mac_parts(&[b"sig-share", message]) == share.tag
    }

    /// Combines at least `threshold` valid shares into a threshold
    /// signature.
    ///
    /// Invalid or duplicate-party shares are ignored rather than
    /// rejected — a Byzantine party flooding bad shares cannot prevent
    /// combination once enough honest shares are present.
    ///
    /// # Errors
    ///
    /// [`ThresholdError::NotEnoughShares`] when fewer than `threshold`
    /// valid shares from distinct parties are given.
    pub fn combine(
        &self,
        message: &[u8],
        shares: &[SigShare],
    ) -> Result<ThresholdSignature, ThresholdError> {
        let mut seen = BTreeSet::new();
        for share in shares {
            if self.verify_share(message, share) {
                seen.insert(share.party);
            }
        }
        if seen.len() < self.inner.threshold {
            return Err(ThresholdError::NotEnoughShares {
                valid: seen.len(),
                required: self.inner.threshold,
            });
        }
        Ok(ThresholdSignature {
            tag: self.inner.master.mac_parts(&[b"sig", message]),
        })
    }

    /// Verifies a combined threshold signature.
    pub fn verify(&self, message: &[u8], sig: &ThresholdSignature) -> bool {
        self.inner.master.mac_parts(&[b"sig", message]) == sig.tag
    }

    /// Verifies a coin share for `coin_tag`.
    pub fn verify_coin_share(&self, coin_tag: &[u8], share: &CoinShare) -> bool {
        let Some(key) = self.inner.party_keys.get(share.party) else {
            return false;
        };
        key.mac_parts(&[b"coin-share", coin_tag]) == share.tag
    }

    /// Combines coin shares into the shared coin value for `coin_tag`.
    ///
    /// # Errors
    ///
    /// [`ThresholdError::NotEnoughShares`] when fewer than `threshold`
    /// valid shares from distinct parties are given.
    pub fn combine_coin(
        &self,
        coin_tag: &[u8],
        shares: &[CoinShare],
    ) -> Result<bool, ThresholdError> {
        let mut seen = BTreeSet::new();
        for share in shares {
            if self.verify_coin_share(coin_tag, share) {
                seen.insert(share.party);
            }
        }
        if seen.len() < self.inner.threshold {
            return Err(ThresholdError::NotEnoughShares {
                valid: seen.len(),
                required: self.inner.threshold,
            });
        }
        Ok(self.coin_value(coin_tag))
    }

    /// The underlying coin value — exposed for test oracles only; protocol
    /// code must go through [`SharePublic::combine_coin`].
    pub fn coin_value(&self, coin_tag: &[u8]) -> bool {
        self.inner.master.mac_parts(&[b"coin", coin_tag]).0[0] & 1 == 1
    }

    /// Combines coin shares into a *transferable proof* of the coin
    /// value: a third party can verify the proof without holding any
    /// share (ABBA's coin-justified pre-votes carry one).
    ///
    /// # Errors
    ///
    /// [`ThresholdError::NotEnoughShares`] under `threshold` valid shares
    /// from distinct parties.
    pub fn combine_coin_proof(
        &self,
        coin_tag: &[u8],
        shares: &[CoinShare],
    ) -> Result<CoinProof, ThresholdError> {
        let value = self.combine_coin(coin_tag, shares)?;
        Ok(CoinProof {
            value,
            tag: self.inner.master.mac_parts(&[b"coin-proof", coin_tag]),
        })
    }

    /// Verifies a transferable coin proof for `coin_tag`.
    pub fn verify_coin_proof(&self, coin_tag: &[u8], proof: &CoinProof) -> bool {
        proof.tag == self.inner.master.mac_parts(&[b"coin-proof", coin_tag])
            && proof.value == self.coin_value(coin_tag)
    }
}

/// A transferable proof of a shared-coin outcome.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct CoinProof {
    /// The coin value proven.
    pub value: bool,
    /// The proof tag (unforgeable without the master key).
    pub tag: Digest,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SharePublic, Vec<PartyKey>) {
        Dealer::deal(7, 5, 1234)
    }

    #[test]
    fn combine_with_exactly_threshold_shares() {
        let (public, keys) = setup();
        let msg = b"main-vote";
        let shares: Vec<_> = keys.iter().take(5).map(|k| k.sign_share(msg)).collect();
        let sig = public.combine(msg, &shares).expect("enough shares");
        assert!(public.verify(msg, &sig));
        assert!(!public.verify(b"other message", &sig));
    }

    #[test]
    fn too_few_shares_rejected() {
        let (public, keys) = setup();
        let msg = b"main-vote";
        let shares: Vec<_> = keys.iter().take(4).map(|k| k.sign_share(msg)).collect();
        assert_eq!(
            public.combine(msg, &shares),
            Err(ThresholdError::NotEnoughShares {
                valid: 4,
                required: 5
            })
        );
    }

    #[test]
    fn duplicate_party_shares_counted_once() {
        let (public, keys) = setup();
        let msg = b"vote";
        let mut shares: Vec<_> = keys.iter().take(4).map(|k| k.sign_share(msg)).collect();
        shares.push(keys[0].sign_share(msg)); // duplicate of party 0
        assert!(matches!(
            public.combine(msg, &shares),
            Err(ThresholdError::NotEnoughShares { valid: 4, .. })
        ));
    }

    #[test]
    fn forged_shares_ignored() {
        let (public, keys) = setup();
        let msg = b"vote";
        let mut shares: Vec<_> = keys.iter().take(4).map(|k| k.sign_share(msg)).collect();
        // A Byzantine party fabricates shares for parties it does not
        // control: random tags that fail verification.
        shares.push(SigShare {
            party: 5,
            tag: Digest::ZERO,
        });
        shares.push(SigShare {
            party: 6,
            tag: crate::sha256::sha256(b"guess"),
        });
        assert!(matches!(
            public.combine(msg, &shares),
            Err(ThresholdError::NotEnoughShares { valid: 4, .. })
        ));
        // Adding a genuine 5th share succeeds despite the junk.
        shares.push(keys[4].sign_share(msg));
        assert!(public.combine(msg, &shares).is_ok());
    }

    #[test]
    fn share_bound_to_message() {
        let (public, keys) = setup();
        let share = keys[2].sign_share(b"msg-a");
        assert!(public.verify_share(b"msg-a", &share));
        assert!(!public.verify_share(b"msg-b", &share));
    }

    #[test]
    fn share_party_id_cannot_be_reassigned() {
        let (public, keys) = setup();
        let mut share = keys[2].sign_share(b"msg");
        share.party = 3;
        assert!(!public.verify_share(b"msg", &share));
    }

    #[test]
    fn out_of_range_party_rejected() {
        let (public, keys) = setup();
        let mut share = keys[0].sign_share(b"msg");
        share.party = 99;
        assert!(!public.verify_share(b"msg", &share));
    }

    #[test]
    fn coin_is_deterministic_and_combinable() {
        let (public, keys) = setup();
        let tag = b"abba/round-3";
        let shares: Vec<_> = keys.iter().take(5).map(|k| k.coin_share(tag)).collect();
        let v1 = public.combine_coin(tag, &shares).expect("enough shares");
        let shares2: Vec<_> = keys.iter().skip(2).map(|k| k.coin_share(tag)).collect();
        let v2 = public.combine_coin(tag, &shares2).expect("enough shares");
        assert_eq!(v1, v2, "coin must agree regardless of which shares combine");
        assert_eq!(v1, public.coin_value(tag));
    }

    #[test]
    fn coin_varies_across_tags() {
        let (public, keys) = setup();
        // At least one differing coin value among many tags (overwhelming
        // probability for a sound construction).
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..32u32 {
            let tag = format!("round-{r}");
            let shares: Vec<_> = keys
                .iter()
                .take(5)
                .map(|k| k.coin_share(tag.as_bytes()))
                .collect();
            seen.insert(public.combine_coin(tag.as_bytes(), &shares).unwrap());
        }
        assert_eq!(seen.len(), 2, "coin should produce both values over 32 rounds");
    }

    #[test]
    fn coin_too_few_shares_rejected() {
        let (public, keys) = setup();
        let tag = b"round";
        let shares: Vec<_> = keys.iter().take(4).map(|k| k.coin_share(tag)).collect();
        assert!(public.combine_coin(tag, &shares).is_err());
    }

    #[test]
    fn coin_share_not_valid_as_sig_share() {
        let (public, keys) = setup();
        let cs = keys[0].coin_share(b"x");
        let as_sig = SigShare {
            party: cs.party,
            tag: cs.tag,
        };
        assert!(!public.verify_share(b"x", &as_sig));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        let _ = Dealer::deal(4, 0, 1);
    }

    #[test]
    fn coin_proof_round_trip_and_forgery() {
        let (public, keys) = setup();
        let tag = b"abba/coin/4";
        let shares: Vec<_> = keys.iter().take(5).map(|k| k.coin_share(tag)).collect();
        let proof = public.combine_coin_proof(tag, &shares).expect("enough");
        assert!(public.verify_coin_proof(tag, &proof));
        assert_eq!(proof.value, public.coin_value(tag));
        // Wrong tag or flipped value fails.
        assert!(!public.verify_coin_proof(b"abba/coin/5", &proof));
        let flipped = CoinProof {
            value: !proof.value,
            tag: proof.tag,
        };
        assert!(!public.verify_coin_proof(tag, &flipped));
        let forged = CoinProof {
            value: proof.value,
            tag: Digest::ZERO,
        };
        assert!(!public.verify_coin_proof(tag, &forged));
        // Too few shares cannot produce a proof.
        assert!(public
            .combine_coin_proof(tag, &shares[..4])
            .is_err());
    }

    #[test]
    fn different_seeds_independent_instances() {
        let (pub_a, keys_a) = Dealer::deal(4, 3, 1);
        let (pub_b, _) = Dealer::deal(4, 3, 2);
        let share = keys_a[0].sign_share(b"m");
        assert!(pub_a.verify_share(b"m", &share));
        assert!(!pub_b.verify_share(b"m", &share));
    }
}
