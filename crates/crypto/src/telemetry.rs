//! Hot-path telemetry: cheap thread-local counters for the *real*
//! (wall-clock) cryptographic work this process performs, plus the
//! global switch for the verified-signature memo caches.
//!
//! The counters measure host CPU effort only — they are invisible to
//! the simulation. Simulated CPU is charged through
//! [`crate::cost::CostModel`] per *logical* operation, and the memo
//! caches never change that: a cache hit charges exactly the same
//! simulated cost as the verification it short-circuits. These
//! counters exist so the wall-clock saving is *measurable*
//! (`results/BENCH_hotpath.json`, the tables' opt-in stats line).
//!
//! All counters are `thread_local!`: the harness runner executes each
//! `(cell, rep)` job start-to-finish on one worker thread, so a
//! snapshot pair around a job captures exactly that job's work
//! regardless of `TURQUOIS_THREADS`.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

thread_local! {
    static SHA_BLOCKS: Cell<u64> = const { Cell::new(0) };
    static VERIFY_CALLS: Cell<u64> = const { Cell::new(0) };
    static CACHE_HITS: Cell<u64> = const { Cell::new(0) };
    static CACHE_MISSES: Cell<u64> = const { Cell::new(0) };
    static LANE_BLOCKS: Cell<u64> = const { Cell::new(0) };
    static LANE_SLOTS: Cell<u64> = const { Cell::new(0) };
}

/// Records one SHA-256 compression-function invocation (64-byte block).
/// Called by [`crate::sha256`] on every block; everything else — HMAC,
/// one-time signatures, threshold shares — bottoms out here.
#[inline]
pub(crate) fn count_sha_block() {
    SHA_BLOCKS.with(|c| c.set(c.get() + 1));
}

/// Records one multi-lane compression step: `real` logical blocks were
/// issued into a kernel with `width` lane slots (`real < width` on a
/// ragged final batch — the unused lanes chew a dummy block).
/// The `real` blocks also count as ordinary SHA blocks, so `sha_blocks`
/// stays comparable between the scalar and multi-lane engines.
#[inline]
pub(crate) fn count_lane_compress(real: u64, width: u64) {
    SHA_BLOCKS.with(|c| c.set(c.get() + real));
    LANE_BLOCKS.with(|c| c.set(c.get() + real));
    LANE_SLOTS.with(|c| c.set(c.get() + width));
}

/// Records one logical signature/MAC verification request (hit or miss).
#[inline]
pub fn count_verify_call() {
    VERIFY_CALLS.with(|c| c.set(c.get() + 1));
}

/// Records a memo-cache hit (verification answered without hashing).
#[inline]
pub fn count_cache_hit() {
    CACHE_HITS.with(|c| c.set(c.get() + 1));
}

/// Records a memo-cache miss (verification actually recomputed).
#[inline]
pub fn count_cache_miss() {
    CACHE_MISSES.with(|c| c.set(c.get() + 1));
}

/// A point-in-time reading of this thread's hot-path counters.
///
/// Counters only ever grow; subtract two snapshots (see
/// [`HotpathSnapshot::delta_since`]) to attribute work to an interval.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct HotpathSnapshot {
    /// SHA-256 compression blocks executed (the real-work unit).
    pub sha_blocks: u64,
    /// Logical verification requests (cache hits + misses + uncached).
    pub verify_calls: u64,
    /// Memo-cache hits.
    pub cache_hits: u64,
    /// Memo-cache misses.
    pub cache_misses: u64,
    /// Logical blocks that went through the multi-lane kernel (a subset
    /// of `sha_blocks`; the rest ran on the scalar engine).
    pub lane_blocks: u64,
    /// Lane slots issued by the multi-lane kernel, counting dummy lanes
    /// in ragged final batches. `lane_blocks / lane_slots` is the lane
    /// occupancy; see [`HotpathSnapshot::lanes_utilization`].
    pub lane_slots: u64,
}

impl HotpathSnapshot {
    /// Reads the current thread's counters.
    pub fn now() -> Self {
        HotpathSnapshot {
            sha_blocks: SHA_BLOCKS.with(Cell::get),
            verify_calls: VERIFY_CALLS.with(Cell::get),
            cache_hits: CACHE_HITS.with(Cell::get),
            cache_misses: CACHE_MISSES.with(Cell::get),
            lane_blocks: LANE_BLOCKS.with(Cell::get),
            lane_slots: LANE_SLOTS.with(Cell::get),
        }
    }

    /// Counter increments since `earlier` (which must be an older
    /// snapshot from the same thread; saturates defensively).
    pub fn delta_since(&self, earlier: &HotpathSnapshot) -> HotpathSnapshot {
        HotpathSnapshot {
            sha_blocks: self.sha_blocks.saturating_sub(earlier.sha_blocks),
            verify_calls: self.verify_calls.saturating_sub(earlier.verify_calls),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            lane_blocks: self.lane_blocks.saturating_sub(earlier.lane_blocks),
            lane_slots: self.lane_slots.saturating_sub(earlier.lane_slots),
        }
    }

    /// Accumulates `other` into `self` (used when summing per-rep deltas).
    pub fn add(&mut self, other: &HotpathSnapshot) {
        self.sha_blocks += other.sha_blocks;
        self.verify_calls += other.verify_calls;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.lane_blocks += other.lane_blocks;
        self.lane_slots += other.lane_slots;
    }

    /// Cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Lane occupancy of the multi-lane kernel in `[0, 1]`: logical
    /// blocks issued per lane slot (0 when the kernel never ran, 1 when
    /// every compression step filled all its lanes).
    pub fn lanes_utilization(&self) -> f64 {
        if self.lane_slots == 0 {
            0.0
        } else {
            self.lane_blocks as f64 / self.lane_slots as f64
        }
    }
}

/// Environment variable that force-disables the memo caches (any
/// non-empty value). The CI differential smoke runs a shrunk `table1`
/// with and without it and asserts byte-identical output.
pub const NO_MEMO_ENV: &str = "TURQUOIS_NO_MEMO";

static MEMO_ENABLED: AtomicBool = AtomicBool::new(true);
static MEMO_INIT: Once = Once::new();

/// Whether the memo caches may skip recomputation. Defaults to `true`;
/// the first call reads [`NO_MEMO_ENV`] once. [`set_memo_enabled`]
/// overrides it at any time (the hot-path bench flips it between
/// passes).
///
/// Disabled mode changes *only* whether the underlying hash work is
/// re-executed: lookups, insertions, and hit/miss counters behave
/// identically in both modes, so telemetry and — by construction —
/// every simulated result are mode-independent.
pub fn memo_enabled() -> bool {
    MEMO_INIT.call_once(|| {
        if std::env::var_os(NO_MEMO_ENV).is_some_and(|v| !v.is_empty()) {
            MEMO_ENABLED.store(false, Ordering::Relaxed);
        }
    });
    MEMO_ENABLED.load(Ordering::Relaxed)
}

/// Force-enables or -disables the memo caches, overriding the
/// environment. Takes effect process-wide for subsequent lookups.
pub fn set_memo_enabled(enabled: bool) {
    MEMO_INIT.call_once(|| {});
    MEMO_ENABLED.store(enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha_blocks_count_compressions() {
        let before = HotpathSnapshot::now();
        // 32-byte input: 1 padded block. 64-byte input: data block + pad.
        crate::sha256::sha256(&[0u8; 32]);
        crate::sha256::sha256(&[0u8; 64]);
        let delta = HotpathSnapshot::now().delta_since(&before);
        assert_eq!(delta.sha_blocks, 3);
    }

    #[test]
    fn snapshot_delta_and_add() {
        let a = HotpathSnapshot {
            sha_blocks: 10,
            verify_calls: 5,
            cache_hits: 3,
            cache_misses: 2,
            lane_blocks: 8,
            lane_slots: 12,
        };
        let b = HotpathSnapshot {
            sha_blocks: 4,
            verify_calls: 2,
            cache_hits: 1,
            cache_misses: 1,
            lane_blocks: 2,
            lane_slots: 4,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.sha_blocks, 6);
        assert_eq!(d.verify_calls, 3);
        assert_eq!(d.lane_blocks, 6);
        assert_eq!(d.lane_slots, 8);
        assert!((a.lanes_utilization() - 8.0 / 12.0).abs() < 1e-12);
        assert_eq!(HotpathSnapshot::default().lanes_utilization(), 0.0);
        let mut sum = b;
        sum.add(&d);
        assert_eq!(sum, a);
        assert!((a.hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(HotpathSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn memo_toggle_round_trips() {
        let initial = memo_enabled();
        set_memo_enabled(false);
        assert!(!memo_enabled());
        set_memo_enabled(true);
        assert!(memo_enabled());
        set_memo_enabled(initial);
    }
}
