//! HMAC-SHA256 (RFC 2104).
//!
//! The paper's Bracha implementation authenticates its point-to-point
//! channels with the IPSec Authentication Header. In the reproduction the
//! same role — a per-link symmetric authenticator attached to every unicast
//! message — is played by HMAC-SHA256 with pairwise keys distributed before
//! the protocol starts, exactly as the paper distributes its security
//! associations.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// XORs the RFC 2104 inner/outer pad constants into the key block.
fn pads(block: &[u8; BLOCK_LEN]) -> ([u8; BLOCK_LEN], [u8; BLOCK_LEN]) {
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= block[i];
        opad[i] ^= block[i];
    }
    (ipad, opad)
}

/// A symmetric key for HMAC-SHA256.
///
/// # Example
///
/// ```
/// use turquois_crypto::hmac::HmacKey;
/// let key = HmacKey::from_bytes(b"pairwise secret");
/// let tag = key.mac(b"message");
/// assert!(key.verify(b"message", &tag));
/// assert!(!key.verify(b"tampered", &tag));
/// ```
#[derive(Clone)]
pub struct HmacKey {
    /// Key padded/hashed to the block length, per RFC 2104.
    block: [u8; BLOCK_LEN],
    /// Compression state after absorbing the ipad block — the first
    /// SHA-256 block of every inner hash this key will ever compute.
    inner_mid: [u32; 8],
    /// Compression state after absorbing the opad block.
    outer_mid: [u32; 8],
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("HmacKey(..)")
    }
}

impl HmacKey {
    /// Derives an HMAC key from arbitrary key material.
    ///
    /// Keys longer than the SHA-256 block size are first hashed, as RFC
    /// 2104 requires.
    pub fn from_bytes(material: &[u8]) -> Self {
        let mut block = [0u8; BLOCK_LEN];
        if material.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(material);
            block[..DIGEST_LEN].copy_from_slice(d.as_bytes());
        } else {
            block[..material.len()].copy_from_slice(material);
        }
        let (ipad, opad) = pads(&block);
        // Cache the pad-block compression states once per key: every
        // inner hash starts with the ipad block and every outer hash
        // with the opad block, so `mac_parts` can resume from these
        // midstates instead of re-compressing both pads on every tag.
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey {
            block,
            inner_mid: inner.midstate(),
            outer_mid: outer.midstate(),
        }
    }

    /// Computes the HMAC tag over `message`.
    pub fn mac(&self, message: &[u8]) -> Digest {
        self.mac_parts(&[message])
    }

    /// Computes the HMAC tag over the concatenation of `parts` without
    /// allocating.
    ///
    /// Resumes from the per-key cached pad midstates when verification
    /// memoization is enabled (saving the two pad compressions per tag),
    /// and recomputes both pads from scratch when it is disabled — the
    /// two paths are bit-identical.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> Digest {
        if crate::telemetry::memo_enabled() {
            self.mac_parts_resumed(parts)
        } else {
            self.mac_parts_scratch(parts)
        }
    }

    /// Fast path: both pad blocks come from the midstates cached at key
    /// construction, so only the message itself is compressed.
    fn mac_parts_resumed(&self, parts: &[&[u8]]) -> Digest {
        let mut inner = Sha256::from_midstate(self.inner_mid, BLOCK_LEN as u64);
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finalize();
        let mut outer = Sha256::from_midstate(self.outer_mid, BLOCK_LEN as u64);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// Reference path: the textbook RFC 2104 computation, re-absorbing
    /// the ipad and opad blocks on every call.
    fn mac_parts_scratch(&self, parts: &[&[u8]]) -> Digest {
        let (ipad, opad) = pads(&self.block);
        let mut inner = Sha256::new();
        inner.update(&ipad);
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&opad);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// Verifies `tag` against `message` in constant time.
    pub fn verify(&self, message: &[u8], tag: &Digest) -> bool {
        // Digest::eq is constant-time.
        self.mac(message) == *tag
    }

    /// Verifies a truncated tag (e.g. the 96-bit ICV of IPSec AH's
    /// HMAC-SHA-96) in constant time.
    pub fn verify_truncated(&self, message: &[u8], tag: &[u8]) -> bool {
        let full = self.mac(message);
        if tag.is_empty() || tag.len() > full.0.len() {
            return false;
        }
        let mut diff = 0u8;
        for (a, b) in full.0.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// Computes the HMAC tags of a batch of `(key, message)` pairs through
/// the multi-lane kernel: all inner hashes run as one lane batch
/// (resumed from each key's cached ipad midstate), then all outer
/// finishes as a second batch. Bit-identical to calling
/// [`HmacKey::mac`] per pair.
///
/// Falls back to the per-pair scalar path when memoization is disabled
/// (`TURQUOIS_NO_MEMO` re-executes the pad compressions, and the batch
/// path has no scratch equivalent) — keeping the disabled mode's work
/// accounting exactly what it was before batching existed.
pub fn hmac_many(items: &[(&HmacKey, &[u8])]) -> Vec<Digest> {
    use crate::sha256::multilane::{digest_jobs, LaneJob};
    if items.is_empty() {
        return Vec::new();
    }
    if !crate::telemetry::memo_enabled() {
        return items.iter().map(|(key, msg)| key.mac(msg)).collect();
    }
    let inner_jobs: Vec<LaneJob<'_>> = items
        .iter()
        .map(|(key, msg)| LaneJob {
            state: key.inner_mid,
            prefix_len: BLOCK_LEN as u64,
            msg,
        })
        .collect();
    let inner = digest_jobs(&inner_jobs);
    let outer_jobs: Vec<LaneJob<'_>> = items
        .iter()
        .zip(&inner)
        .map(|((key, _), inner_digest)| LaneJob {
            state: key.outer_mid,
            prefix_len: BLOCK_LEN as u64,
            msg: inner_digest.as_bytes(),
        })
        .collect();
    digest_jobs(&outer_jobs)
}

/// Derives the pairwise HMAC key for the unordered node pair `{a, b}`
/// from the run's pre-distribution `seed` (the paper establishes IPSec
/// security associations between every pair before the run starts).
///
/// The derivation is a pure function of `(seed, min(a, b), max(a, b))`
/// — symmetric, so both endpoints of a link derive the same key, and
/// independent of *when* it runs, so an adapter may derive keys eagerly
/// at setup or lazily on first use of a link with bit-identical results
/// (DESIGN.md §10).
pub fn pairwise_key(seed: u64, a: usize, b: usize) -> HmacKey {
    let (lo, hi) = (a.min(b), a.max(b));
    let material = crate::sha256::sha256_concat(&[
        b"turquois-pairwise",
        &seed.to_be_bytes(),
        &(lo as u64).to_be_bytes(),
        &(hi as u64).to_be_bytes(),
    ]);
    HmacKey::from_bytes(material.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Digest;

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = HmacKey::from_bytes(&[0x0b; 20]);
        let tag = key.mac(b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let key = HmacKey::from_bytes(b"Jefe");
        let tag = key.mac(b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = HmacKey::from_bytes(&[0xaa; 20]);
        let tag = key.mac(&[0xdd; 50]);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = HmacKey::from_bytes(&[0xaa; 131]);
        let tag = key.mac(b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = HmacKey::from_bytes(b"k");
        let tag = key.mac(b"payload");
        assert!(key.verify(b"payload", &tag));
        assert!(!key.verify(b"payloae", &tag));
        assert!(!key.verify(b"payload", &Digest::ZERO));
    }

    #[test]
    fn different_keys_different_tags() {
        let k1 = HmacKey::from_bytes(b"alpha");
        let k2 = HmacKey::from_bytes(b"beta");
        assert_ne!(k1.mac(b"m"), k2.mac(b"m"));
    }

    #[test]
    fn mac_parts_matches_contiguous() {
        let key = HmacKey::from_bytes(b"k");
        assert_eq!(key.mac_parts(&[b"ab", b"cd"]), key.mac(b"abcd"));
    }

    #[test]
    fn truncated_verify() {
        let key = HmacKey::from_bytes(b"k");
        let tag = key.mac(b"msg");
        assert!(key.verify_truncated(b"msg", &tag.0[..12]));
        assert!(!key.verify_truncated(b"other", &tag.0[..12]));
        let mut bad = tag.0[..12].to_vec();
        bad[0] ^= 1;
        assert!(!key.verify_truncated(b"msg", &bad));
        assert!(!key.verify_truncated(b"msg", &[]));
        assert!(!key.verify_truncated(b"msg", &[0u8; 33]));
    }

    /// The midstate-resumed fast path and the scratch reference path
    /// must be bit-identical for every key/message shape, including
    /// messages that straddle block boundaries and long-key hashing.
    #[test]
    fn resumed_matches_scratch() {
        let keys = [
            HmacKey::from_bytes(b""),
            HmacKey::from_bytes(b"Jefe"),
            HmacKey::from_bytes(&[0xaa; 64]),
            HmacKey::from_bytes(&[0xaa; 131]),
        ];
        let messages: Vec<Vec<u8>> = [0usize, 1, 55, 56, 63, 64, 65, 200]
            .iter()
            .map(|&len| (0..len).map(|i| i as u8).collect())
            .collect();
        for key in &keys {
            for m in &messages {
                assert_eq!(
                    key.mac_parts_resumed(&[m]),
                    key.mac_parts_scratch(&[m]),
                    "paths diverged for message length {}",
                    m.len()
                );
                // Split delivery must not matter on either path.
                let mid = m.len() / 2;
                assert_eq!(
                    key.mac_parts_resumed(&[&m[..mid], &m[mid..]]),
                    key.mac_parts_scratch(&[m])
                );
            }
        }
    }

    /// `hmac_many` must match per-pair `mac` on every engine and batch
    /// size, including ragged batches and mixed keys/lengths.
    #[test]
    fn hmac_many_matches_per_pair_mac() {
        use crate::sha256::multilane::{scalar_sha_enabled, set_scalar_sha, test_knob_lock};
        let _guard = test_knob_lock();
        let initial = scalar_sha_enabled();
        let keys: Vec<HmacKey> = (0..5).map(|i| HmacKey::from_bytes(&[i as u8; 16])).collect();
        let messages: Vec<Vec<u8>> = [0usize, 1, 55, 63, 64, 65, 120, 200]
            .iter()
            .map(|&len| (0..len).map(|i| i as u8).collect())
            .collect();
        for batch in [1usize, 3, 4, 7, 8, 13] {
            let items: Vec<(&HmacKey, &[u8])> = (0..batch)
                .map(|i| (&keys[i % keys.len()], &messages[i % messages.len()][..]))
                .collect();
            let expected: Vec<Digest> = items.iter().map(|(k, m)| k.mac(m)).collect();
            set_scalar_sha(false);
            assert_eq!(hmac_many(&items), expected, "lanes, batch {batch}");
            set_scalar_sha(true);
            assert_eq!(hmac_many(&items), expected, "scalar, batch {batch}");
            set_scalar_sha(false);
        }
        assert!(hmac_many(&[]).is_empty());
        set_scalar_sha(initial);
    }

    #[test]
    fn debug_hides_key() {
        let key = HmacKey::from_bytes(b"topsecret");
        assert_eq!(format!("{key:?}"), "HmacKey(..)");
    }

    #[test]
    fn pairwise_key_symmetric_and_distinct() {
        // Symmetric in the pair, sensitive to pair and seed.
        assert_eq!(pairwise_key(7, 0, 3).mac(b"m"), pairwise_key(7, 3, 0).mac(b"m"));
        assert_ne!(pairwise_key(7, 0, 1).mac(b"m"), pairwise_key(7, 0, 2).mac(b"m"));
        assert_ne!(pairwise_key(7, 0, 1).mac(b"m"), pairwise_key(8, 0, 1).mac(b"m"));
    }
}
