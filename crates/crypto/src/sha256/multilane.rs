//! Portable multi-lane SHA-256 compression (DESIGN.md §12).
//!
//! The scalar kernel in [`super`] processes one 64-byte block at a
//! time. The hot paths, however, mostly hash *independent* short
//! messages: the 256 revealed Lamport secrets of a hash-chain
//! signature, the per-slot one-time-key derivations of an epoch, the
//! per-destination link-HMAC finishes of a broadcast. This module runs
//! up to eight such digests in lockstep through a struct-of-arrays
//! compressor — every round variable is a `[u32; LANES]` and every
//! operation an elementwise loop over the lanes, the shape rustc's
//! autovectorizer turns into SIMD on any target without `unsafe` or
//! intrinsics.
//!
//! Determinism contract: the lane kernel computes bit-identical digests
//! to the scalar kernel (same FIPS 180-4 rounds, same padding), and
//! [`SCALAR_SHA_ENV`] forces every batch entry point back onto the
//! scalar engine as a differential oracle —
//! `crates/harness/tests/sha_differential.rs` asserts `table1` stdout
//! is byte-identical either way. Batching is host-only restructuring:
//! simulated CPU is charged per logical operation by
//! [`crate::cost::CostModel`] regardless of which engine ran.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

use super::{Digest, Sha256, DIGEST_LEN, H0, K};

/// Environment variable that forces the batch entry points onto the
/// scalar kernel (any non-empty value). The CI differential smoke runs
/// a shrunk `table1` with and without it and asserts byte-identical
/// output.
pub const SCALAR_SHA_ENV: &str = "TURQUOIS_SCALAR_SHA";

static SCALAR_SHA: AtomicBool = AtomicBool::new(false);
static SCALAR_INIT: Once = Once::new();

/// Whether batch digests must run on the scalar kernel. Defaults to
/// `false` (multi-lane); the first call reads [`SCALAR_SHA_ENV`] once.
/// [`set_scalar_sha`] overrides it at any time (the hot-path bench
/// flips it between passes).
pub fn scalar_sha_enabled() -> bool {
    SCALAR_INIT.call_once(|| {
        if std::env::var_os(SCALAR_SHA_ENV).is_some_and(|v| !v.is_empty()) {
            SCALAR_SHA.store(true, Ordering::Relaxed);
        }
    });
    SCALAR_SHA.load(Ordering::Relaxed)
}

/// Forces the batch entry points onto the scalar (`true`) or
/// multi-lane (`false`) kernel, overriding the environment. Takes
/// effect process-wide for subsequent batches.
pub fn set_scalar_sha(scalar: bool) {
    SCALAR_INIT.call_once(|| {});
    SCALAR_SHA.store(scalar, Ordering::Relaxed);
}

/// One pending digest in a batch: a compression state plus the message
/// suffix still to absorb. `state`/`prefix_len` are [`H0`]/0 for a
/// fresh digest, or a cached HMAC pad midstate (`prefix_len` 64) for a
/// resumed finish.
#[derive(Clone, Copy)]
pub(crate) struct LaneJob<'a> {
    /// Compression state after absorbing exactly `prefix_len` bytes.
    pub state: [u32; 8],
    /// Bytes already absorbed into `state`; must be a multiple of 64.
    pub prefix_len: u64,
    /// Remaining message bytes (absorbed, then padded, then finished).
    pub msg: &'a [u8],
}

/// Padded blocks a job's suffix compresses into (its prefix is already
/// block-aligned, so only the suffix length matters).
#[inline]
fn padded_blocks(suffix_len: usize) -> usize {
    (suffix_len + 9).div_ceil(64)
}

/// Finishes one job on the scalar kernel — the differential oracle the
/// lane kernel must match bit-for-bit.
fn digest_scalar(job: &LaneJob<'_>) -> Digest {
    let mut h = Sha256::from_midstate(job.state, job.prefix_len);
    h.update(job.msg);
    h.finalize()
}

/// Digests a batch of independent jobs, preserving input order.
///
/// Jobs are grouped by padded block count so grouped lanes stay in
/// lockstep; each group drains through 8-wide lanes, with the ragged
/// remainder taking 4-wide (2–4 jobs, padding with dummy lanes),
/// 8-wide (5–7 jobs), or the scalar kernel (1 job). Under
/// [`scalar_sha_enabled`] every job runs scalar instead.
pub(crate) fn digest_jobs(jobs: &[LaneJob<'_>]) -> Vec<Digest> {
    if scalar_sha_enabled() {
        return jobs.iter().map(digest_scalar).collect();
    }
    let mut out = vec![Digest::ZERO; jobs.len()];
    let mut order: Vec<u32> = (0..jobs.len() as u32).collect();
    order.sort_by_key(|&i| padded_blocks(jobs[i as usize].msg.len()));
    let mut start = 0;
    while start < order.len() {
        let nblocks = padded_blocks(jobs[order[start] as usize].msg.len());
        let mut end = start + 1;
        while end < order.len() && padded_blocks(jobs[order[end] as usize].msg.len()) == nblocks {
            end += 1;
        }
        run_group(jobs, &order[start..end], nblocks, &mut out);
        start = end;
    }
    out
}

/// Drains one equal-block-count group through the widest fitting lanes.
fn run_group(jobs: &[LaneJob<'_>], idxs: &[u32], nblocks: usize, out: &mut [Digest]) {
    let mut rest = idxs;
    while rest.len() >= 8 {
        run_lanes::<8>(jobs, &rest[..8], nblocks, out);
        rest = &rest[8..];
    }
    match rest.len() {
        0 => {}
        1 => out[rest[0] as usize] = digest_scalar(&jobs[rest[0] as usize]),
        2..=4 => run_lanes::<4>(jobs, rest, nblocks, out),
        _ => run_lanes::<8>(jobs, rest, nblocks, out),
    }
}

static ZERO_BLOCK: [u8; 64] = [0u8; 64];

/// Returns block `blk` of a job's padded suffix: streamed by reference
/// from the message while full blocks last, then from the padded tail.
#[inline]
fn block_at<'b>(msg: &'b [u8], tail: &'b [u8; 128], blk: usize) -> &'b [u8; 64] {
    let pure = msg.len() / 64;
    if blk < pure {
        msg[blk * 64..(blk + 1) * 64]
            .try_into()
            .expect("64-byte block")
    } else {
        let off = (blk - pure) * 64;
        tail[off..off + 64].try_into().expect("64-byte block")
    }
}

/// Builds a job's padding tail (its final one or two blocks): leftover
/// message bytes, 0x80, zeros, 64-bit big-endian total bit length —
/// byte-identical to [`Sha256::finalize`]'s padding.
fn padded_tail(job: &LaneJob<'_>) -> [u8; 128] {
    let mut tail = [0u8; 128];
    let rem = job.msg.len() % 64;
    tail[..rem].copy_from_slice(&job.msg[job.msg.len() - rem..]);
    tail[rem] = 0x80;
    let tail_blocks = if rem < 56 { 1 } else { 2 };
    let total_bits = (job.prefix_len + job.msg.len() as u64).wrapping_mul(8);
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&total_bits.to_be_bytes());
    tail
}

/// Runs up to `L` same-length jobs through the `L`-lane kernel.
/// Unused lanes replay lane 0's blocks (their results are discarded);
/// only real lanes count as SHA blocks in telemetry.
fn run_lanes<const L: usize>(jobs: &[LaneJob<'_>], idxs: &[u32], nblocks: usize, out: &mut [Digest]) {
    debug_assert!(!idxs.is_empty() && idxs.len() <= L);
    let real = idxs.len();
    let lane_job = |lane: usize| &jobs[idxs[lane.min(real - 1)] as usize];
    let mut tails = [[0u8; 128]; L];
    let mut states = [[0u32; L]; 8];
    for lane in 0..L {
        let job = lane_job(lane);
        tails[lane] = padded_tail(job);
        for (word, s) in states.iter_mut().zip(job.state) {
            word[lane] = s;
        }
    }
    for blk in 0..nblocks {
        let mut blocks: [&[u8; 64]; L] = [&ZERO_BLOCK; L];
        for (lane, slot) in blocks.iter_mut().enumerate() {
            *slot = block_at(lane_job(lane).msg, &tails[lane], blk);
        }
        crate::telemetry::count_lane_compress(real as u64, L as u64);
        compress_wide::<L>(&mut states, &blocks);
    }
    for (lane, &idx) in idxs.iter().enumerate() {
        let mut bytes = [0u8; DIGEST_LEN];
        for (word, chunk) in states.iter().zip(bytes.chunks_exact_mut(4)) {
            chunk.copy_from_slice(&word[lane].to_be_bytes());
        }
        out[idx as usize] = Digest(bytes);
    }
}

/// Dispatches one `L`-lane compression to the widest engine the host
/// supports: on x86-64 with AVX2 (runtime-detected once, cached by
/// `std::arch`), the AVX2-recompiled copy of the portable kernel —
/// LLVM's cost model declines to vectorize the elementwise loops at
/// the baseline x86-64 feature set, but lowers the *same source* to
/// 256-bit SIMD when AVX2 is statically enabled (measured ~4–6× per
/// block on the `sha_lanes` bench). Everywhere else, the portable
/// build. Both are the same safe Rust function, so digests are
/// bit-identical by construction.
#[inline]
fn compress_wide<const L: usize>(state: &mut [[u32; L]; 8], blocks: &[&[u8; 64]; L]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the only requirement of the `#[target_feature]` copy
        // is that the host actually supports AVX2, which the detection
        // above just proved; the function body itself is safe code.
        #[allow(unsafe_code)]
        unsafe {
            return compress_wide_avx2::<L>(state, blocks);
        }
    }
    compress_wide_portable::<L>(state, blocks)
}

/// The portable lane kernel recompiled with AVX2 code generation (see
/// [`compress_wide`]; x86-64 only, called after runtime detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn compress_wide_avx2<const L: usize>(state: &mut [[u32; L]; 8], blocks: &[&[u8; 64]; L]) {
    compress_wide_portable::<L>(state, blocks)
}

/// One FIPS 180-4 compression round over `L` lanes at once.
///
/// Struct-of-arrays: every round variable is a `[u32; L]` and every
/// operation an elementwise loop, so rustc lowers the body to SIMD on
/// targets with 128-bit (`L = 4`) or 256-bit (`L = 8`) vector units.
/// Always called through [`compress_wide`], which picks the widest
/// recompilation of this same function the host supports.
#[inline(always)]
fn compress_wide_portable<const L: usize>(state: &mut [[u32; L]; 8], blocks: &[&[u8; 64]; L]) {
    let mut w = [[0u32; L]; 64];
    for (t, word) in w.iter_mut().take(16).enumerate() {
        for (lane, slot) in word.iter_mut().enumerate() {
            *slot = u32::from_be_bytes(blocks[lane][4 * t..4 * t + 4].try_into().expect("4 bytes"));
        }
    }
    for t in 16..64 {
        let mut wt = [0u32; L];
        for (lane, slot) in wt.iter_mut().enumerate() {
            let w15 = w[t - 15][lane];
            let w2 = w[t - 2][lane];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            *slot = w[t - 16][lane]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7][lane])
                .wrapping_add(s1);
        }
        w[t] = wt;
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for (kt, wt) in K.iter().zip(w.iter()) {
        let mut t1 = [0u32; L];
        let mut t2 = [0u32; L];
        for lane in 0..L {
            let s1 = e[lane].rotate_right(6) ^ e[lane].rotate_right(11) ^ e[lane].rotate_right(25);
            let ch = (e[lane] & f[lane]) ^ (!e[lane] & g[lane]);
            t1[lane] = h[lane]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(*kt)
                .wrapping_add(wt[lane]);
            let s0 = a[lane].rotate_right(2) ^ a[lane].rotate_right(13) ^ a[lane].rotate_right(22);
            let maj = (a[lane] & b[lane]) ^ (a[lane] & c[lane]) ^ (b[lane] & c[lane]);
            t2[lane] = s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        e = d;
        for lane in 0..L {
            e[lane] = e[lane].wrapping_add(t1[lane]);
        }
        d = c;
        c = b;
        b = a;
        a = t1;
        for lane in 0..L {
            a[lane] = a[lane].wrapping_add(t2[lane]);
        }
    }
    let sums = [a, b, c, d, e, f, g, h];
    for (word, sum) in state.iter_mut().zip(sums) {
        for lane in 0..L {
            word[lane] = word[lane].wrapping_add(sum[lane]);
        }
    }
}

/// Digests each input independently, lane-batched, preserving input
/// order. Bit-identical to mapping [`super::sha256`] over `inputs`.
pub fn sha256_many(inputs: &[&[u8]]) -> Vec<Digest> {
    let jobs: Vec<LaneJob<'_>> = inputs
        .iter()
        .map(|msg| LaneJob {
            state: H0,
            prefix_len: 0,
            msg,
        })
        .collect();
    digest_jobs(&jobs)
}

/// Serializes tests that flip the process-wide scalar/multilane knob
/// or assert lane telemetry, so parallel test threads can't interleave.
#[cfg(test)]
pub(crate) fn test_knob_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::super::sha256;
    use super::*;
    use crate::telemetry::HotpathSnapshot;

    /// Deterministic filler so tests don't need an RNG.
    fn patterned(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn matches_scalar_across_lengths_and_batch_sizes() {
        // Lengths straddle every padding boundary; batch sizes cover
        // scalar (1), exact 4- and 8-lane fits, and ragged remainders.
        let lengths = [0usize, 1, 31, 32, 55, 56, 63, 64, 65, 119, 120, 128, 200, 1000];
        for batch in 1..=19usize {
            let msgs: Vec<Vec<u8>> = (0..batch)
                .map(|i| patterned(lengths[i % lengths.len()], i as u8))
                .collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();
            let got = sha256_many(&refs);
            for (msg, digest) in msgs.iter().zip(&got) {
                assert_eq!(*digest, sha256(msg), "batch {batch} len {}", msg.len());
            }
        }
    }

    #[test]
    fn midstate_jobs_match_resumed_scalar() {
        let prefix = patterned(128, 7);
        let mut pre = Sha256::new();
        pre.update(&prefix);
        let mid = pre.midstate();
        let suffixes: Vec<Vec<u8>> = (0..5).map(|i| patterned(40 + i, i as u8)).collect();
        let jobs: Vec<LaneJob<'_>> = suffixes
            .iter()
            .map(|s| LaneJob {
                state: mid,
                prefix_len: 128,
                msg: s,
            })
            .collect();
        let got = digest_jobs(&jobs);
        for (suffix, digest) in suffixes.iter().zip(&got) {
            let mut h = Sha256::from_midstate(mid, 128);
            h.update(suffix);
            assert_eq!(*digest, h.finalize());
        }
    }

    #[test]
    fn scalar_knob_forces_scalar_engine() {
        let _guard = test_knob_lock();
        let initial = scalar_sha_enabled();
        let msgs: Vec<Vec<u8>> = (0..8).map(|i| patterned(32, i)).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();
        set_scalar_sha(true);
        let before = HotpathSnapshot::now();
        let scalar_out = sha256_many(&refs);
        let scalar_delta = HotpathSnapshot::now().delta_since(&before);
        assert_eq!(scalar_delta.lane_slots, 0, "scalar mode must not use lanes");
        assert_eq!(scalar_delta.sha_blocks, 8);
        set_scalar_sha(false);
        let before = HotpathSnapshot::now();
        let lane_out = sha256_many(&refs);
        let lane_delta = HotpathSnapshot::now().delta_since(&before);
        assert_eq!(scalar_out, lane_out);
        assert_eq!(lane_delta.sha_blocks, 8, "real blocks only");
        assert_eq!(lane_delta.lane_blocks, 8);
        assert_eq!(lane_delta.lane_slots, 8, "8 single-block jobs fill one 8-wide step");
        set_scalar_sha(initial);
    }

    #[test]
    fn ragged_batch_counts_dummy_slots_not_blocks() {
        let _guard = test_knob_lock();
        let initial = scalar_sha_enabled();
        set_scalar_sha(false);
        // 6 single-block jobs: one 8-wide step with 2 dummy lanes.
        let msgs: Vec<Vec<u8>> = (0..6).map(|i| patterned(20, i)).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();
        let before = HotpathSnapshot::now();
        let got = sha256_many(&refs);
        let delta = HotpathSnapshot::now().delta_since(&before);
        assert_eq!(delta.sha_blocks, 6);
        assert_eq!(delta.lane_blocks, 6);
        assert_eq!(delta.lane_slots, 8);
        for (msg, digest) in msgs.iter().zip(&got) {
            assert_eq!(*digest, sha256(msg));
        }
        set_scalar_sha(initial);
    }

    #[test]
    fn mixed_block_counts_group_correctly() {
        // 3 one-block + 9 two-block jobs interleaved: grouping must
        // keep outputs in input order.
        let msgs: Vec<Vec<u8>> = (0..12)
            .map(|i| patterned(if i % 4 == 0 { 16 } else { 90 }, i as u8))
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();
        let got = sha256_many(&refs);
        for (msg, digest) in msgs.iter().zip(&got) {
            assert_eq!(*digest, sha256(msg));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(sha256_many(&[]).is_empty());
    }
}
