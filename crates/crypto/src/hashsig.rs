//! Hash-based few-time signatures (Lamport one-time signatures under a
//! Merkle tree).
//!
//! The paper signs each verification-key array with RSA during key
//! exchange. The reproduction's dependency set has no bignum arithmetic,
//! and the evaluation only needs two properties from that signature:
//! (1) unforgeability, so a Byzantine process cannot distribute bogus
//! verification keys on behalf of a correct one, and (2) a *high
//! computational cost* relative to plain hashing, which is what makes
//! ABBA's per-message public-key cryptography expensive. Property (1) is
//! provided for real by this module; property (2) is charged explicitly by
//! [`crate::cost::CostModel`] wherever a nominally-RSA operation happens.
//!
//! The construction is textbook: a Lamport one-time signature signs the
//! 256 bits of `SHA-256(message)` by revealing one of two pre-committed
//! secrets per bit, and a Merkle tree over `2^height` one-time leaf keys
//! turns that into a few-time scheme with a single 32-byte public key (the
//! root).

use crate::sha256::multilane::sha256_many;
use crate::sha256::{sha256, sha256_domain, Digest, DIGEST_LEN};
use std::fmt;

/// Number of message bits a Lamport leaf signs (SHA-256 output).
const MSG_BITS: usize = 256;

/// Domain tag of a Lamport secret derivation.
const SECRET_TAG: &[u8] = b"turquois-hashsig-secret";
/// Domain tag of a leaf commitment.
const LEAF_TAG: &[u8] = b"turquois-hashsig-leaf";
/// Domain tag of an interior Merkle node.
const NODE_TAG: &[u8] = b"turquois-hashsig-node";

/// Byte length of a secret-derivation preimage:
/// `tag ‖ seed ‖ leaf ‖ bit_idx ‖ bit`.
const SECRET_PREIMAGE_LEN: usize = SECRET_TAG.len() + 8 + 8 + 4 + 1;
/// Byte length of a node preimage: `tag ‖ left ‖ right`.
const NODE_PREIMAGE_LEN: usize = NODE_TAG.len() + 2 * DIGEST_LEN;

/// A long-term hash-based public key: the Merkle root over the one-time
/// leaf keys.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub struct PublicKey {
    root: Digest,
    height: u32,
}

/// Errors from [`Keypair::sign`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum SignError {
    /// All `2^height` one-time leaves have been used.
    LeavesExhausted {
        /// Total number of leaves the keypair was generated with.
        capacity: usize,
    },
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::LeavesExhausted { capacity } => {
                write!(f, "all {capacity} one-time signature leaves used")
            }
        }
    }
}

impl std::error::Error for SignError {}

/// A Merkle–Lamport signature.
///
/// Contains the revealed secrets (one per message bit), the hashes of the
/// unrevealed secrets (needed to recompute the leaf hash), the leaf index,
/// and the Merkle authentication path to the root.
#[derive(Clone)]
pub struct Signature {
    leaf_index: usize,
    revealed: Vec<[u8; DIGEST_LEN]>,
    unrevealed_hashes: Vec<Digest>,
    auth_path: Vec<Digest>,
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signature")
            .field("leaf_index", &self.leaf_index)
            .field("auth_path_len", &self.auth_path.len())
            .finish_non_exhaustive()
    }
}

impl Signature {
    /// The index of the one-time leaf that produced this signature.
    pub fn leaf_index(&self) -> usize {
        self.leaf_index
    }

    /// Approximate wire size in bytes, for the simulator's payload model.
    pub fn wire_size(&self) -> usize {
        8 + (self.revealed.len() + self.unrevealed_hashes.len() + self.auth_path.len()) * DIGEST_LEN
    }
}

/// A few-time hash-based signing key: `2^height` Lamport one-time keys
/// under a Merkle tree.
///
/// # Example
///
/// ```
/// use turquois_crypto::hashsig::Keypair;
/// let mut kp = Keypair::generate(2, 7); // 4 one-time leaves
/// let sig = kp.sign(b"verification keys for epoch 1")?;
/// assert!(kp.public_key().verify(b"verification keys for epoch 1", &sig));
/// assert!(!kp.public_key().verify(b"something else", &sig));
/// # Ok::<(), turquois_crypto::hashsig::SignError>(())
/// ```
pub struct Keypair {
    seed: u64,
    height: u32,
    /// Full Merkle tree, `tree[0]` = leaf hashes, `tree[height]` = [root].
    tree: Vec<Vec<Digest>>,
    next_leaf: usize,
    public: PublicKey,
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keypair")
            .field("height", &self.height)
            .field("next_leaf", &self.next_leaf)
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl Keypair {
    /// Generates a keypair with `2^height` one-time leaves, derived
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (65 536 leaves ≈ the practical ceiling for
    /// eager generation).
    pub fn generate(height: u32, seed: u64) -> Self {
        assert!(height <= 16, "height {height} too large for eager keygen");
        let leaves = 1usize << height;
        let mut level: Vec<Digest> = (0..leaves).map(|i| leaf_hash(seed, i)).collect();
        let mut tree = vec![level.clone()];
        for _ in 0..height {
            // The nodes of one level are independent: lane-batch them.
            let preimages: Vec<[u8; NODE_PREIMAGE_LEN]> = level
                .chunks_exact(2)
                .map(|pair| node_preimage(&pair[0], &pair[1]))
                .collect();
            let refs: Vec<&[u8]> = preimages.iter().map(|p| &p[..]).collect();
            let next = sha256_many(&refs);
            tree.push(next.clone());
            level = next;
        }
        let root = level[0];
        Keypair {
            seed,
            height,
            tree,
            next_leaf: 0,
            public: PublicKey { root, height },
        }
    }

    /// The verifying half of this keypair.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Number of signatures still available.
    pub fn remaining(&self) -> usize {
        (1usize << self.height) - self.next_leaf
    }

    /// Signs `message`, consuming the next one-time leaf.
    ///
    /// # Errors
    ///
    /// Returns [`SignError::LeavesExhausted`] once all `2^height` leaves
    /// are used; never reuses a leaf (reuse would leak both secrets of a
    /// bit position and break unforgeability).
    pub fn sign(&mut self, message: &[u8]) -> Result<Signature, SignError> {
        let capacity = 1usize << self.height;
        if self.next_leaf >= capacity {
            return Err(SignError::LeavesExhausted { capacity });
        }
        let leaf = self.next_leaf;
        self.next_leaf += 1;

        let msg_digest = sha256(message);
        // Re-derive both secrets of every bit position in one batch
        // (2·MSG_BITS independent single-block digests), then hash the
        // unrevealed half in a second batch.
        let secrets = leaf_secrets(self.seed, leaf);
        let mut revealed = Vec::with_capacity(MSG_BITS);
        let mut others = Vec::with_capacity(MSG_BITS);
        for bit_idx in 0..MSG_BITS {
            let bit = digest_bit(&msg_digest, bit_idx);
            revealed.push(secrets[2 * bit_idx + bit as usize].0);
            others.push(secrets[2 * bit_idx + !bit as usize]);
        }
        let other_refs: Vec<&[u8]> = others.iter().map(Digest::as_bytes).collect();
        let unrevealed_hashes = sha256_many(&other_refs);

        let mut auth_path = Vec::with_capacity(self.height as usize);
        let mut idx = leaf;
        for depth in 0..self.height as usize {
            auth_path.push(self.tree[depth][idx ^ 1]);
            idx >>= 1;
        }

        Ok(Signature {
            leaf_index: leaf,
            revealed,
            unrevealed_hashes,
            auth_path,
        })
    }
}

impl PublicKey {
    /// The Merkle root.
    pub fn root(&self) -> Digest {
        self.root
    }

    /// Structural checks that must pass before any hashing work is
    /// allocated: vector lengths and the leaf-index bound. Shared by
    /// the scalar and lane-batched verify paths so both reject the same
    /// malformed signatures at the same point.
    fn well_formed(&self, sig: &Signature) -> bool {
        sig.revealed.len() == MSG_BITS
            && sig.unrevealed_hashes.len() == MSG_BITS
            && sig.auth_path.len() == self.height as usize
            && sig.leaf_index < (1usize << self.height)
    }

    /// Verifies `sig` over `message`.
    ///
    /// The MSG_BITS revealed secrets are independent single-block
    /// digests, so they run through the multi-lane kernel in one batch
    /// (bit-identical to hashing each in turn — `TURQUOIS_SCALAR_SHA=1`
    /// forces the scalar engine as the differential oracle).
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        if !self.well_formed(sig) {
            return false;
        }
        let msg_digest = sha256(message);
        // Reconstruct the leaf's Lamport public key from revealed secrets
        // (hashed) and the provided unrevealed hashes, then hash to the
        // leaf commitment.
        let revealed_refs: Vec<&[u8]> = sig.revealed.iter().map(|r| &r[..]).collect();
        let revealed_hashes = sha256_many(&revealed_refs);
        let mut leaf_hasher = crate::sha256::Sha256::new();
        leaf_hasher.update(LEAF_TAG);
        for (bit_idx, revealed_hash) in revealed_hashes.iter().enumerate() {
            let bit = digest_bit(&msg_digest, bit_idx);
            let (h0, h1) = if bit {
                (sig.unrevealed_hashes[bit_idx], *revealed_hash)
            } else {
                (*revealed_hash, sig.unrevealed_hashes[bit_idx])
            };
            leaf_hasher.update(h0.as_bytes());
            leaf_hasher.update(h1.as_bytes());
        }
        let mut node = leaf_hasher.finalize();
        let mut idx = sig.leaf_index;
        for sibling in &sig.auth_path {
            node = if idx & 1 == 0 {
                node_hash(&node, sibling)
            } else {
                node_hash(sibling, &node)
            };
            idx >>= 1;
        }
        node == self.root
    }
}

fn digest_bit(d: &Digest, bit_idx: usize) -> bool {
    (d.0[bit_idx / 8] >> (7 - bit_idx % 8)) & 1 == 1
}

/// Builds the derivation preimage of one Lamport secret. Both engines
/// hash exactly these bytes — the scalar path via [`sha256`], the
/// batch path via [`sha256_many`] — so the digests agree by
/// construction.
fn secret_preimage(seed: u64, leaf: usize, bit_idx: usize, bit: bool) -> [u8; SECRET_PREIMAGE_LEN] {
    let mut p = [0u8; SECRET_PREIMAGE_LEN];
    let t = SECRET_TAG.len();
    p[..t].copy_from_slice(SECRET_TAG);
    p[t..t + 8].copy_from_slice(&seed.to_be_bytes());
    p[t + 8..t + 16].copy_from_slice(&(leaf as u64).to_be_bytes());
    p[t + 16..t + 20].copy_from_slice(&(bit_idx as u32).to_be_bytes());
    p[t + 20] = bit as u8;
    p
}

/// Derives both secrets of every bit position of one leaf
/// (`2·MSG_BITS` digests, ordered `[bit 0: false, true, bit 1: …]`) in
/// a single lane batch.
fn leaf_secrets(seed: u64, leaf: usize) -> Vec<Digest> {
    let preimages: Vec<[u8; SECRET_PREIMAGE_LEN]> = (0..MSG_BITS)
        .flat_map(|bit_idx| [false, true].map(|bit| secret_preimage(seed, leaf, bit_idx, bit)))
        .collect();
    let refs: Vec<&[u8]> = preimages.iter().map(|p| &p[..]).collect();
    sha256_many(&refs)
}

fn leaf_hash(seed: u64, leaf: usize) -> Digest {
    let secrets = leaf_secrets(seed, leaf);
    let secret_refs: Vec<&[u8]> = secrets.iter().map(Digest::as_bytes).collect();
    let secret_hashes = sha256_many(&secret_refs);
    let mut h = crate::sha256::Sha256::new();
    h.update(LEAF_TAG);
    for hash in &secret_hashes {
        h.update(hash.as_bytes());
    }
    h.finalize()
}

/// Builds the preimage of one interior Merkle node, for the lane-batched
/// per-level keygen pass.
fn node_preimage(left: &Digest, right: &Digest) -> [u8; NODE_PREIMAGE_LEN] {
    let mut p = [0u8; NODE_PREIMAGE_LEN];
    let t = NODE_TAG.len();
    p[..t].copy_from_slice(NODE_TAG);
    p[t..t + DIGEST_LEN].copy_from_slice(left.as_bytes());
    p[t + DIGEST_LEN..].copy_from_slice(right.as_bytes());
    p
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_domain(NODE_TAG, &[left.as_bytes(), right.as_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let mut kp = Keypair::generate(2, 1);
        let sig = kp.sign(b"hello").expect("leaves available");
        assert!(kp.public_key().verify(b"hello", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut kp = Keypair::generate(2, 1);
        let sig = kp.sign(b"hello").expect("leaves available");
        assert!(!kp.public_key().verify(b"hellp", &sig));
        assert!(!kp.public_key().verify(b"", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut kp = Keypair::generate(2, 1);
        let other = Keypair::generate(2, 2);
        let sig = kp.sign(b"hello").expect("leaves available");
        assert!(!other.public_key().verify(b"hello", &sig));
    }

    #[test]
    fn all_leaves_usable_then_exhausted() {
        let mut kp = Keypair::generate(2, 9);
        for i in 0..4 {
            let msg = format!("epoch {i}");
            let sig = kp.sign(msg.as_bytes()).expect("leaf available");
            assert_eq!(sig.leaf_index(), i);
            assert!(kp.public_key().verify(msg.as_bytes(), &sig));
        }
        assert_eq!(kp.remaining(), 0);
        assert!(matches!(
            kp.sign(b"one too many"),
            Err(SignError::LeavesExhausted { capacity: 4 })
        ));
    }

    #[test]
    fn height_zero_single_use() {
        let mut kp = Keypair::generate(0, 5);
        let sig = kp.sign(b"only").expect("one leaf");
        assert!(kp.public_key().verify(b"only", &sig));
        assert!(kp.sign(b"again").is_err());
    }

    #[test]
    fn tampered_revealed_secret_rejected() {
        let mut kp = Keypair::generate(1, 3);
        let mut sig = kp.sign(b"msg").expect("leaves available");
        sig.revealed[17][0] ^= 1;
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_auth_path_rejected() {
        let mut kp = Keypair::generate(3, 3);
        let mut sig = kp.sign(b"msg").expect("leaves available");
        sig.auth_path[1].0[5] ^= 0x80;
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn wrong_leaf_index_rejected() {
        let mut kp = Keypair::generate(2, 3);
        let mut sig = kp.sign(b"msg").expect("leaves available");
        sig.leaf_index = 2;
        assert!(!kp.public_key().verify(b"msg", &sig));
        sig.leaf_index = 100;
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn truncated_signature_rejected() {
        let mut kp = Keypair::generate(2, 3);
        let mut sig = kp.sign(b"msg").expect("leaves available");
        sig.revealed.pop();
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn signature_wire_size_reasonable() {
        let mut kp = Keypair::generate(4, 3);
        let sig = kp.sign(b"msg").expect("leaves available");
        // 256 revealed + 256 unrevealed hashes + 4 path nodes, 32 B each.
        assert_eq!(sig.wire_size(), 8 + (256 + 256 + 4) * 32);
    }

    #[test]
    fn deterministic_public_key() {
        let a = Keypair::generate(3, 42);
        let b = Keypair::generate(3, 42);
        assert_eq!(a.public_key(), b.public_key());
    }

    #[test]
    fn scalar_and_batched_engines_agree_end_to_end() {
        use crate::sha256::multilane::{scalar_sha_enabled, set_scalar_sha, test_knob_lock};
        let _guard = test_knob_lock();
        let initial = scalar_sha_enabled();
        set_scalar_sha(true);
        let mut scalar_kp = Keypair::generate(2, 42);
        let scalar_sig = scalar_kp.sign(b"cross-engine").expect("leaf");
        set_scalar_sha(false);
        let mut lane_kp = Keypair::generate(2, 42);
        let lane_sig = lane_kp.sign(b"cross-engine").expect("leaf");
        // Keys, signatures, and verdicts must not depend on the engine.
        assert_eq!(scalar_kp.public_key(), lane_kp.public_key());
        assert_eq!(scalar_sig.revealed, lane_sig.revealed);
        assert_eq!(scalar_sig.unrevealed_hashes, lane_sig.unrevealed_hashes);
        assert_eq!(scalar_sig.auth_path, lane_sig.auth_path);
        assert!(lane_kp.public_key().verify(b"cross-engine", &scalar_sig));
        set_scalar_sha(true);
        assert!(lane_kp.public_key().verify(b"cross-engine", &lane_sig));
        set_scalar_sha(initial);
    }

    #[test]
    fn scalar_and_batched_reject_same_malformed_signatures() {
        use crate::sha256::multilane::{scalar_sha_enabled, set_scalar_sha, test_knob_lock};
        let _guard = test_knob_lock();
        let initial = scalar_sha_enabled();
        set_scalar_sha(false);
        let mut kp = Keypair::generate(2, 11);
        let good = kp.sign(b"msg").expect("leaf");
        let mut variants: Vec<(&str, Signature)> = Vec::new();
        let mut s = good.clone();
        s.leaf_index = 1 << 30;
        variants.push(("oversized leaf_index", s));
        let mut s = good.clone();
        s.revealed.pop();
        variants.push(("truncated revealed", s));
        let mut s = good.clone();
        s.unrevealed_hashes.push(Digest::ZERO);
        variants.push(("oversized unrevealed", s));
        let mut s = good.clone();
        s.auth_path.clear();
        variants.push(("missing auth path", s));
        let mut s = good.clone();
        s.revealed[3][0] ^= 1;
        variants.push(("tampered secret", s));
        let mut s = good.clone();
        s.auth_path[0].0[0] ^= 1;
        variants.push(("tampered path", s));
        for (label, sig) in &variants {
            set_scalar_sha(true);
            let scalar = kp.public_key().verify(b"msg", sig);
            set_scalar_sha(false);
            let batched = kp.public_key().verify(b"msg", sig);
            assert_eq!(scalar, batched, "engines disagree on {label}");
            assert!(!batched, "{label} must be rejected");
        }
        set_scalar_sha(true);
        assert!(kp.public_key().verify(b"msg", &good), "scalar accepts good");
        set_scalar_sha(false);
        assert!(kp.public_key().verify(b"msg", &good), "batched accepts good");
        set_scalar_sha(initial);
    }
}
