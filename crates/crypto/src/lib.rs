//! Cryptographic substrate for the Turquois reproduction.
//!
//! The Turquois protocol (Moniz, Neves, Correia — DSN 2010) deliberately
//! avoids public-key cryptography during normal operation. Its message
//! authentication is built from a one-time *hash-based* signature scheme
//! (paper §6.1): for every phase `φ` and proposal value `v ∈ {0, 1, ⊥}` a
//! process pre-generates a random secret key `SK[φ][v]` and publishes the
//! verification key `VK[φ][v] = H(SK[φ][v])`. Revealing `SK[φ][v]`
//! authenticates exactly the pair `(φ, v)` — nothing else — and costs one
//! hash to verify.
//!
//! This crate provides every primitive that scheme and the two baseline
//! protocols (Bracha, ABBA) need:
//!
//! * [`mod@sha256`] — SHA-256 implemented from scratch (the allowed dependency
//!   set contains no cryptography crate), validated against FIPS 180-4 test
//!   vectors.
//! * [`hmac`] — HMAC-SHA256, used to emulate the IPSec AH per-link
//!   authentication that the paper's Bracha implementation relies on.
//! * [`otss`] — the one-time signature scheme of paper §6.1.
//! * [`hashsig`] — a Lamport-style hash-based signature, substituting for
//!   the RSA signature the paper uses to sign verification-key arrays during
//!   key exchange (see `DESIGN.md` §4 for the substitution argument).
//! * [`threshold`] — dealer-based simulated threshold signatures and a
//!   shared coin with the interface and adversarial properties ABBA
//!   requires.
//! * [`cost`] — a calibrated CPU cost model so the discrete-event simulator
//!   can charge realistic time for cryptographic work (RSA on a 600 MHz
//!   Pentium III is *slow*; that asymmetry is a pillar of the paper's
//!   evaluation).
//! * [`memo`] — a bounded, deterministic memo cache so re-delivered
//!   signatures cost a map probe instead of a SHA-256 chain in *host*
//!   time (simulated cost is still charged per logical verification).
//! * [`telemetry`] — thread-local counters for real SHA-256 blocks,
//!   verify calls, and cache hits/misses, plus the memo on/off switch.
//!
//! # Example
//!
//! ```
//! use turquois_crypto::otss::{KeyPairArray, Value};
//!
//! // A process pre-generates keys for 30 phases.
//! let keys = KeyPairArray::generate(7, 30, 42);
//! let sig = keys.sign(3, Value::One).expect("phase in range");
//! assert!(keys.verification_keys().verify(3, Value::One, &sig));
//! assert!(!keys.verification_keys().verify(3, Value::Zero, &sig));
//! ```

// `deny`, not `forbid`: `sha256::multilane` carries the crate's single
// sanctioned `unsafe` — calling the AVX2-recompiled copy of the (fully
// safe, portable) lane kernel after `is_x86_feature_detected!` proves
// the host supports it. Everything else stays unsafe-free; new
// exceptions need the same justification and a scoped `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod hashsig;
pub mod hmac;
pub mod memo;
pub mod otss;
pub mod sha256;
pub mod telemetry;
pub mod threshold;

pub use cost::CostModel;
pub use sha256::{sha256, Digest, Sha256};
