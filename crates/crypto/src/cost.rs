//! Calibrated CPU cost model for cryptographic operations.
//!
//! The paper's evaluation ran on 600 MHz Pentium III nodes, where the
//! asymmetry between hashing and public-key cryptography is enormous —
//! that asymmetry is one of the two pillars of Turquois's win (the other
//! being the broadcast medium). The discrete-event simulator cannot
//! measure host CPU time (it must stay deterministic), so protocol
//! adapters charge each cryptographic operation to the node's virtual
//! clock through this model.
//!
//! Default calibration (`CostModel::pentium3_600`) uses published
//! Crypto++/OpenSSL-era figures for that hardware class:
//!
//! * SHA-256: ≈ 20 MB/s → ~50 ns per byte, plus per-call overhead;
//! * RSA-1024 sign (CRT): ≈ 7.9 ms; verify (e = 65537): ≈ 0.4 ms;
//! * threshold-RSA share operations cost about one RSA private-key
//!   exponentiation each, and combination costs roughly one per share.
//!
//! Absolute values are configurable; the *experiments record their model*
//! so every table is reproducible.

use std::time::Duration;

/// Nanosecond costs for each operation class.
///
/// All constructors produce fully-populated models; fields are public so
/// ablation experiments can tweak a single cost.
///
/// # Example
///
/// ```
/// use turquois_crypto::cost::CostModel;
/// let m = CostModel::pentium3_600();
/// // Verifying a one-time signature is one hash of a 32-byte secret…
/// let otss = m.otss_verify(32);
/// // …while an RSA verify is three orders of magnitude heavier.
/// assert!(m.rsa_verify() > otss * 100);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed overhead per hash invocation, in ns.
    pub hash_call_ns: u64,
    /// Hashing throughput cost, in ns per byte.
    pub hash_per_byte_ns: u64,
    /// RSA private-key operation (sign), in ns.
    pub rsa_sign_ns: u64,
    /// RSA public-key operation (verify), in ns.
    pub rsa_verify_ns: u64,
    /// Threshold signature/coin share generation, in ns.
    pub threshold_share_ns: u64,
    /// Threshold share verification, in ns.
    pub threshold_share_verify_ns: u64,
    /// Threshold combination cost **per share combined**, in ns.
    pub threshold_combine_per_share_ns: u64,
}

impl CostModel {
    /// Calibration for the paper's 600 MHz Pentium III testbed.
    pub fn pentium3_600() -> Self {
        CostModel {
            hash_call_ns: 1_000,
            hash_per_byte_ns: 50,
            rsa_sign_ns: 7_900_000,
            rsa_verify_ns: 400_000,
            threshold_share_ns: 7_900_000,
            threshold_share_verify_ns: 800_000,
            threshold_combine_per_share_ns: 500_000,
        }
    }

    /// A model where every operation is free.
    ///
    /// Useful for isolating network effects in ablation experiments.
    pub fn free() -> Self {
        CostModel {
            hash_call_ns: 0,
            hash_per_byte_ns: 0,
            rsa_sign_ns: 0,
            rsa_verify_ns: 0,
            threshold_share_ns: 0,
            threshold_share_verify_ns: 0,
            threshold_combine_per_share_ns: 0,
        }
    }

    /// Calibration for modern commodity hardware (≈ 2 GB/s hashing,
    /// sub-millisecond RSA-2048); used by the ablation that asks whether
    /// Turquois's crypto advantage survives faster CPUs.
    pub fn modern() -> Self {
        CostModel {
            hash_call_ns: 100,
            hash_per_byte_ns: 1,
            rsa_sign_ns: 600_000,
            rsa_verify_ns: 20_000,
            threshold_share_ns: 600_000,
            threshold_share_verify_ns: 40_000,
            threshold_combine_per_share_ns: 25_000,
        }
    }

    /// Cost of hashing `bytes` bytes.
    pub fn hash(&self, bytes: usize) -> Duration {
        Duration::from_nanos(self.hash_call_ns + self.hash_per_byte_ns * bytes as u64)
    }

    /// Cost of an HMAC over `bytes` bytes (two hash passes).
    pub fn hmac(&self, bytes: usize) -> Duration {
        Duration::from_nanos(2 * self.hash_call_ns + self.hash_per_byte_ns * (bytes as u64 + 96))
    }

    /// Cost of producing a one-time signature (a table lookup — charged as
    /// one hash-call overhead).
    pub fn otss_sign(&self) -> Duration {
        Duration::from_nanos(self.hash_call_ns)
    }

    /// Cost of verifying a one-time signature: one hash of the revealed
    /// `secret_len`-byte secret.
    pub fn otss_verify(&self, secret_len: usize) -> Duration {
        self.hash(secret_len)
    }

    /// Cost of an RSA signature.
    pub fn rsa_sign(&self) -> Duration {
        Duration::from_nanos(self.rsa_sign_ns)
    }

    /// Cost of an RSA verification.
    pub fn rsa_verify(&self) -> Duration {
        Duration::from_nanos(self.rsa_verify_ns)
    }

    /// Cost of generating one threshold (signature or coin) share.
    pub fn threshold_share(&self) -> Duration {
        Duration::from_nanos(self.threshold_share_ns)
    }

    /// Cost of verifying one threshold share.
    pub fn threshold_share_verify(&self) -> Duration {
        Duration::from_nanos(self.threshold_share_verify_ns)
    }

    /// Cost of combining `shares` threshold shares.
    pub fn threshold_combine(&self, shares: usize) -> Duration {
        Duration::from_nanos(self.threshold_combine_per_share_ns * shares as u64)
    }
}

impl Default for CostModel {
    /// Defaults to the paper's hardware calibration.
    fn default() -> Self {
        Self::pentium3_600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_pentium3() {
        assert_eq!(CostModel::default(), CostModel::pentium3_600());
    }

    #[test]
    fn rsa_dwarfs_hashing_on_pentium3() {
        let m = CostModel::pentium3_600();
        // A 100-byte protocol message: hash-based auth verification…
        let otss = m.otss_verify(32);
        // …must be at least 3 orders of magnitude cheaper than RSA sign.
        assert!(m.rsa_sign() >= otss * 1000, "{:?} vs {otss:?}", m.rsa_sign());
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.hash(1_000_000), Duration::ZERO);
        assert_eq!(m.rsa_sign(), Duration::ZERO);
        assert_eq!(m.threshold_combine(100), Duration::ZERO);
    }

    #[test]
    fn hash_cost_scales_with_length() {
        let m = CostModel::pentium3_600();
        assert!(m.hash(2000) > m.hash(100));
        assert_eq!(
            m.hash(100),
            Duration::from_nanos(m.hash_call_ns + 100 * m.hash_per_byte_ns)
        );
    }

    #[test]
    fn combine_scales_with_share_count() {
        let m = CostModel::pentium3_600();
        assert_eq!(m.threshold_combine(4) * 2, m.threshold_combine(8));
    }

    #[test]
    fn modern_still_asymmetric() {
        let m = CostModel::modern();
        assert!(m.rsa_sign() > m.otss_verify(32) * 100);
    }
}
