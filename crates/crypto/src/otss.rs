//! One-time hash-based message signatures (paper §6.1).
//!
//! Turquois authenticates the pair `(φ, v)` of every protocol message with
//! a scheme the paper claims is novel for agreement protocols: for each
//! phase `φ` and each possible proposal value `v ∈ {0, 1, ⊥}`, process
//! `p_i` pre-generates a random bit string `SK_i[φ][v]` (the secret key)
//! and publishes `VK_i[φ][v] = H(SK_i[φ][v])` (the verification key).
//! Broadcasting a message `⟨i, φ, v, status⟩` attaches `SK_i[φ][v]`;
//! receivers verify with a single hash. Because each secret authenticates
//! exactly one `(φ, v)` pair, revealing it cannot be abused to forge any
//! other message — and because the protocol never signs two different
//! values in the same phase, one-time use is inherent.
//!
//! Per the paper's footnote 3, `SK[φ][⊥]` is only generated when
//! `φ mod 3 = 0` (DECIDE phases), since `⊥` is a legal proposal value only
//! there.
//!
//! The verification-key arrays themselves must be distributed
//! authentically; the paper signs them with RSA over an out-of-band
//! channel. Here they are signed with the hash-based [`crate::hashsig`]
//! scheme (see `DESIGN.md` §4 for the substitution argument).

use crate::hashsig;
use crate::sha256::multilane::sha256_many;
use crate::sha256::{Digest, DIGEST_LEN};
use std::fmt;

/// Domain tag of a one-time secret-key derivation.
const SECRET_TAG: &[u8] = b"turquois-otss-v1";

/// Byte length of a derivation preimage:
/// `tag ‖ seed ‖ process ‖ phase ‖ value`.
const SECRET_PREIMAGE_LEN: usize = SECRET_TAG.len() + 8 + 8 + 4 + 1;

/// A proposal value as seen by the signature scheme: `0`, `1`, or `⊥`.
///
/// `⊥` ("bottom") expresses lack of preference and is a legal proposal
/// value only in DECIDE phases (`φ mod 3 = 0`).
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub enum Value {
    /// Binary zero.
    Zero,
    /// Binary one.
    One,
    /// No preference (`⊥`).
    Bot,
}

impl Value {
    /// All three values, in index order.
    pub const ALL: [Value; 3] = [Value::Zero, Value::One, Value::Bot];

    /// Index of this value in a 3-slot key row.
    pub fn index(self) -> usize {
        match self {
            Value::Zero => 0,
            Value::One => 1,
            Value::Bot => 2,
        }
    }

    /// Converts a binary `bool` proposal to a [`Value`].
    pub fn from_bit(bit: bool) -> Value {
        if bit {
            Value::One
        } else {
            Value::Zero
        }
    }

    /// Returns the binary value, or `None` for `⊥`.
    pub fn as_bit(self) -> Option<bool> {
        match self {
            Value::Zero => Some(false),
            Value::One => Some(true),
            Value::Bot => None,
        }
    }

    /// The opposite binary value; `⊥` maps to itself.
    ///
    /// Used by the Byzantine value-flipping adversary of paper §7.2.
    pub fn flipped(self) -> Value {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
            Value::Bot => Value::Bot,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Zero => f.write_str("0"),
            Value::One => f.write_str("1"),
            Value::Bot => f.write_str("⊥"),
        }
    }
}

/// Returns `true` when `⊥` is a legal proposal value at `phase`
/// (DECIDE phases, `φ mod 3 = 0`).
pub fn bot_legal_at(phase: u32) -> bool {
    phase.is_multiple_of(3)
}

/// A revealed one-time secret, attached to a message as its signature.
#[derive(Clone, Copy, Eq, PartialEq, Hash)]
pub struct OneTimeSignature(pub [u8; DIGEST_LEN]);

impl fmt::Debug for OneTimeSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneTimeSignature({:02x}{:02x}…)", self.0[0], self.0[1])
    }
}

impl OneTimeSignature {
    /// The signature as raw bytes (wire form).
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }
}

/// Errors from one-time signing.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum SignError {
    /// The phase lies outside the range this key array covers.
    PhaseOutOfRange {
        /// Requested phase.
        phase: u32,
        /// First covered phase (inclusive).
        first: u32,
        /// Last covered phase (inclusive).
        last: u32,
    },
    /// `⊥` was requested in a phase where it is not a legal proposal.
    BotNotLegal {
        /// Requested phase.
        phase: u32,
    },
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::PhaseOutOfRange { phase, first, last } => {
                write!(f, "phase {phase} outside key range [{first}, {last}]")
            }
            SignError::BotNotLegal { phase } => {
                write!(f, "⊥ is not a legal proposal value at phase {phase}")
            }
        }
    }
}

impl std::error::Error for SignError {}

/// The verification-key array `VK_i` of one process for one key-exchange
/// epoch: `VK_i[φ][v] = H(SK_i[φ][v])`.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct VerificationKeyArray {
    process: usize,
    first_phase: u32,
    /// `rows[r][v]` is the key for phase `first_phase + r`, value index
    /// `v`; the `⊥` slot of non-DECIDE phases holds `Digest::ZERO`.
    rows: Vec<[Digest; 3]>,
}

impl VerificationKeyArray {
    /// The process this array belongs to.
    pub fn process(&self) -> usize {
        self.process
    }

    /// First phase (inclusive) covered by this array.
    pub fn first_phase(&self) -> u32 {
        self.first_phase
    }

    /// Last phase (inclusive) covered by this array.
    pub fn last_phase(&self) -> u32 {
        self.first_phase + self.rows.len() as u32 - 1
    }

    /// Number of phases covered.
    pub fn num_phases(&self) -> usize {
        self.rows.len()
    }

    /// Verifies that `sig` authenticates `(phase, value)` for this
    /// process, i.e. `H(sig) == VK[phase][value]`.
    ///
    /// Returns `false` for out-of-range phases and for `⊥` in phases where
    /// it is not legal.
    pub fn verify(&self, phase: u32, value: Value, sig: &OneTimeSignature) -> bool {
        let Some(expected) = self.key(phase, value) else {
            return false;
        };
        crate::sha256::sha256(&sig.0) == expected
    }

    /// Like [`VerificationKeyArray::verify`] with `H(sig)` already
    /// computed, so a multi-epoch scan (or a lane-batched caller)
    /// hashes each signature exactly once instead of once per epoch.
    pub fn verify_hashed(&self, phase: u32, value: Value, sig_hash: &Digest) -> bool {
        self.key(phase, value)
            .is_some_and(|expected| *sig_hash == expected)
    }

    /// Looks up `VK[phase][value]`, if that slot exists.
    pub fn key(&self, phase: u32, value: Value) -> Option<Digest> {
        if phase < self.first_phase {
            return None;
        }
        let row = (phase - self.first_phase) as usize;
        if row >= self.rows.len() {
            return None;
        }
        if value == Value::Bot && !bot_legal_at(phase) {
            return None;
        }
        Some(self.rows[row][value.index()])
    }

    /// Canonical byte encoding of the array, used as the message that the
    /// key-exchange signature covers.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.rows.len() * 3 * DIGEST_LEN);
        out.extend_from_slice(&(self.process as u64).to_be_bytes());
        out.extend_from_slice(&self.first_phase.to_be_bytes());
        out.extend_from_slice(&(self.rows.len() as u32).to_be_bytes());
        for row in &self.rows {
            for key in row {
                out.extend_from_slice(key.as_bytes());
            }
        }
        out
    }
}

/// A process's secret keys plus the matching verification keys for one
/// key-exchange epoch.
///
/// # Example
///
/// ```
/// use turquois_crypto::otss::{KeyPairArray, Value};
/// let keys = KeyPairArray::generate(0, 12, 7);
/// let sig = keys.sign(6, Value::Bot)?; // phase 6 is a DECIDE phase
/// assert!(keys.verification_keys().verify(6, Value::Bot, &sig));
/// # Ok::<(), turquois_crypto::otss::SignError>(())
/// ```
#[derive(Clone)]
pub struct KeyPairArray {
    secrets: Vec<[[u8; DIGEST_LEN]; 3]>,
    verification: VerificationKeyArray,
}

impl fmt::Debug for KeyPairArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeyPairArray")
            .field("process", &self.verification.process)
            .field("first_phase", &self.verification.first_phase)
            .field("num_phases", &self.verification.rows.len())
            .finish_non_exhaustive()
    }
}

impl KeyPairArray {
    /// Generates keys for `num_phases` phases starting at phase 1
    /// (epoch 1).
    ///
    /// Secret keys are derived deterministically from `seed` via a keyed
    /// hash chain, so tests and the simulator are reproducible; in a real
    /// deployment the seed would come from the OS entropy pool.
    pub fn generate(process: usize, num_phases: usize, seed: u64) -> Self {
        Self::generate_epoch(process, 1, num_phases, seed)
    }

    /// Generates keys for the epoch starting at `first_phase` and covering
    /// `num_phases` phases.
    ///
    /// # Panics
    ///
    /// Panics if `first_phase == 0` (phases are 1-based) or
    /// `num_phases == 0`.
    pub fn generate_epoch(process: usize, first_phase: u32, num_phases: usize, seed: u64) -> Self {
        assert!(first_phase >= 1, "phases are 1-based");
        assert!(num_phases >= 1, "a key array must cover at least one phase");
        // Every legal slot is an independent single-block derivation
        // followed by an independent verification hash, so two lane
        // batches cover the whole epoch (paper footnote 3 still skips
        // the ⊥ slot of non-DECIDE phases).
        let mut slots: Vec<(usize, Value)> = Vec::with_capacity(num_phases * 3);
        let mut preimages: Vec<[u8; SECRET_PREIMAGE_LEN]> = Vec::with_capacity(num_phases * 3);
        for r in 0..num_phases {
            let phase = first_phase + r as u32;
            for value in Value::ALL {
                if value == Value::Bot && !bot_legal_at(phase) {
                    continue;
                }
                slots.push((r, value));
                preimages.push(secret_preimage(seed, process, phase, value));
            }
        }
        let refs: Vec<&[u8]> = preimages.iter().map(|p| &p[..]).collect();
        let sks = sha256_many(&refs);
        let sk_refs: Vec<&[u8]> = sks.iter().map(Digest::as_bytes).collect();
        let vks = sha256_many(&sk_refs);
        let mut secrets = vec![[[0u8; DIGEST_LEN]; 3]; num_phases];
        let mut rows = vec![[Digest::ZERO; 3]; num_phases];
        for ((&(r, value), sk), vk) in slots.iter().zip(&sks).zip(&vks) {
            secrets[r][value.index()] = sk.0;
            rows[r][value.index()] = *vk;
        }
        KeyPairArray {
            secrets,
            verification: VerificationKeyArray {
                process,
                first_phase,
                rows,
            },
        }
    }

    /// The public half of the key material.
    pub fn verification_keys(&self) -> &VerificationKeyArray {
        &self.verification
    }

    /// Signs `(phase, value)` by revealing the corresponding secret key.
    ///
    /// # Errors
    ///
    /// Returns [`SignError::PhaseOutOfRange`] if `phase` is not covered by
    /// this epoch, or [`SignError::BotNotLegal`] when signing `⊥` in a
    /// non-DECIDE phase.
    pub fn sign(&self, phase: u32, value: Value) -> Result<OneTimeSignature, SignError> {
        let first = self.verification.first_phase;
        let last = self.verification.last_phase();
        if phase < first || phase > last {
            return Err(SignError::PhaseOutOfRange { phase, first, last });
        }
        if value == Value::Bot && !bot_legal_at(phase) {
            return Err(SignError::BotNotLegal { phase });
        }
        let row = (phase - first) as usize;
        Ok(OneTimeSignature(self.secrets[row][value.index()]))
    }
}

/// Builds the derivation preimage of one one-time secret. The scalar
/// oracle ([`crate::sha256::sha256_domain`] over the same tag and
/// parts) and the lane batch hash exactly these bytes.
fn secret_preimage(seed: u64, process: usize, phase: u32, value: Value) -> [u8; SECRET_PREIMAGE_LEN] {
    let mut p = [0u8; SECRET_PREIMAGE_LEN];
    let t = SECRET_TAG.len();
    p[..t].copy_from_slice(SECRET_TAG);
    p[t..t + 8].copy_from_slice(&seed.to_be_bytes());
    p[t + 8..t + 16].copy_from_slice(&(process as u64).to_be_bytes());
    p[t + 16..t + 20].copy_from_slice(&phase.to_be_bytes());
    p[t + 20] = value.index() as u8;
    p
}

/// A verification-key array together with the key-exchange signature that
/// authenticates it (paper §6.1, "Key Exchange").
///
/// The paper signs `VK_i` with RSA; the reproduction uses the hash-based
/// [`crate::hashsig`] scheme (see `DESIGN.md` §4).
#[derive(Clone, Debug)]
pub struct SignedVerificationKeys {
    /// The verification keys being distributed.
    pub keys: VerificationKeyArray,
    /// Signature over [`VerificationKeyArray::canonical_bytes`].
    pub signature: hashsig::Signature,
}

impl SignedVerificationKeys {
    /// Signs `keys` with the long-term identity key of the owning process.
    ///
    /// # Errors
    ///
    /// Propagates [`hashsig::SignError`] if the identity key has exhausted
    /// its one-time leaves.
    pub fn sign(
        keys: VerificationKeyArray,
        identity: &mut hashsig::Keypair,
    ) -> Result<Self, hashsig::SignError> {
        let signature = identity.sign(&keys.canonical_bytes())?;
        Ok(SignedVerificationKeys { keys, signature })
    }

    /// Verifies the bundle against the claimed owner's long-term public
    /// key.
    pub fn verify(&self, owner_public: &hashsig::PublicKey) -> bool {
        owner_public.verify(&self.keys.canonical_bytes(), &self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip_all_slots() {
        let keys = KeyPairArray::generate(3, 9, 99);
        for phase in 1..=9u32 {
            for value in Value::ALL {
                if value == Value::Bot && !bot_legal_at(phase) {
                    assert_eq!(
                        keys.sign(phase, value),
                        Err(SignError::BotNotLegal { phase })
                    );
                    continue;
                }
                let sig = keys.sign(phase, value).expect("slot exists");
                assert!(keys.verification_keys().verify(phase, value, &sig));
            }
        }
    }

    #[test]
    fn signature_does_not_transfer_between_slots() {
        let keys = KeyPairArray::generate(0, 6, 1);
        let sig = keys.sign(2, Value::One).expect("in range");
        let vk = keys.verification_keys();
        assert!(vk.verify(2, Value::One, &sig));
        assert!(!vk.verify(2, Value::Zero, &sig));
        assert!(!vk.verify(1, Value::One, &sig));
        assert!(!vk.verify(5, Value::One, &sig));
    }

    #[test]
    fn signature_does_not_transfer_between_processes() {
        let a = KeyPairArray::generate(0, 6, 1);
        let b = KeyPairArray::generate(1, 6, 1);
        let sig = a.sign(4, Value::Zero).expect("in range");
        assert!(!b.verification_keys().verify(4, Value::Zero, &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let keys = KeyPairArray::generate(0, 3, 5);
        let mut sig = keys.sign(1, Value::Zero).expect("in range");
        sig.0[0] ^= 1;
        assert!(!keys.verification_keys().verify(1, Value::Zero, &sig));
    }

    #[test]
    fn phase_out_of_range_errors() {
        let keys = KeyPairArray::generate_epoch(0, 4, 3, 5); // phases 4..=6
        assert!(keys.sign(4, Value::Zero).is_ok());
        assert!(keys.sign(6, Value::Zero).is_ok());
        assert_eq!(
            keys.sign(3, Value::Zero),
            Err(SignError::PhaseOutOfRange {
                phase: 3,
                first: 4,
                last: 6
            })
        );
        assert_eq!(
            keys.sign(7, Value::Zero),
            Err(SignError::PhaseOutOfRange {
                phase: 7,
                first: 4,
                last: 6
            })
        );
    }

    #[test]
    fn bot_only_in_decide_phases() {
        let keys = KeyPairArray::generate(0, 9, 5);
        let vk = keys.verification_keys();
        for phase in 1..=9u32 {
            assert_eq!(vk.key(phase, Value::Bot).is_some(), phase % 3 == 0);
        }
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = KeyPairArray::generate(0, 3, 1);
        let b = KeyPairArray::generate(0, 3, 2);
        assert_ne!(
            a.verification_keys().key(1, Value::Zero),
            b.verification_keys().key(1, Value::Zero)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KeyPairArray::generate(2, 5, 77);
        let b = KeyPairArray::generate(2, 5, 77);
        assert_eq!(a.verification_keys(), b.verification_keys());
    }

    #[test]
    fn scalar_and_batched_keygen_agree() {
        use crate::sha256::multilane::{scalar_sha_enabled, set_scalar_sha, test_knob_lock};
        let _guard = test_knob_lock();
        let initial = scalar_sha_enabled();
        set_scalar_sha(true);
        let scalar = KeyPairArray::generate_epoch(3, 4, 9, 123);
        set_scalar_sha(false);
        let lanes = KeyPairArray::generate_epoch(3, 4, 9, 123);
        assert_eq!(scalar.verification_keys(), lanes.verification_keys());
        assert_eq!(scalar.secrets, lanes.secrets);
        set_scalar_sha(initial);
    }

    #[test]
    fn verify_hashed_matches_verify() {
        let keys = KeyPairArray::generate(0, 6, 8);
        let vk = keys.verification_keys();
        let sig = keys.sign(2, Value::One).expect("in range");
        let hash = crate::sha256::sha256(&sig.0);
        assert!(vk.verify_hashed(2, Value::One, &hash));
        assert!(!vk.verify_hashed(2, Value::Zero, &hash));
        assert!(!vk.verify_hashed(1, Value::Bot, &hash));
        assert!(!vk.verify_hashed(99, Value::One, &hash));
    }

    #[test]
    fn signed_bundle_round_trip() {
        let keys = KeyPairArray::generate(1, 6, 3);
        let mut identity = hashsig::Keypair::generate(4, 11);
        let bundle = SignedVerificationKeys::sign(keys.verification_keys().clone(), &mut identity)
            .expect("leaves available");
        assert!(bundle.verify(identity.public_key()));

        let other = hashsig::Keypair::generate(4, 12);
        assert!(!bundle.verify(other.public_key()));
    }

    #[test]
    fn signed_bundle_detects_key_substitution() {
        let keys = KeyPairArray::generate(1, 6, 3);
        let mut identity = hashsig::Keypair::generate(4, 11);
        let mut bundle =
            SignedVerificationKeys::sign(keys.verification_keys().clone(), &mut identity)
                .expect("leaves available");
        // Attacker swaps in their own verification keys.
        let evil = KeyPairArray::generate(1, 6, 666);
        bundle.keys = evil.verification_keys().clone();
        assert!(!bundle.verify(identity.public_key()));
    }

    #[test]
    fn value_helpers() {
        assert_eq!(Value::from_bit(true), Value::One);
        assert_eq!(Value::from_bit(false), Value::Zero);
        assert_eq!(Value::One.as_bit(), Some(true));
        assert_eq!(Value::Bot.as_bit(), None);
        assert_eq!(Value::Zero.flipped(), Value::One);
        assert_eq!(Value::Bot.flipped(), Value::Bot);
        assert_eq!(format!("{}", Value::Bot), "⊥");
    }

    #[test]
    fn canonical_bytes_distinguish_arrays() {
        let a = KeyPairArray::generate(0, 3, 1);
        let b = KeyPairArray::generate(1, 3, 1);
        assert_ne!(
            a.verification_keys().canonical_bytes(),
            b.verification_keys().canonical_bytes()
        );
    }
}
