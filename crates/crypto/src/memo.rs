//! A bounded, deterministic memo cache for verification results.
//!
//! [`MemoCache`] remembers the outcome of expensive computations —
//! boolean verdicts of one-time-signature verifies and HMAC
//! threshold-share checks, or full HMAC tags shared between a
//! simulated sender and receiver — keyed by the full input identity,
//! so re-deliveries of the same signed bytes cost a map probe instead
//! of a SHA-256 chain. It caches *negative* results too: a forged
//! signature rejected once is rejected from the cache thereafter —
//! sound because the key includes every byte the recomputation would
//! read, so equal keys are the same computation.
//!
//! Determinism: backed by a `BTreeMap` plus FIFO insertion-order
//! eviction, so behaviour depends only on the lookup sequence — never
//! on hash seeds or addresses. Bounded: Byzantine senders can mint
//! unlimited distinct invalid signatures; capacity eviction keeps a
//! flood from growing memory, and an evicted entry merely costs a
//! recomputation, never a wrong answer.
//!
//! Results must never depend on the cache: [`MemoCache::lookup`]
//! consults [`crate::telemetry::memo_enabled`] and, when memoization
//! is disabled, recomputes every time (asserting agreement with any
//! cached value in debug builds) while keeping bookkeeping and
//! telemetry identical in both modes.

use crate::telemetry;
use std::collections::{BTreeMap, VecDeque};

/// Bounded memoization of `key -> value` computations (verification
/// verdicts by default). See the module docs for the determinism and
/// soundness argument.
#[derive(Clone, Debug)]
pub struct MemoCache<K: Ord + Clone, V = bool> {
    entries: BTreeMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: Ord + Clone, V: Clone + PartialEq + std::fmt::Debug> MemoCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        MemoCache {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Memoized evaluation of `compute` for `key`, counting one logical
    /// verification plus a hit or miss in [`crate::telemetry`].
    ///
    /// With memoization disabled (see
    /// [`crate::telemetry::set_memo_enabled`]) the closure runs
    /// unconditionally — lookups, insertions, and counters are
    /// identical in both modes, so the only observable difference is
    /// wall-clock work.
    pub fn lookup(&mut self, key: K, compute: impl FnOnce() -> V) -> V {
        telemetry::count_verify_call();
        if let Some(cached) = self.entries.get(&key) {
            telemetry::count_cache_hit();
            if telemetry::memo_enabled() {
                return cached.clone();
            }
            let cached = cached.clone();
            let recomputed = compute();
            debug_assert_eq!(recomputed, cached, "memo cache disagrees with recomputation");
            return recomputed;
        }
        telemetry::count_cache_miss();
        let result = compute();
        if self.entries.len() == self.capacity {
            // FIFO eviction: drop the oldest insertion still present.
            while let Some(old) = self.order.pop_front() {
                if self.entries.remove(&old).is_some() {
                    break;
                }
            }
        }
        self.entries.insert(key.clone(), result.clone());
        self.order.push_back(key);
        result
    }

    /// Whether `key` currently has a cached value, with *no* telemetry
    /// or bookkeeping side effects.
    ///
    /// This is the batch prescan primitive: a delivery tick collects
    /// the keys that will miss, computes them through the multi-lane
    /// kernel, and feeds the precomputed values into the subsequent
    /// [`MemoCache::lookup`] calls — which still count the miss and
    /// insert the entry, so cache evolution and counters are identical
    /// to unbatched operation.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Drops every entry whose key fails `keep` (garbage collection —
    /// callers tie this to their protocol's GC floor).
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        self.entries.retain(|k, _| keep(k));
        let entries = &self.entries;
        self.order.retain(|k| entries.contains_key(k));
    }

    /// Drops everything (e.g. on a key-epoch change that invalidates
    /// all previous verification outcomes).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::HotpathSnapshot;

    #[test]
    fn caches_positive_and_negative_results() {
        let mut cache = MemoCache::new(8);
        let mut computed = 0;
        for _ in 0..3 {
            assert!(cache.lookup(1u32, || {
                computed += 1;
                true
            }));
            assert!(!cache.lookup(2u32, || {
                computed += 1;
                false
            }));
        }
        assert_eq!(computed, 2, "each key computed exactly once");
    }

    #[test]
    fn telemetry_counts_hits_and_misses() {
        let before = HotpathSnapshot::now();
        let mut cache = MemoCache::new(8);
        cache.lookup(1u32, || true);
        cache.lookup(1u32, || true);
        cache.lookup(2u32, || false);
        let d = HotpathSnapshot::now().delta_since(&before);
        assert_eq!(d.verify_calls, 3);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.cache_misses, 2);
    }

    #[test]
    fn capacity_evicts_fifo_and_recomputes_evictee() {
        let mut cache = MemoCache::new(2);
        let mut computed = Vec::new();
        let probe = |cache: &mut MemoCache<u32>, k: u32, v: bool, log: &mut Vec<u32>| {
            cache.lookup(k, || {
                log.push(k);
                v
            })
        };
        assert!(probe(&mut cache, 1, true, &mut computed));
        assert!(!probe(&mut cache, 2, false, &mut computed));
        assert!(probe(&mut cache, 3, true, &mut computed)); // evicts key 1
        assert_eq!(cache.len(), 2);
        // Key 1 was evicted: recomputed (still sound); key 2's negative
        // entry survived the eviction churn and stays negative.
        assert!(probe(&mut cache, 1, true, &mut computed));
        assert!(!probe(&mut cache, 2, false, &mut computed));
        assert_eq!(computed, vec![1, 2, 3, 1, 2]);
    }

    #[test]
    fn retain_prunes_entries_and_order() {
        let mut cache = MemoCache::new(8);
        for k in 0..6u32 {
            cache.lookup(k, || true);
        }
        cache.retain(|&k| k >= 4);
        assert_eq!(cache.len(), 2);
        // Pruned keys recompute; kept keys do not.
        let mut computed = 0;
        cache.lookup(0, || {
            computed += 1;
            true
        });
        cache.lookup(5, || {
            computed += 1;
            true
        });
        assert_eq!(computed, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn disabled_mode_recomputes_but_keeps_bookkeeping() {
        let initial = crate::telemetry::memo_enabled();
        crate::telemetry::set_memo_enabled(false);
        let mut cache = MemoCache::new(8);
        let mut computed = 0;
        for _ in 0..3 {
            assert!(cache.lookup(7u32, || {
                computed += 1;
                true
            }));
        }
        assert_eq!(computed, 3, "disabled mode recomputes every lookup");
        assert_eq!(cache.len(), 1, "bookkeeping identical to enabled mode");
        crate::telemetry::set_memo_enabled(initial);
    }
}
