//! Property tests for the cryptographic substrate.

use proptest::prelude::*;
use turquois_crypto::hashsig;
use turquois_crypto::hmac::{hmac_many, HmacKey};
use turquois_crypto::otss::{KeyPairArray, OneTimeSignature, Value};
use turquois_crypto::sha256::multilane::sha256_many;
use turquois_crypto::sha256::{sha256, Digest, Sha256};
use turquois_crypto::threshold::Dealer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental hashing equals one-shot hashing for any split.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        splits in prop::collection::vec(any::<u16>(), 0..4),
    ) {
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let mut at = 0usize;
        let mut cuts: Vec<usize> = splits
            .iter()
            .map(|&s| s as usize % (data.len() + 1))
            .collect();
        cuts.sort_unstable();
        for cut in cuts {
            if cut > at {
                h.update(&data[at..cut]);
                at = cut;
            }
        }
        h.update(&data[at..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// The multi-lane batch digest equals the scalar one-shot digest on
    /// every input of any ragged batch: arbitrary batch sizes (covering
    /// the 8-wide drain, the 4-lane and 8-lane remainder paths with
    /// dummy lanes, and the singleton scalar path) over arbitrary
    /// lengths (covering 1- and 2-block padded tails and multi-block
    /// messages that group by block count).
    #[test]
    fn sha256_many_matches_scalar_oneshot(
        inputs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 0..20),
    ) {
        let refs: Vec<&[u8]> = inputs.iter().map(|v| &v[..]).collect();
        let batched = sha256_many(&refs);
        prop_assert_eq!(batched.len(), inputs.len());
        for (input, digest) in inputs.iter().zip(&batched) {
            prop_assert_eq!(*digest, sha256(input));
        }
    }

    /// Lane-batched HMAC finishes equal the scalar per-pair tags for
    /// any ragged batch of keys and message lengths.
    #[test]
    fn hmac_many_matches_scalar_macs(
        key_seeds in prop::collection::vec(any::<[u8; 16]>(), 1..4),
        picks in prop::collection::vec((any::<u8>(), prop::collection::vec(any::<u8>(), 0..200)), 0..16),
    ) {
        let keys: Vec<HmacKey> = key_seeds.iter().map(|s| HmacKey::from_bytes(s)).collect();
        let items: Vec<(&HmacKey, &[u8])> = picks
            .iter()
            .map(|(pick, msg)| (&keys[*pick as usize % keys.len()], &msg[..]))
            .collect();
        let batched = hmac_many(&items);
        prop_assert_eq!(batched.len(), items.len());
        for ((key, msg), tag) in items.iter().zip(&batched) {
            prop_assert_eq!(*tag, key.mac(msg));
        }
    }

    /// Hex round-trips.
    #[test]
    fn digest_hex_round_trip(bytes in any::<[u8; 32]>()) {
        let d = Digest(bytes);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    /// HMAC verification rejects every single-byte tamper of message or
    /// tag.
    #[test]
    fn hmac_rejects_tampering(
        key in prop::collection::vec(any::<u8>(), 1..64),
        msg in prop::collection::vec(any::<u8>(), 1..128),
        flip_at in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let k = HmacKey::from_bytes(&key);
        let tag = k.mac(&msg);
        prop_assert!(k.verify(&msg, &tag));
        let mut tampered = msg.clone();
        let i = flip_at as usize % tampered.len();
        tampered[i] ^= 1 << flip_bit;
        prop_assert!(!k.verify(&tampered, &tag));
    }

    /// A one-time signature authenticates exactly its (phase, value)
    /// slot: any other slot rejects it, and any bit-flip of the secret
    /// rejects.
    #[test]
    fn otss_signature_slot_binding(
        seed in any::<u64>(),
        phase in 1u32..30,
        value_idx in 0usize..2,
        other_phase in 1u32..30,
        flip in any::<u8>(),
    ) {
        let keys = KeyPairArray::generate(0, 30, seed);
        let value = [Value::Zero, Value::One][value_idx];
        let sig = keys.sign(phase, value).expect("in range");
        let vk = keys.verification_keys();
        prop_assert!(vk.verify(phase, value, &sig));
        prop_assert!(!vk.verify(phase, value.flipped(), &sig));
        if other_phase != phase {
            prop_assert!(!vk.verify(other_phase, value, &sig));
        }
        let mut bad = sig;
        bad.0[(flip as usize) % 32] ^= 1 | (flip & 0xfe);
        if bad != sig {
            prop_assert!(!vk.verify(phase, value, &bad));
        }
    }

    /// Guessing a one-time signature from random bytes fails.
    #[test]
    fn otss_random_forgery_fails(seed in any::<u64>(), guess in any::<[u8; 32]>()) {
        let keys = KeyPairArray::generate(1, 6, seed);
        let vk = keys.verification_keys();
        prop_assert!(!vk.verify(1, Value::Zero, &OneTimeSignature(guess)));
    }

    /// Merkle–Lamport signatures reject any message tamper.
    #[test]
    fn hashsig_message_binding(
        seed in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 1..64),
        flip_at in any::<u16>(),
    ) {
        let mut kp = hashsig::Keypair::generate(1, seed);
        let sig = kp.sign(&msg).expect("fresh leaves");
        prop_assert!(kp.public_key().verify(&msg, &sig));
        let mut tampered = msg.clone();
        let i = flip_at as usize % tampered.len();
        tampered[i] ^= 0x40;
        prop_assert!(!kp.public_key().verify(&tampered, &sig));
    }

    /// Threshold combination succeeds iff ≥ threshold distinct valid
    /// shares participate, and the combined signature verifies.
    #[test]
    fn threshold_combination_threshold_exact(
        seed in any::<u64>(),
        provided in 0usize..8,
    ) {
        let (public, keys) = Dealer::deal(7, 5, seed);
        let msg = b"statement";
        let shares: Vec<_> = keys.iter().take(provided.min(7)).map(|k| k.sign_share(msg)).collect();
        match public.combine(msg, &shares) {
            Ok(sig) => {
                prop_assert!(shares.len() >= 5);
                prop_assert!(public.verify(msg, &sig));
            }
            Err(_) => prop_assert!(shares.len() < 5),
        }
    }

    /// The shared coin is consistent across any share subset of
    /// sufficient size.
    #[test]
    fn coin_subset_independence(seed in any::<u64>(), tag in prop::collection::vec(any::<u8>(), 1..16)) {
        let (public, keys) = Dealer::deal(7, 3, seed);
        let all: Vec<_> = keys.iter().map(|k| k.coin_share(&tag)).collect();
        let a = public.combine_coin(&tag, &all[..3]).expect("threshold met");
        let b = public.combine_coin(&tag, &all[4..]).expect("threshold met");
        prop_assert_eq!(a, b);
    }
}
