//! Criterion benchmark crate for the Turquois reproduction (see `benches/`).
