//! Simulator micro-benchmarks: event throughput of the 802.11b medium
//! and the full stack (host wall-clock — how fast the reproduction can
//! grind through experiments).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use wireless_net::frame::ReceivedFrame;
use wireless_net::sim::{Application, NodeCtx, SimConfig, Simulator};
use wireless_net::time::SimTime;

/// An app that rebroadcasts every 10 ms forever.
struct Chatterbox;

impl Application for Chatterbox {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.broadcast(Bytes::from_static(&[0u8; 64]), 36);
        ctx.set_timer(std::time::Duration::from_millis(10), 1);
    }
    fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: ReceivedFrame) {}
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: u64) {
        ctx.broadcast(Bytes::from_static(&[0u8; 64]), 36);
        ctx.set_timer(std::time::Duration::from_millis(10), 1);
    }
}

fn bench_medium(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for n in [4usize, 16] {
        group.bench_function(format!("one_sim_second_{n}_broadcasters"), |b| {
            b.iter(|| {
                let apps: Vec<Box<dyn Application>> = (0..n)
                    .map(|_| Box::new(Chatterbox) as Box<dyn Application>)
                    .collect();
                let mut sim = Simulator::without_faults(
                    SimConfig {
                        seed: 7,
                        ..SimConfig::default()
                    },
                    apps,
                );
                sim.run_until(SimTime::from_millis(1000), |_| false);
                std::hint::black_box(sim.stats().frames_sent())
            })
        });
    }
    group.finish();
}

fn bench_full_consensus(c: &mut Criterion) {
    use turquois_harness::{Protocol, Scenario};
    let mut group = c.benchmark_group("host_cost_per_consensus");
    group.sample_size(20);
    for protocol in [Protocol::Turquois, Protocol::Abba] {
        group.bench_function(format!("{}_n7", protocol.name()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let outcome = Scenario::new(protocol, 7)
                    .seed(seed)
                    .run_once()
                    .expect("valid scenario");
                std::hint::black_box(outcome.decided_correct())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_medium, bench_full_consensus);
criterion_main!(benches);
