//! Multi-lane SHA-256 kernel micro-benchmark: per-byte throughput of
//! the batched digest path at 1, 4, and 8 lanes (a batch of one takes
//! the scalar path; 4 and 8 equal-length messages fill the 4- and
//! 8-lane struct-of-arrays compressors exactly). Two message sizes
//! bracket the hot path: 64 B covers the short preimages of one-time
//! and Lamport keys, 16 KiB shows the kernel's streaming rate where
//! padding and batch setup amortize away. Throughput is per *payload*
//! byte, so the lane widths are directly comparable: any 4- or 8-lane
//! win over 1-lane is the autovectorized kernel paying off.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use turquois_crypto::sha256::multilane::sha256_many;

fn bench_sha_lanes(c: &mut Criterion) {
    for (size, size_label) in [(64usize, "64B"), (16 * 1024, "16KiB")] {
        let mut group = c.benchmark_group(format!("sha_lanes/{size_label}"));
        for lanes in [1usize, 4, 8] {
            let messages: Vec<Vec<u8>> = (0..lanes)
                .map(|lane| vec![lane as u8 ^ 0xa5; size])
                .collect();
            let refs: Vec<&[u8]> = messages.iter().map(|m| &m[..]).collect();
            group.throughput(Throughput::Bytes((lanes * size) as u64));
            group.bench_function(format!("{lanes}-lane"), |b| {
                b.iter(|| sha256_many(std::hint::black_box(&refs)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_sha_lanes);
criterion_main!(benches);
