//! Criterion bench regenerating Table 2 (fail-stop latency): simulated
//! decision latency with `f = ⌊(n−1)/3⌋` processes crashed before the
//! run. See `table1.rs` for the `iter_custom` convention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use turquois_harness::runner;
use turquois_harness::{FaultLoad, Protocol, ProposalDistribution, Scenario};

fn simulated_latency(scenario: &Scenario, seed: u64) -> Duration {
    let outcome = scenario
        .clone()
        .seed(seed)
        .run_once()
        .expect("valid scenario");
    assert!(outcome.agreement_holds() && outcome.validity_holds());
    Duration::from_secs_f64(outcome.mean_latency_ms().unwrap_or(0.0) / 1e3)
}

fn bench_table2(c: &mut Criterion) {
    let threads = runner::threads_from_env();
    let mut group = c.benchmark_group("table2_fail_stop");
    group.sample_size(10);
    for &n in &[4usize, 7, 10, 13, 16] {
        for (protocol, max_n) in [
            (Protocol::Turquois, 16),
            (Protocol::Abba, 10),
            (Protocol::Bracha, 7),
        ] {
            if n > max_n {
                continue;
            }
            for dist in [ProposalDistribution::Unanimous, ProposalDistribution::Divergent] {
                let scenario = Scenario::new(protocol, n)
                    .proposals(dist)
                    .fault_load(FaultLoad::FailStop);
                let id = BenchmarkId::new(format!("{}_{}", protocol.name(), dist.name()), n);
                group.bench_function(id, |b| {
                    b.iter_custom(|iters| {
                        // Order-independent: Duration sums are exact
                        // integer nanoseconds (see table1.rs).
                        let seeds: Vec<u64> = (0..iters).collect();
                        runner::run_indexed(threads, &seeds, |_, &i| {
                            simulated_latency(&scenario, 0xB2 + i)
                        })
                        .into_iter()
                        .sum()
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
