//! Ablation A4: cryptographic micro-benchmarks (host wall-clock).
//!
//! The paper's §6.1 argument: one-time hash signatures cost a single
//! hash per verification, versus RSA-class public-key work for the
//! baselines. These micro-benchmarks measure the reproduction's actual
//! primitives on the host CPU: SHA-256, HMAC, one-time sign/verify,
//! Merkle–Lamport sign/verify (the RSA stand-in for key exchange), and
//! the simulated threshold operations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use turquois_crypto::hashsig::Keypair;
use turquois_crypto::hmac::HmacKey;
use turquois_crypto::otss::{KeyPairArray, Value};
use turquois_crypto::sha256::sha256;
use turquois_crypto::threshold::Dealer;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [32usize, 256, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let key = HmacKey::from_bytes(b"pairwise key");
    let msg = vec![0x5au8; 100];
    c.bench_function("hmac_sha256_100B", |b| {
        b.iter(|| key.mac(std::hint::black_box(&msg)))
    });
}

fn bench_otss(c: &mut Criterion) {
    let keys = KeyPairArray::generate(0, 64, 42);
    let vk = keys.verification_keys().clone();
    let sig = keys.sign(5, Value::One).expect("in range");
    c.bench_function("otss_sign", |b| {
        b.iter(|| {
            keys.sign(std::hint::black_box(5), Value::One)
                .expect("in range")
        })
    });
    c.bench_function("otss_verify", |b| {
        b.iter(|| vk.verify(5, Value::One, std::hint::black_box(&sig)))
    });
}

fn bench_hashsig(c: &mut Criterion) {
    c.bench_function("hashsig_keygen_16_leaves", |b| {
        b.iter(|| Keypair::generate(4, std::hint::black_box(7)))
    });
    let mut kp = Keypair::generate(10, 7);
    let msg = b"verification keys for epoch 2";
    let sig = kp.sign(msg).expect("leaves available");
    let public = *kp.public_key();
    c.bench_function("hashsig_sign", |b| {
        // Re-generate per batch to avoid leaf exhaustion mid-measurement.
        b.iter_batched(
            || Keypair::generate(4, 9),
            |mut kp| kp.sign(std::hint::black_box(msg)).expect("fresh leaves"),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("hashsig_verify", |b| {
        b.iter(|| public.verify(std::hint::black_box(msg), &sig))
    });
}

fn bench_threshold(c: &mut Criterion) {
    let (public, keys) = Dealer::deal(16, 11, 99);
    let msg = b"pre-vote 1 1";
    let shares: Vec<_> = keys.iter().take(11).map(|k| k.sign_share(msg)).collect();
    c.bench_function("threshold_share_sign", |b| {
        b.iter(|| keys[0].sign_share(std::hint::black_box(msg)))
    });
    c.bench_function("threshold_share_verify", |b| {
        b.iter(|| public.verify_share(std::hint::black_box(msg), &shares[0]))
    });
    c.bench_function("threshold_combine_11", |b| {
        b.iter(|| {
            public
                .combine(std::hint::black_box(msg), &shares)
                .expect("quorum")
        })
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_otss,
    bench_hashsig,
    bench_threshold
);
criterion_main!(benches);
