//! Codec micro-benchmarks (host wall-clock): the flat-arena message
//! codec against the legacy owned-`Vec` codec it replaces
//! (DESIGN.md §13).
//!
//! * **decode_owned** — [`Message::decode`], materializing the
//!   justification entries into a fresh `Vec` per message.
//! * **decode_view** — [`MessageView::parse`], leaving the entries as
//!   offset ranges into the received buffer and re-reading every
//!   signature slice, the steady-state receive path.
//! * **encode_cold** — [`Message::encode`], one `BytesMut` builder and
//!   one `freeze` allocation per message.
//! * **encode_arena_warm** — [`Message::encode_into`] staged into a
//!   recycled [`EncodeArena`] chunk, the steady-state send path (one
//!   `Arc` per seal, no buffer allocation).
//!
//! Measured on a justified rebroadcast bundle at n = 16, the largest
//! group of the paper's grid — the allocation-dominated case.

use bytes::arena::EncodeArena;
use criterion::{criterion_group, criterion_main, Criterion};
use turquois_core::config::Config;
use turquois_core::instance::Turquois;
use turquois_core::message::{Message, MessageView};
use turquois_core::KeyRing;

const PHASES: usize = 60;
const N: usize = 16;

/// Builds a justified phase-2 rebroadcast from process 0 of an
/// `N`-process group (same fixture as the receive-path bench).
fn justified_message() -> (Config, bytes::Bytes) {
    let cfg = Config::evaluation(N).expect("valid n");
    let rings = KeyRing::trusted_setup(N, PHASES, 0xbe9c);
    let mut procs: Vec<Turquois> = rings
        .into_iter()
        .enumerate()
        .map(|(i, r)| Turquois::new(cfg, i, true, r, 7 + i as u64))
        .collect();
    let msgs: Vec<bytes::Bytes> = procs
        .iter_mut()
        .map(|p| p.on_tick().expect("keys cover phase").bytes)
        .collect();
    let p0 = &mut procs[0];
    for m in &msgs {
        p0.on_message(m);
    }
    let _ = p0.on_tick().expect("keys cover phase");
    let justified = p0.on_tick().expect("keys cover phase").bytes;
    (cfg, justified)
}

fn bench_codec(c: &mut Criterion) {
    let (cfg, justified) = justified_message();
    let msg = Message::decode(&justified, &cfg).expect("fixture decodes");
    assert!(
        msg.justification.len() >= N / 2,
        "fixture should carry a quorum-sized justification"
    );

    let mut group = c.benchmark_group(format!("codec_n{N}"));
    group.bench_function("decode_owned", |b| {
        b.iter(|| Message::decode(std::hint::black_box(&justified), &cfg).expect("decodes"))
    });
    group.bench_function("decode_view", |b| {
        b.iter(|| {
            let view =
                MessageView::parse(std::hint::black_box(&justified), &cfg).expect("parses");
            // Touch every entry so the comparison includes the
            // on-demand re-reads the receive path performs.
            let mut touched = 0usize;
            for i in 0..view.justification_len() {
                touched += view.sig_bytes(i).len();
            }
            std::hint::black_box(touched)
        })
    });

    group.bench_function("encode_cold", |b| {
        b.iter(|| std::hint::black_box(&msg).encode())
    });
    let mut arena = EncodeArena::new();
    // Prime the free list so the measured steady state reuses buffers.
    drop(arena.encode_with(|buf| msg.encode_into(buf)));
    group.bench_function("encode_arena_warm", |b| {
        b.iter(|| arena.encode_with(|buf| std::hint::black_box(&msg).encode_into(buf)))
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
