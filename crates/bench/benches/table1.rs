//! Criterion bench regenerating Table 1 (failure-free latency).
//!
//! Each benchmark iteration runs one full consensus in the simulator
//! with a fresh seed and reports the **simulated** decision latency via
//! `iter_custom` — so Criterion's mean/CI estimates correspond directly
//! to the paper's table cells (milliseconds of protocol latency, not
//! host wall-clock). Run with `cargo bench -p turquois-bench --bench
//! table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use turquois_harness::runner;
use turquois_harness::{Protocol, ProposalDistribution, Scenario};

fn simulated_latency(scenario: &Scenario, seed: u64) -> Duration {
    let outcome = scenario
        .clone()
        .seed(seed)
        .run_once()
        .expect("valid scenario");
    assert!(outcome.agreement_holds() && outcome.validity_holds());
    Duration::from_secs_f64(outcome.mean_latency_ms().unwrap_or(0.0) / 1e3)
}

fn bench_table1(c: &mut Criterion) {
    let threads = runner::threads_from_env();
    let mut group = c.benchmark_group("table1_failure_free");
    group.sample_size(10);
    for &n in &[4usize, 7, 10, 13, 16] {
        for (protocol, max_n) in [
            (Protocol::Turquois, 16),
            (Protocol::Abba, 10),
            (Protocol::Bracha, 7),
        ] {
            if n > max_n {
                continue; // keep bench wall-clock sane; the harness bins cover the full grid
            }
            for dist in [ProposalDistribution::Unanimous, ProposalDistribution::Divergent] {
                let scenario = Scenario::new(protocol, n).proposals(dist);
                let id = BenchmarkId::new(
                    format!("{}_{}", protocol.name(), dist.name()),
                    n,
                );
                group.bench_function(id, |b| {
                    b.iter_custom(|iters| {
                        // Fan the iterations across the worker pool;
                        // Duration sums are exact integer nanoseconds,
                        // so the total is order-independent.
                        let seeds: Vec<u64> = (0..iters).collect();
                        runner::run_indexed(threads, &seeds, |_, &i| {
                            simulated_latency(&scenario, 0xB1 + i)
                        })
                        .into_iter()
                        .sum()
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
