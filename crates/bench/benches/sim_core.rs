//! Event-engine micro-benchmark: events/second through the simulator
//! core on the `simstress` timer-storm workload, for both queue
//! engines. The storm is deterministic, so the two engines process
//! exactly the same events — only the wall-clock differs. The wider
//! before/after story (plus the byte-identity cross-check) lives in
//! the `simcore_bench` harness binary and `results/BENCH_simcore.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use turquois_harness::simstress;
use wireless_net::queue::set_legacy_queue;

/// Simulated storm horizon per iteration.
const STORM_MS: u64 = 50;

fn bench_sim_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core");
    for (label, legacy) in [("legacy_heap", true), ("timer_wheel", false)] {
        for n in [4usize, 8, 16] {
            group.bench_function(format!("{label}_storm_n{n}"), |b| {
                b.iter(|| {
                    set_legacy_queue(legacy);
                    std::hint::black_box(simstress::run_storm(n, 42, STORM_MS))
                })
            });
        }
    }
    // Leave the process-wide engine selection on the default.
    set_legacy_queue(false);
    group.finish();
}

criterion_group!(benches, bench_sim_core);
criterion_main!(benches);
