//! Protocol-engine micro-benchmarks: the per-message cost of the
//! Turquois pipeline (decode → authenticate → semantically validate →
//! state transition) and the baseline engines, on the host CPU.

use criterion::{criterion_group, criterion_main, Criterion};
use turquois_baselines::abba::{Abba, AbbaKeys};
use turquois_baselines::bracha::Bracha;
use turquois_core::config::Config;
use turquois_core::instance::Turquois;
use turquois_core::KeyRing;

fn bench_turquois_on_message(c: &mut Criterion) {
    let cfg = Config::evaluation(7).expect("valid");
    let rings = KeyRing::trusted_setup(7, 60, 3);
    let mut procs: Vec<Turquois> = rings
        .into_iter()
        .enumerate()
        .map(|(i, ring)| Turquois::new(cfg, i, true, ring, i as u64))
        .collect();
    // Pre-generate a bare phase-1 message from process 1.
    let msg = procs[1].on_tick().expect("keys cover phase").bytes;

    c.bench_function("turquois_on_message_fresh", |b| {
        b.iter_batched(
            || {
                let rings = KeyRing::trusted_setup(7, 60, 3);
                let ring0 = rings.into_iter().next().expect("ring 0");
                Turquois::new(cfg, 0, true, ring0, 0)
            },
            |mut p| {
                std::hint::black_box(p.on_message(&msg));
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("turquois_on_message_duplicate", |b| {
        let rings = KeyRing::trusted_setup(7, 60, 3);
        let ring0 = rings.into_iter().next().expect("ring 0");
        let mut p = Turquois::new(cfg, 0, true, ring0, 0);
        p.on_message(&msg);
        b.iter(|| std::hint::black_box(p.on_message(&msg)))
    });
    c.bench_function("turquois_on_tick", |b| {
        let rings = KeyRing::trusted_setup(7, 60, 3);
        let ring0 = rings.into_iter().next().expect("ring 0");
        let mut p = Turquois::new(cfg, 0, true, ring0, 0);
        b.iter(|| std::hint::black_box(p.on_tick().expect("keys cover phase")))
    });
}

fn bench_bracha_on_message(c: &mut Criterion) {
    let mut sender = Bracha::new(7, 2, 1, true, 5);
    let initial = sender.on_start().send.remove(0);
    c.bench_function("bracha_on_message_initial", |b| {
        b.iter_batched(
            || Bracha::new(7, 2, 0, true, 1),
            |mut p| std::hint::black_box(p.on_message(1, &initial)),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_abba_on_message(c: &mut Criterion) {
    let keys = AbbaKeys::trusted_setup(7, 2, 9);
    let mut sender = Abba::new(7, 2, 1, true, keys[1].clone(), 5);
    let prevote = sender.on_start().send.remove(0);
    c.bench_function("abba_on_message_prevote", |b| {
        b.iter_batched(
            || Abba::new(7, 2, 0, true, keys[0].clone(), 1),
            |mut p| std::hint::black_box(p.on_message(1, &prevote)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_turquois_on_message,
    bench_bracha_on_message,
    bench_abba_on_message
);
criterion_main!(benches);
