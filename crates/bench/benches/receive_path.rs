//! Receive-path micro-benchmarks (host wall-clock): message validation
//! with the verified-signature memo cache cold versus warm.
//!
//! * **cold** — memoization force-disabled, so every one-time-signature
//!   check recomputes its SHA-256 chain (the pre-cache receive path).
//! * **warm** — memoization enabled and the message already seen, so
//!   every check is answered from the cache (the re-delivery /
//!   rebroadcast hot case the paper's 10 ms tick makes common).
//!
//! Measured for a bare broadcast (one signature) and for a justified
//! rebroadcast bundle (one signature per quorum member) at n = 10 and
//! n = 16, the largest group of the paper's grid.

use criterion::{criterion_group, criterion_main, Criterion};
use turquois_core::config::Config;
use turquois_core::instance::Turquois;
use turquois_core::KeyRing;
use turquois_crypto::telemetry::set_memo_enabled;

const PHASES: usize = 60;

/// Builds a fresh receiver plus a bare phase-1 broadcast and a justified
/// phase-2 rebroadcast from process 0 of an `n`-process group.
fn make_messages(n: usize) -> (Turquois, bytes::Bytes, bytes::Bytes) {
    let cfg = Config::evaluation(n).expect("valid n");
    let rings = KeyRing::trusted_setup(n, PHASES, 0xbe9c);
    let receiver_ring = rings[1].clone();
    let mut procs: Vec<Turquois> = rings
        .into_iter()
        .enumerate()
        .map(|(i, r)| Turquois::new(cfg, i, true, r, 7 + i as u64))
        .collect();
    // First ticks are bare; delivering the group's phase-1 broadcasts
    // advances process 0 to phase 2, whose *second* tick re-broadcasts
    // with an explicit justification bundle.
    let msgs: Vec<bytes::Bytes> = procs
        .iter_mut()
        .map(|p| p.on_tick().expect("keys cover phase").bytes)
        .collect();
    let bare = msgs[0].clone();
    let p0 = &mut procs[0];
    for m in &msgs {
        p0.on_message(m);
    }
    let _ = p0.on_tick().expect("keys cover phase");
    let justified = p0.on_tick().expect("keys cover phase").bytes;
    let receiver = Turquois::new(cfg, 1, true, receiver_ring, 99);
    (receiver, bare, justified)
}

fn bench_receive_path(c: &mut Criterion) {
    for n in [10usize, 16] {
        let (mut receiver, bare, justified) = make_messages(n);
        let mut group = c.benchmark_group(format!("receive_path_n{n}"));

        set_memo_enabled(false);
        group.bench_function("bare_cold", |b| {
            b.iter(|| receiver.on_message(std::hint::black_box(&bare)))
        });
        set_memo_enabled(true);
        receiver.on_message(&bare); // warm the cache
        group.bench_function("bare_warm", |b| {
            b.iter(|| receiver.on_message(std::hint::black_box(&bare)))
        });

        set_memo_enabled(false);
        group.bench_function("justified_cold", |b| {
            b.iter(|| receiver.on_message(std::hint::black_box(&justified)))
        });
        set_memo_enabled(true);
        receiver.on_message(&justified); // warm the cache
        group.bench_function("justified_warm", |b| {
            b.iter(|| receiver.on_message(std::hint::black_box(&justified)))
        });

        group.finish();
    }
    // Leave the process-wide switch in its default state.
    set_memo_enabled(true);
}

criterion_group!(benches, bench_receive_path);
criterion_main!(benches);
