//! Codec and layout gates for the baseline engines.
//!
//! The Bracha and ABBA engines keep per-round, per-sender vote tables
//! that come in two interchangeable layouts: the original
//! hash-map-of-senders ("legacy") and a dense sender-indexed table
//! ("compact", the default — node ids are dense `0..n`). Both answer
//! every query identically; the legacy layout is retained as the
//! differential oracle, selected by the same `TURQUOIS_LEGACY_STORE`
//! switch that gates `turquois_core::store` (DESIGN.md §10).
//!
//! `turquois-baselines` does not depend on `turquois-core`, so it reads
//! the environment variable through this local copy of the gate. The
//! programmatic override only affects stores built in *this* crate;
//! differential tests that need both engines flipped use the
//! per-structure `with_legacy` constructors instead.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// Environment variable selecting the legacy hash-map vote tables.
///
/// Set to any non-empty value to bypass the dense layout. Results must
/// be byte-identical either way; the variable exists as a differential
/// guard and an escape hatch, mirroring `TURQUOIS_LEGACY_QUEUE`.
pub const LEGACY_STORE_ENV: &str = "TURQUOIS_LEGACY_STORE";

static LEGACY_STORE: AtomicBool = AtomicBool::new(false);
static LEGACY_STORE_INIT: Once = Once::new();

/// Returns whether new vote tables use the legacy hash-map layout.
///
/// The first call reads [`LEGACY_STORE_ENV`]; later calls reuse the
/// cached value unless [`set_legacy_store`] overrides it.
pub fn legacy_store_enabled() -> bool {
    LEGACY_STORE_INIT.call_once(|| {
        if std::env::var_os(LEGACY_STORE_ENV).is_some_and(|v| !v.is_empty()) {
            LEGACY_STORE.store(true, Ordering::Relaxed);
        }
    });
    LEGACY_STORE.load(Ordering::Relaxed)
}

/// Programmatically selects the vote-table layout for stores built
/// afterwards in this crate, overriding the environment.
pub fn set_legacy_store(enabled: bool) {
    // Make sure the env lookup never races in after us and clobbers
    // the explicit choice.
    LEGACY_STORE_INIT.call_once(|| {});
    LEGACY_STORE.store(enabled, Ordering::Relaxed);
}

/// Environment variable selecting the legacy owned-`Vec` message codec
/// (per-message `BytesMut` builders and copying decoders) instead of
/// the flat-arena codec (borrowed views + a pooled [`bytes::arena::
/// EncodeArena`]). Results must be byte-identical either way; the
/// variable exists as a differential guard, mirroring the other
/// `TURQUOIS_LEGACY_*` knobs (DESIGN.md §13).
pub const LEGACY_CODEC_ENV: &str = "TURQUOIS_LEGACY_CODEC";

static LEGACY_CODEC: AtomicBool = AtomicBool::new(false);
static LEGACY_CODEC_INIT: Once = Once::new();

/// Returns whether this crate's engines use the legacy owned codec.
///
/// The first call reads [`LEGACY_CODEC_ENV`]; later calls reuse the
/// cached value unless [`set_legacy_codec`] overrides it.
pub fn legacy_codec_enabled() -> bool {
    LEGACY_CODEC_INIT.call_once(|| {
        if std::env::var_os(LEGACY_CODEC_ENV).is_some_and(|v| !v.is_empty()) {
            LEGACY_CODEC.store(true, Ordering::Relaxed);
        }
    });
    LEGACY_CODEC.load(Ordering::Relaxed)
}

/// Programmatically selects the codec for this crate's engines,
/// overriding the environment.
pub fn set_legacy_codec(enabled: bool) {
    LEGACY_CODEC_INIT.call_once(|| {});
    LEGACY_CODEC.store(enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_toggle_round_trips() {
        // Touch the cached switch; leave it in the default state.
        let initial = legacy_store_enabled();
        set_legacy_store(true);
        assert!(legacy_store_enabled());
        set_legacy_store(false);
        assert!(!legacy_store_enabled());
        set_legacy_store(initial);
    }

    #[test]
    fn codec_toggle_round_trips() {
        let initial = legacy_codec_enabled();
        set_legacy_codec(true);
        assert!(legacy_codec_enabled());
        set_legacy_codec(false);
        assert!(!legacy_codec_enabled());
        set_legacy_codec(initial);
    }
}
